//! A multi-document session: many compressed documents behind one
//! [`DomStore`] with a shared symbol table and debt-based recompression.
//!
//! The example loads a small fleet of similar weblog-like documents, shows
//! that they share one resident label alphabet (vs one table per document),
//! then serves an interleaved read/update workload and lets the store's
//! scheduler decide which documents to recompress — the hot document drains
//! when its grammar actually grew, the cold ones are left alone.
//!
//! Run with: `cargo run --release --example multi_document`

use slt_xml::datasets::catalog::Dataset;
use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::store::SchedulerConfig;
use slt_xml::DomStore;

fn main() {
    // 1. Load six similar documents into one store.
    let store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 400,
        drain_budget: 20_000,
        auto: true,
    });
    let mut docs = Vec::new();
    for i in 0..6 {
        let xml = Dataset::ExiWeblog.generate(0.03 + 0.005 * i as f64);
        let id = store.load_xml(&xml).expect("dataset labels intern");
        docs.push((id, xml));
    }
    let stats = store.symbol_stats();
    println!("loaded {} documents", store.len());
    println!(
        "label tables: {} B resident (shared) vs {} B with per-document tables ({:.2}x)",
        stats.resident_bytes(),
        stats.unshared_bytes,
        stats.unshared_bytes as f64 / stats.resident_bytes().max(1) as f64
    );

    // 2. Interleaved workload: one hot document takes FLUX-style update
    //    batches, every document serves queries in between.
    let (hot, hot_xml) = (docs[0].0, docs[0].1.clone());
    let ops = random_update_sequence(&hot_xml, 120, 7, WorkloadMix::clustered(0.85));
    println!("\n{:>6} {:>12} {:>10} {:>14}", "batch", "hot edges", "hot debt", "recompressions");
    for (round, batch) in ops.chunks(20).enumerate() {
        let (_, report) = store.apply_batch(hot, batch).expect("workload is valid");
        for &(id, _) in &docs {
            let matches = store.query_str(id, "//message").expect("live doc");
            let _ = matches.len();
        }
        println!(
            "{:>6} {:>12} {:>10} {:>14}{}",
            round + 1,
            store.edge_count(hot).unwrap(),
            store.debt(hot).unwrap(),
            store.recompressions(hot).unwrap(),
            if report.is_empty() { "" } else { "  <- scheduler drained" },
        );
    }

    // 3. The cold documents were never touched by the scheduler.
    let cold_recompressions: usize = docs[1..]
        .iter()
        .map(|&(id, _)| store.recompressions(id).unwrap())
        .sum();
    println!(
        "\nhot document recompressed {} times; the {} cold documents {} times",
        store.recompressions(hot).unwrap(),
        docs.len() - 1,
        cold_recompressions
    );
    assert_eq!(cold_recompressions, 0);

    // 4. Every document still serializes exactly; the cold ones byte-identically.
    for (i, &(id, ref xml)) in docs.iter().enumerate() {
        let back = store.to_xml(id).expect("live doc");
        if i > 0 {
            assert_eq!(back.to_xml(), xml.to_xml(), "cold doc {i} must be untouched");
        }
    }
    println!("all documents verified against their originals");
}
