//! Compressed-representation shoot-out: pointer DOM vs succinct DOM vs
//! minimal DAG vs TreeRePair vs GrammarRePair.
//!
//! The paper's related-work section contrasts SLCF grammars with succinct
//! trees (compact and navigable, but not updatable) and its introduction cites
//! minimal DAG sharing as the precursor of grammar compression. This example
//! builds all of them for three synthetic corpus documents and reports
//! in-memory size, structural size (edges) and navigation throughput.
//!
//! Run with: `cargo run --release --example representation_shootout`

use std::time::Instant;

use slt_xml::dag_xml::Dag;
use slt_xml::datasets::Dataset;
use slt_xml::grammar_repair::navigate::{Cursor, PreorderLabels};
use slt_xml::grammar_repair::GrammarRePair;
use slt_xml::sltgrammar::{serialize, SymbolTable};
use slt_xml::succinct_xml::SuccinctDom;
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::binary::to_binary;
use slt_xml::xmltree::XmlTree;

fn pointer_dom_bytes(xml: &XmlTree) -> usize {
    xml.preorder()
        .iter()
        .map(|&v| 8 + 24 + xml.children(v).len() * 4 + xml.label(v).len())
        .sum()
}

fn report(dataset: Dataset, scale: f64) {
    let xml = dataset.generate(scale);
    let n = xml.node_count();
    println!(
        "=== {} ({} elements, depth {}) ===",
        dataset.name(),
        n,
        xml.depth()
    );

    let mut symbols = SymbolTable::new();
    let bin = to_binary(&xml, &mut symbols).expect("valid document");

    let succinct = SuccinctDom::build(&xml);
    let dag = Dag::build(&bin, &symbols);
    let (tree_grammar, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
    let (grammar, _) = GrammarRePair::default().compress_xml(&xml);

    println!("{:<30}{:>14}{:>12}", "representation", "bytes", "B / node");
    let row = |name: &str, bytes: usize| {
        println!("{:<30}{:>14}{:>12.2}", name, bytes, bytes as f64 / n as f64);
    };
    row("pointer DOM (estimate)", pointer_dom_bytes(&xml));
    row("succinct DOM (BP + labels)", succinct.size_bytes());
    row("minimal DAG", dag.size_bytes());
    row("TreeRePair grammar (bytes)", serialize::encoded_size(&tree_grammar));
    row("GrammarRePair grammar (bytes)", serialize::encoded_size(&grammar));

    println!("{:<30}{:>14}", "structural size", "edges");
    println!("{:<30}{:>14}", "binary tree", 2 * n);
    println!("{:<30}{:>14}", "minimal DAG", dag.edge_count());
    println!("{:<30}{:>14}", "TreeRePair grammar", tree_grammar.edge_count());
    println!("{:<30}{:>14}", "GrammarRePair grammar", grammar.edge_count());

    // Navigation throughput: full preorder traversal of every representation.
    let t = Instant::now();
    let visited_pointer = xml.preorder().len();
    let pointer_time = t.elapsed();

    let t = Instant::now();
    let mut visited_succinct = 0usize;
    for v in succinct.preorder() {
        std::hint::black_box(succinct.label(v));
        visited_succinct += 1;
    }
    let succinct_time = t.elapsed();

    let t = Instant::now();
    let visited_grammar = PreorderLabels::new(&grammar).count();
    let grammar_time = t.elapsed();

    println!("{:<30}{:>14}{:>12}", "full traversal", "nodes", "time");
    println!("{:<30}{:>14}{:>12.2?}", "pointer DOM", visited_pointer, pointer_time);
    println!("{:<30}{:>14}{:>12.2?}", "succinct DOM", visited_succinct, succinct_time);
    println!(
        "{:<30}{:>14}{:>12.2?}",
        "grammar cursor (binary view)", visited_grammar, grammar_time
    );

    // Random-access navigation on the grammar: root-to-leaf walks.
    let t = Instant::now();
    let mut cursor = Cursor::new(&grammar);
    let mut steps = 0usize;
    for i in 0..10_000usize {
        while cursor.down(i % 2) {
            steps += 1;
        }
        while cursor.up().is_some() {}
    }
    println!(
        "grammar cursor random walks: {} steps in {:.2?}\n",
        steps,
        t.elapsed()
    );
}

fn main() {
    for (dataset, scale) in [
        (Dataset::ExiWeblog, 0.5),
        (Dataset::XMark, 0.5),
        (Dataset::Medline, 0.2),
    ] {
        report(dataset, scale);
    }
}
