//! Path queries over grammar-compressed XML, without decompression.
//!
//! The example compresses a synthetic XMark-like auction document, runs a set
//! of path queries (child and descendant axes) three ways — the memoized
//! counting dynamic program over the grammar, the memoized *output-sensitive*
//! materialization (`evaluate`), and the linear streaming document cursor
//! (`evaluate_streaming`) — and cross-checks all of them against evaluation
//! on the uncompressed document. It finishes with a query on an
//! *exponentially* compressed grammar whose document could never be
//! materialized.
//!
//! Run with: `cargo run --release --example xpath_query`

use std::time::Instant;

use slt_xml::datasets::Dataset;
use slt_xml::grammar_repair::query::PathQuery;
use slt_xml::grammar_repair::GrammarRePair;
use slt_xml::sltgrammar::fingerprint::derived_size;
use slt_xml::sltgrammar::text::parse_grammar;

fn main() {
    // 1. Compress a realistic document.
    let xml = Dataset::XMark.generate(0.5);
    println!(
        "document: {} elements, depth {}",
        xml.node_count(),
        xml.depth()
    );
    let (grammar, stats) = GrammarRePair::default().compress_xml(&xml);
    println!(
        "compressed to {} grammar edges ({:.2} % of the binary tree)\n",
        stats.output_edges,
        100.0 * stats.output_edges as f64 / stats.input_edges.max(1) as f64
    );

    // 2. Run queries on the compressed representation.
    let queries = [
        "/site",
        "/site/regions//item",
        "//item/name",
        "//keyword",
        "/site/people/person",
        "/site/*/item",
        "//listitem//keyword",
    ];
    let tables = slt_xml::grammar_repair::navigate::NavTables::build(&grammar);
    println!(
        "{:<28}{:>12}{:>16}{:>16}{:>16}",
        "query", "matches", "grammar count", "evaluate", "streamed"
    );
    for text in queries {
        let query = PathQuery::parse(text).expect("well-formed query");
        let reference = query.evaluate_uncompressed(&xml).len() as u128;

        let t = Instant::now();
        let counted = query.count(&grammar);
        let count_time = t.elapsed();

        let t = Instant::now();
        let materialized = query.evaluate_with_tables(&grammar, &tables).len() as u128;
        let evaluate_time = t.elapsed();

        let t = Instant::now();
        let streamed = query.evaluate_streaming(&grammar).len() as u128;
        let stream_time = t.elapsed();

        assert_eq!(counted, reference, "grammar count disagrees for {text}");
        assert_eq!(materialized, reference, "memoized evaluate disagrees for {text}");
        assert_eq!(streamed, reference, "streaming disagrees for {text}");
        println!(
            "{:<28}{:>12}{:>13.2?}{:>13.2?}{:>13.2?}",
            text, counted, count_time, evaluate_time, stream_time
        );
    }

    // 3. The same machinery on a grammar whose document has ~2^30 elements:
    //    the DP touches each rule a handful of times, never the document.
    let mut text = String::from("S -> root(L1(#),#)\n");
    text.push_str("L1 -> C1(C1(y1))\n");
    for i in 1..=29 {
        text.push_str(&format!("C{i} -> C{}(C{}(y1))\n", i + 1, i + 1));
    }
    text.push_str("C30 -> item(name(#,#), y1)\n");
    let huge = parse_grammar(&text).expect("well-formed grammar");
    println!(
        "\nexponential grammar: {} edges deriving {} binary nodes",
        huge.edge_count(),
        derived_size(&huge)
    );
    let t = Instant::now();
    let items = PathQuery::parse("/root/item/name").unwrap().count(&huge);
    println!(
        "  /root/item/name matches {items} elements (counted in {:.2?})",
        t.elapsed()
    );
}
