//! Persisting compressed documents: serialize a grammar, reload it, keep
//! editing it, and verify that nothing was lost.
//!
//! The workflow mirrors how an application would use the library as a storage
//! and editing backend: compress once, store the `.sltg` bytes, reload later,
//! apply updates through [`CompressedDom`], recompress, and store again.
//!
//! Run with: `cargo run --release --example persistence`

use slt_xml::datasets::Dataset;
use slt_xml::grammar_repair::query::PathQuery;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::sltgrammar::serialize;
use slt_xml::xmltree::UpdateOp;
use slt_xml::CompressedDom;

fn main() {
    // 1. Compress a Medline-like bibliography and serialize it.
    let xml = Dataset::Medline.generate(0.1);
    println!(
        "document: {} elements ({} binary edges)",
        xml.node_count(),
        2 * xml.node_count()
    );
    let dom = CompressedDom::from_xml(&xml, 100);
    let bytes = serialize::encode(&dom.grammar());
    println!(
        "compressed: {} grammar edges, {} bytes on disk ({:.2} bytes per element)",
        dom.edge_count(),
        bytes.len(),
        bytes.len() as f64 / xml.node_count() as f64
    );
    let original_fingerprint = fingerprint(&dom.grammar());

    // 2. Reload from the serialized form — the grammar round-trips exactly.
    let reloaded = serialize::decode(&bytes).expect("well-formed .sltg bytes");
    assert_eq!(fingerprint(&reloaded), original_fingerprint);
    println!("reloaded grammar matches the original (fingerprints agree)");

    // 3. Keep editing the reloaded document through the DOM handle.
    let mut dom = CompressedDom::from_grammar(reloaded, 50);
    let citations_before = PathQuery::parse("//citation")
        .unwrap()
        .count(&dom.grammar());
    let fragment = slt_xml::xmltree::parse::parse_xml(
        "<citation><pmid/><article><title/><abstract/></article></citation>",
    )
    .unwrap();
    for k in 0..120 {
        // Insert before the element at a (valid) position that moves through the
        // document; positions address the binary tree in preorder.
        let target = 1 + (k * 37) % (dom.derived_size() as usize - 2);
        dom.apply(&UpdateOp::InsertBefore {
            target,
            fragment: fragment.clone(),
        })
        .expect("valid insert");
    }
    println!(
        "after 120 inserts: {} edges, {} automatic recompressions",
        dom.edge_count(),
        dom.recompressions()
    );
    let citations_after = PathQuery::parse("//citation")
        .unwrap()
        .count(&dom.grammar());
    println!("citations: {citations_before} -> {citations_after}");

    // 4. Store the edited document again.
    let edited = serialize::encode(&dom.grammar());
    println!(
        "edited document stored in {} bytes (was {} bytes)",
        edited.len(),
        bytes.len()
    );
    let back = serialize::decode(&edited).expect("well-formed .sltg bytes");
    assert_eq!(fingerprint(&back), fingerprint(&dom.grammar()));
    println!("round-trip of the edited grammar verified");
}
