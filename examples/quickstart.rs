//! Quickstart: compress an XML document, inspect the grammar, update it
//! without decompressing, and recompress.
//!
//! Run with: `cargo run --release --example quickstart`

use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::grammar_repair::update;
use slt_xml::sltgrammar::fingerprint::derived_size;
use slt_xml::sltgrammar::text::print_grammar;
use slt_xml::sltgrammar::{NodeKind, SymbolTable};
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::binary::to_binary;
use slt_xml::xmltree::parse::parse_xml;

fn main() {
    // A small, repetitive document (think of a stripped-down access log).
    let mut doc = String::from("<log>");
    for _ in 0..64 {
        doc.push_str("<entry><host/><date/><request><method/><uri/></request></entry>");
    }
    doc.push_str("</log>");
    let xml = parse_xml(&doc).expect("well-formed XML");
    println!("document: {} element edges, depth {}", xml.edge_count(), xml.depth());

    // 1. Compress with TreeRePair (the classic tree compressor).
    let (mut grammar, stats) = TreeRePair::default().compress_xml(&xml);
    println!(
        "TreeRePair: {} -> {} grammar edges ({:.2}% of the binary tree)",
        stats.input_edges,
        stats.output_edges,
        100.0 * stats.ratio()
    );
    println!("\nThe grammar (start rule first):\n{}", print_grammar(&grammar));

    // 2. Update the compressed document directly: rename the first entry and
    //    delete the second one. Preorder indices address the binary tree; we
    //    look the positions up once in an uncompressed reference copy.
    let mut symbols = SymbolTable::new();
    let reference = to_binary(&xml, &mut symbols).expect("valid document");
    let entry_positions: Vec<usize> = reference
        .preorder()
        .iter()
        .enumerate()
        .filter(|(_, &n)| matches!(reference.kind(n), NodeKind::Term(t) if symbols.name(t) == "entry"))
        .map(|(i, _)| i)
        .collect();
    update::rename(&mut grammar, entry_positions[0] as u128, "first_entry").expect("valid rename");
    let deleted = update::delete(&mut grammar, entry_positions[1] as u128).expect("valid delete");
    println!(
        "after 2 updates the grammar has {} edges (was {})",
        deleted.edges_after, stats.output_edges
    );

    // 3. Recompress with GrammarRePair — no decompression of the document.
    let repair_stats = GrammarRePair::default().recompress(&mut grammar);
    println!(
        "GrammarRePair: {} -> {} edges in {} rounds ({} replacements, {} inlinings)",
        repair_stats.input_edges,
        repair_stats.output_edges,
        repair_stats.rounds,
        repair_stats.replacements,
        repair_stats.inlinings
    );
    println!(
        "document still has {} binary-tree nodes; grammar validates: {}",
        derived_size(&grammar),
        grammar.validate().is_ok()
    );
}
