//! Concurrent reads, parallel writes, background recompression — one
//! [`DomStore`] shared across threads.
//!
//! The walkthrough loads a fleet of documents (in parallel), starts the
//! background maintenance thread, then serves a mixed workload: reader
//! threads stream and query snapshots lock-free while a writer thread pushes
//! update batches and the maintenance thread recompresses hot documents
//! aside, atomically swapping the new snapshots in. A snapshot taken before
//! the churn is kept alive throughout and verified byte-stable at the end —
//! the MVCC guarantee in one line of output.
//!
//! Run with: `cargo run --release --example concurrent_store`

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use slt_xml::datasets::catalog::Dataset;
use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::store::SchedulerConfig;
use slt_xml::{DomStore, PathQuery};

fn main() {
    // 1. Load six similar documents in parallel through `load_many` — ids
    //    and grammars are identical to sequential loads, the compression
    //    work fans out over a small worker pool.
    let fleet: Vec<_> = (0..6)
        .map(|i| Dataset::ExiWeblog.generate(0.02 + 0.004 * i as f64))
        .collect();
    let mut store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 300,
        drain_budget: 0,
        auto: true,
    });
    let ids = store.load_many(&fleet).expect("dataset labels intern");
    println!(
        "loaded {} documents in parallel across {} shared symbols",
        store.len(),
        store.symbol_stats().master_symbols
    );

    // 2. Background maintenance: updates signal the thread, drains happen
    //    off the request path, snapshots swap atomically.
    store.start_maintenance(Duration::from_millis(1));

    // 3. Pin a snapshot of the hot document *before* any churn: it must be
    //    byte-stable however much the document changes behind it.
    let hot = ids[0];
    let pinned = store.snapshot(hot).expect("live doc");
    let pinned_bytes = pinned.to_xml().expect("small doc").to_xml();

    let ops = random_update_sequence(&fleet[0], 160, 42, WorkloadMix::clustered(0.85));
    let reads = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let store_ref = &store;
    let ids_ref = &ids;
    let reads_ref = &reads;
    let done_ref = &done;
    std::thread::scope(|scope| {
        // Writer: push the whole schedule in batches against the hot doc.
        scope.spawn(move || {
            for batch in ops.chunks(8) {
                store_ref
                    .apply_batch(hot, batch)
                    .expect("workload stays valid");
                std::thread::sleep(Duration::from_micros(300));
            }
            done_ref.store(true, Ordering::Relaxed);
        });
        // Readers: zero-lock snapshot reads over the whole fleet, running
        // at full speed while the writer and the maintenance thread work.
        for t in 0..3usize {
            scope.spawn(move || {
                let query = PathQuery::parse("//message").expect("valid query");
                let mut round = t;
                while !done_ref.load(Ordering::Relaxed) {
                    let id = ids_ref[round % ids_ref.len()];
                    round += 1;
                    let snap = store_ref.snapshot(id).expect("live doc");
                    let hits = snap.query(&query).len() as u128;
                    assert_eq!(hits, snap.query_count(&query));
                    reads_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    store.stop_maintenance();

    // 4. The numbers: reads served during the churn, background drains, and
    //    the pinned snapshot still byte-identical to the pre-churn state.
    println!(
        "served {} snapshot reads while updating; hot doc recompressed {} times in the background",
        reads.load(Ordering::Relaxed),
        store.recompressions(hot).expect("live doc"),
    );
    assert_eq!(
        pinned.to_xml().expect("still readable").to_xml(),
        pinned_bytes,
        "a held snapshot never changes"
    );
    println!("pinned pre-churn snapshot verified byte-stable across all swaps");
    let cold_drains: usize = ids[1..]
        .iter()
        .map(|&id| store.recompressions(id).expect("live doc"))
        .sum();
    println!(
        "cold documents drained {cold_drains} times (debt scheduler leaves them alone)"
    );
}
