//! Navigation and point queries on a compressed document without
//! decompression: label lookups by preorder index via path isolation, plus
//! aggregate statistics computed in one pass over the grammar.
//!
//! Run with: `cargo run --release --example navigation`

use std::collections::BTreeMap;

use slt_xml::datasets::catalog::Dataset;
use slt_xml::grammar_repair::isolate::label_at;
use slt_xml::sltgrammar::fingerprint::derived_size;
use slt_xml::sltgrammar::NodeKind;
use slt_xml::treerepair::TreeRePair;

fn main() {
    let xml = Dataset::Medline.generate(0.1);
    let (grammar, stats) = TreeRePair::default().compress_xml(&xml);
    println!(
        "Medline-like document with {} edges compressed to {} grammar edges ({:.2}%)",
        stats.input_edges,
        stats.output_edges,
        100.0 * stats.ratio()
    );

    // Aggregate query answered on the grammar alone: how often does each label
    // occur in the document? One pass over the rules, weighted by usage.
    let usage = grammar.usage();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for nt in grammar.nonterminals() {
        let rule = grammar.rule(nt);
        let weight = usage.get(&nt).copied().unwrap_or(0);
        for node in rule.rhs.preorder() {
            if let NodeKind::Term(t) = rule.rhs.kind(node) {
                if !grammar.symbols.is_null(t) {
                    *counts.entry(grammar.symbols.name(t).to_string()).or_insert(0) += weight;
                }
            }
        }
    }
    println!("\nlabel histogram computed from the grammar (top 8):");
    let mut sorted: Vec<_> = counts.into_iter().collect();
    sorted.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (label, count) in sorted.iter().take(8) {
        println!("  {label:<24} {count}");
    }

    // Point queries: read labels at arbitrary preorder positions through the
    // compression. The lookup steers a cursor down the grammar using the
    // precomputed subtree counts — purely read-only, the grammar never grows.
    let total = derived_size(&grammar);
    println!("\nthe binary tree has {total} nodes; sampling labels along it:");
    let edges_before = grammar.edge_count();
    for idx in [0u128, 1, 2, total / 4, total / 2, total - 2] {
        let label = label_at(&grammar, idx).expect("index in range");
        println!("  preorder {idx:>8} -> {label}");
    }
    assert_eq!(grammar.edge_count(), edges_before);
    println!("\nthe 6 point reads left the grammar untouched ({edges_before} edges)");
}
