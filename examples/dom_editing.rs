//! A DOM-style editing session on a compressed document: the motivating
//! scenario of the paper (memory-hungry DOM trees in browsers).
//!
//! The example loads a synthetic XMark-like document, keeps it compressed in a
//! [`CompressedDom`], applies a random stream of inserts/deletes, and reports
//! how the grammar size evolves with automatic recompression every 100 updates
//! versus never recompressing.
//!
//! Run with: `cargo run --release --example dom_editing`

use slt_xml::datasets::catalog::Dataset;
use slt_xml::datasets::workload::{random_insert_delete_sequence, WorkloadMix};
use slt_xml::grammar_repair::update::apply_update;
use slt_xml::treerepair::TreeRePair;
use slt_xml::CompressedDom;

fn main() {
    let xml = Dataset::XMark.generate(0.25);
    println!(
        "XMark-like document: {} edges, depth {}",
        xml.edge_count(),
        xml.depth()
    );

    let ops = random_insert_delete_sequence(&xml, 600, 42, WorkloadMix::default());
    let (initial, _) = TreeRePair::default().compress_xml(&xml);
    println!("initial compressed grammar: {} edges\n", initial.edge_count());

    // Variant A: naive — apply updates, never recompress.
    let mut naive = initial.clone();
    // Variant B: CompressedDom with recompression every 100 updates.
    let mut dom = CompressedDom::from_grammar(initial.clone(), 100);

    println!(
        "{:>9} {:>16} {:>22}",
        "#updates", "naive edges", "maintained edges (GR)"
    );
    for (i, op) in ops.iter().enumerate() {
        apply_update(&mut naive, op).expect("workload is valid");
        dom.apply(op).expect("workload is valid");
        if (i + 1) % 100 == 0 {
            println!("{:>9} {:>16} {:>22}", i + 1, naive.edge_count(), dom.edge_count());
        }
    }

    println!(
        "\nafter {} updates: naive grammar {} edges, maintained grammar {} edges ({} recompressions)",
        ops.len(),
        naive.edge_count(),
        dom.edge_count(),
        dom.recompressions()
    );
    println!(
        "the document now has {} binary-tree nodes",
        dom.derived_size()
    );
}
