//! Compares TreeRePair and GrammarRePair on the synthetic evaluation corpus —
//! a miniature version of the paper's static compression experiment.
//!
//! Run with: `cargo run --release --example compare_compressors [scale]`

use slt_xml::datasets::catalog::Dataset;
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::treerepair::TreeRePair;
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    println!("Static compression comparison at scale {scale:.2}\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "dataset", "#edges", "TreeRePair", "GrammarRePair", "TR time", "GR time"
    );
    for dataset in Dataset::all() {
        let xml = dataset.generate(scale);
        let t0 = Instant::now();
        let (g_tr, tr) = TreeRePair::default().compress_xml(&xml);
        let tr_time = t0.elapsed();
        let t1 = Instant::now();
        let (g_gr, gr) = GrammarRePair::default().compress_xml(&xml);
        let gr_time = t1.elapsed();
        assert_eq!(
            fingerprint(&g_tr),
            fingerprint(&g_gr),
            "both compressors must represent the same document"
        );
        println!(
            "{:<14} {:>10} {:>12} {:>13} {:>9.2?} {:>9.2?}",
            dataset.name(),
            xml.edge_count(),
            tr.output_edges,
            gr.output_edges,
            tr_time,
            gr_time
        );
    }
    println!("\nBoth compressors derive byte-identical documents (checked via fingerprints).");
}
