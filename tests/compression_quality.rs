//! Qualitative reproduction checks: the *shapes* the paper reports must hold on
//! the synthetic corpus (who compresses better, how large the update overheads
//! are), even though absolute numbers differ from the original testbed.

use slt_xml::datasets::catalog::Dataset;
use slt_xml::datasets::workload::{random_insert_delete_sequence, WorkloadMix};
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::grammar_repair::udc::recompress_from_scratch;
use slt_xml::grammar_repair::update::apply_update;
use slt_xml::treerepair::{TreeRePair, TreeRePairConfig};

/// Table III shape: the regular files compress by orders of magnitude more than
/// the moderate files, and Treebank-like data is the hardest.
#[test]
fn compression_regimes_match_table_iii() {
    let ratio = |d: Dataset, s: f64| {
        let xml = d.generate(s);
        let (_, stats) = GrammarRePair::default().compress_xml(&xml);
        stats.output_edges as f64 / stats.input_edges as f64
    };
    let weblog = ratio(Dataset::ExiWeblog, 0.2);
    let ncbi = ratio(Dataset::Ncbi, 0.05);
    let xmark = ratio(Dataset::XMark, 0.1);
    let treebank = ratio(Dataset::Treebank, 0.05);
    let medline = ratio(Dataset::Medline, 0.05);

    assert!(weblog < 0.05, "EXI-Weblog-like ratio too large: {weblog}");
    assert!(ncbi < 0.05, "NCBI-like ratio too large: {ncbi}");
    assert!(xmark > 0.02 && xmark < 0.5, "XMark-like ratio out of range: {xmark}");
    assert!(treebank > 0.10, "Treebank-like ratio too small: {treebank}");
    assert!(weblog < medline && medline < treebank, "ordering violated");
}

/// Section V-B shape: GrammarRePair applied to trees compresses about as well
/// as TreeRePair (the paper reports similar or better sizes).
#[test]
fn grammarrepair_compresses_as_well_as_treerepair() {
    for dataset in [Dataset::ExiWeblog, Dataset::XMark, Dataset::Medline] {
        let xml = dataset.generate(0.05);
        let (_, tr) = TreeRePair::default().compress_xml(&xml);
        let (_, gr) = GrammarRePair::default().compress_xml(&xml);
        let a = tr.output_edges as f64;
        let b = gr.output_edges as f64;
        assert!(
            b <= 1.35 * a + 16.0,
            "{}: GrammarRePair ({b}) much worse than TreeRePair ({a})",
            dataset.name()
        );
    }
}

/// Figures 4/5 shape: after a batch of updates, naive grammars carry a large
/// overhead over compression from scratch, while GrammarRePair-maintained
/// grammars stay close to it.
#[test]
fn update_overheads_match_the_dynamic_experiments() {
    for (dataset, scale) in [(Dataset::ExiWeblog, 0.15), (Dataset::XMark, 0.06)] {
        let xml = dataset.generate(scale);
        let ops = random_insert_delete_sequence(&xml, 200, 99, WorkloadMix::default());
        let (initial, _) = TreeRePair::default().compress_xml(&xml);

        let mut naive = initial.clone();
        let mut maintained = initial.clone();
        let repair = GrammarRePair::default();
        for (i, op) in ops.iter().enumerate() {
            apply_update(&mut naive, op).unwrap();
            apply_update(&mut maintained, op).unwrap();
            if (i + 1) % 100 == 0 {
                repair.recompress(&mut maintained);
            }
        }
        repair.recompress(&mut maintained);
        let (scratch, _) = recompress_from_scratch(&naive, TreeRePairConfig::default()).unwrap();

        let naive_overhead = naive.edge_count() as f64 / scratch.edge_count() as f64;
        let gr_overhead = maintained.edge_count() as f64 / scratch.edge_count() as f64;
        assert!(
            naive_overhead > 1.05,
            "{}: naive updates should carry visible overhead, got {naive_overhead}",
            dataset.name()
        );
        assert!(
            gr_overhead < naive_overhead,
            "{}: GrammarRePair should beat naive updates ({gr_overhead} vs {naive_overhead})",
            dataset.name()
        );
        assert!(
            gr_overhead < 6.0,
            "{}: GrammarRePair overhead should stay small, got {gr_overhead}",
            dataset.name()
        );
    }
}

/// GrammarRePair recompression of an updated grammar touches far fewer nodes
/// than decompressing: its peak intermediate grammar stays well below the
/// uncompressed document size (the paper's 6–23 % space argument).
#[test]
fn recompression_space_stays_below_decompression() {
    let xml = Dataset::ExiWeblog.generate(0.3);
    let ops = random_insert_delete_sequence(&xml, 150, 5, WorkloadMix::default());
    let (mut g, _) = TreeRePair::default().compress_xml(&xml);
    for op in &ops {
        apply_update(&mut g, op).unwrap();
    }
    let uncompressed_edges = {
        let tree = slt_xml::sltgrammar::derive::val(&g).unwrap();
        tree.edge_count()
    };
    let updated_edges = g.edge_count();
    let stats = GrammarRePair::default().recompress(&mut g);
    assert!(
        stats.max_intermediate_edges <= updated_edges.max(uncompressed_edges),
        "recompression must not allocate more than the updated grammar / document: peak {} vs updated {} / uncompressed {}",
        stats.max_intermediate_edges,
        updated_edges,
        uncompressed_edges
    );
    assert!(
        stats.output_edges * 3 < uncompressed_edges,
        "the recompressed grammar ({}) should stay well below the uncompressed size ({})",
        stats.output_edges,
        uncompressed_edges
    );
}
