//! End-to-end checks of the worked examples in the paper's Sections II–IV.

use slt_xml::datasets::gn::{g8, g8_updated, g_exp, g_n};
use slt_xml::grammar_repair::isolate::{isolate, label_at};
use slt_xml::grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};
use slt_xml::sltgrammar::fingerprint::{derived_size, fingerprint};
use slt_xml::sltgrammar::text::parse_grammar;

/// Section II: the running grammar derives the binary tree of Figure 1 and has
/// the sizes used throughout the paper.
#[test]
fn preliminaries_running_example() {
    let g = parse_grammar(
        "S -> f(A(B,B),#)\n\
         B -> A(#,#)\n\
         A -> a(#, a(y1, y2))",
    )
    .unwrap();
    g.validate().unwrap();
    assert_eq!(g.edge_count(), 10);
    assert_eq!(derived_size(&g), 15);
    // Inlining B at (S,3) gives S -> f(A(A(#,#),B),#) with the same derivation.
    let mut inlined = g.clone();
    let b = inlined.nt_by_name("B").unwrap();
    let refs = inlined.refs();
    let &(caller, node) = refs[&b].first().unwrap();
    inlined.inline_at(caller, node);
    assert_eq!(fingerprint(&inlined), fingerprint(&g));
}

/// Section III-A: the string grammar G8 represents (ab)^8 and renaming its
/// first letter requires isolating the leftmost path only.
#[test]
fn path_isolation_on_g8() {
    let mut g = g8();
    assert_eq!(derived_size(&g), 17);
    // Position 0 is the first `a`; isolating it must not change the string and
    // at most doubles the grammar (Lemma 1).
    let before_edges = g.edge_count();
    let fp = fingerprint(&g);
    let (node, stats) = isolate(&mut g, 0).unwrap();
    assert!(g.rule(g.start()).rhs.kind(node).is_term());
    assert_eq!(fingerprint(&g), fp);
    assert!(stats.inlinings <= 4);
    assert!(g.edge_count() <= 2 * before_edges + 2);
    // After renaming the isolated node the first letter changes.
    slt_xml::grammar_repair::update::rename(&mut g, 0, "c").unwrap();
    assert_eq!(label_at(&g, 0).unwrap(), "c");
    assert_eq!(label_at(&g, 1).unwrap(), "b");
}

/// Section III-A: in G_exp (a^1024) position 333 is reachable with a
/// logarithmic number of inlining steps.
#[test]
fn path_isolation_on_g_exp() {
    let mut g = g_exp();
    assert_eq!(derived_size(&g), 1025);
    let before = g.edge_count();
    let (_, stats) = isolate(&mut g, 332).unwrap();
    assert!(stats.inlinings <= 11, "inlinings: {}", stats.inlinings);
    assert!(g.edge_count() <= 2 * before + 2);
    assert_eq!(label_at(&g, 332).unwrap(), "a");
}

/// Sections III-B/C: recompressing the updated grammar for b(ab)^8a directly on
/// the grammar yields a grammar comparable to compressing the string from
/// scratch — the paper obtains size 10 with lemma generation vs 11 without.
#[test]
fn grammar_recompression_of_the_updated_string_grammar() {
    let mut g = g8_updated();
    let fp = fingerprint(&g);
    let input_edges = g.edge_count();
    let stats = GrammarRePair::default().recompress(&mut g);
    g.validate().unwrap();
    assert_eq!(fingerprint(&g), fp);
    // The represented string has 19 tree nodes; the recompressed grammar must
    // stay well below that and must not exceed the input grammar.
    assert!(stats.output_edges <= input_edges);
    assert!((stats.output_edges as u128) < derived_size(&g));

    // Without the optimization the result is still correct.
    let mut g2 = g8_updated();
    let config = GrammarRePairConfig {
        optimize: false,
        ..GrammarRePairConfig::default()
    };
    GrammarRePair::new(config).recompress(&mut g2);
    assert_eq!(fingerprint(&g2), fp);
}

/// Section V-B: the G_n family — the optimization keeps the blow-up bounded
/// while the non-optimized replacement blows up with the derived list length.
#[test]
fn gn_family_blowup_comparison() {
    let mut optimized_blowups = Vec::new();
    let mut unoptimized_blowups = Vec::new();
    for n in [5usize, 7, 9] {
        let fp = fingerprint(&g_n(n));

        let mut g = g_n(n);
        let stats = GrammarRePair::default().recompress(&mut g);
        assert_eq!(fingerprint(&g), fp, "optimized recompression changed G_{n}");
        optimized_blowups.push(stats.blowup());

        let mut g = g_n(n);
        let config = GrammarRePairConfig {
            optimize: false,
            ..GrammarRePairConfig::default()
        };
        let stats = GrammarRePair::new(config).recompress(&mut g);
        assert_eq!(fingerprint(&g), fp, "non-optimized recompression changed G_{n}");
        unoptimized_blowups.push(stats.blowup());
    }
    // Optimized blow-up stays essentially flat; the non-optimized one grows
    // with n (the derived list doubles with every step).
    let opt_growth = optimized_blowups.last().unwrap() / optimized_blowups.first().unwrap();
    let unopt_growth = unoptimized_blowups.last().unwrap() / unoptimized_blowups.first().unwrap();
    assert!(
        opt_growth < 3.0,
        "optimized blow-up should stay bounded: {optimized_blowups:?}"
    );
    assert!(
        unopt_growth > opt_growth,
        "non-optimized blow-up should grow faster: {unoptimized_blowups:?} vs {optimized_blowups:?}"
    );
}

/// Section IV-F: the concluding example — replacing (a,1,b) in Grammar 1 keeps
/// the derived tree and introduces a pattern rule used by several rules.
#[test]
fn concluding_example_grammar1() {
    let mut g = parse_grammar(
        "S -> r(C, r(C, r(A(c,c), B(c))))\n\
         C -> A(B(#),#)\n\
         A -> a(y1, a(B(#), a(#, y2)))\n\
         B -> b(y1,#)",
    )
    .unwrap();
    let fp = fingerprint(&g);
    let stats = GrammarRePair::default().recompress(&mut g);
    g.validate().unwrap();
    assert_eq!(fingerprint(&g), fp);
    assert!(stats.rounds >= 1);
    assert!(stats.replacements >= 2);
}
