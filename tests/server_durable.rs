//! Kill-and-recover suite at the network edge: acknowledged replies are
//! durable writes.
//!
//! `core::server` promises that an `Applied` (or `Loaded`) reply is sent
//! only after the write's WAL record is group-committed and fsync'd. These
//! tests drive a scripted session through a real socket and a real
//! [`Client`], kill the *disk* (via [`FailpointFs`]) at every fault point
//! the uninterrupted session consumes, recover a fresh [`DurableStore`]
//! from the surviving image, and pin the one-sided guarantee: **every
//! write the client saw acknowledged is present after recovery**. Unacked
//! writes may or may not have landed (the fsync can beat the reply to the
//! kill) — that direction is deliberately unchecked.
//!
//! Every batch renames a globally unique `(doc, target)` pair to a
//! globally unique label, so the post-recovery check is a simple
//! order-independent serialization scan. In debug builds the kill matrix
//! is strided to keep `cargo test` quick; CI runs a denser matrix in
//! release.

use std::sync::Arc;
use std::time::Duration;

use slt_xml::grammar_repair::queue::DrainPolicy;
use slt_xml::grammar_repair::server::ServerConfig;
use slt_xml::grammar_repair::wal::testing::FailpointFs;
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::updates::UpdateOp;
use slt_xml::xmltree::XmlTree;
use slt_xml::{Client, DocId, DurableStore, Server};

fn doc(tag: &str) -> XmlTree {
    let mut s = format!("<{tag}>");
    for _ in 0..3 {
        s.push_str("<item><title/><body><p/><p/></body></item>");
    }
    s.push_str(&format!("</{tag}>"));
    parse_xml(&s).unwrap()
}

/// A snappy drain policy: tests should not sit in coalescing windows.
fn test_config() -> ServerConfig {
    ServerConfig {
        drain: DrainPolicy {
            max_pending_ops: 64,
            max_batch_age: Duration::from_millis(2),
            idle_flush: Duration::from_millis(1),
        },
        reply_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    }
}

/// The scripted session: two loads, six single-rename batches with
/// globally unique `(doc index, target, label)` triples, and one
/// mid-session checkpoint. Target preorder indices are non-null nodes of
/// the 3-item document's binary encoding.
const BATCHES: [(usize, usize, &str); 6] = [
    (0, 1, "ra0"),
    (1, 2, "rb0"),
    (0, 4, "ra1"),
    (1, 5, "rb1"),
    (0, 7, "ra2"),
    (1, 11, "rb2"),
];

/// One write the client saw acknowledged over the socket.
enum Acked {
    Load { doc: DocId, tag: &'static str },
    Rename { doc: DocId, label: &'static str },
}

/// Drives the session over a live TCP connection, collecting every
/// acknowledged write. Errors are expected — they are the dead disk
/// showing through as `Storage` replies; the script simply carries on.
fn run_session(client: &Client) -> Vec<Acked> {
    let mut acked = Vec::new();
    let mut ids: [Option<DocId>; 2] = [None, None];
    for (i, tag) in ["feed", "blog"].into_iter().enumerate() {
        if let Ok(id) = client.load_xml(&doc(tag)) {
            ids[i] = Some(id);
            acked.push(Acked::Load { doc: id, tag });
        }
    }
    for (i, (d, target, label)) in BATCHES.into_iter().enumerate() {
        if i == 3 {
            let _ = client.checkpoint(); // may fail on a dead disk
        }
        let Some(id) = ids[d] else { continue };
        let op = UpdateOp::Rename {
            target,
            label: (*label).into(),
        };
        if client.apply_batch(id, vec![op]).is_ok() {
            acked.push(Acked::Rename { doc: id, label });
        }
    }
    acked
}

fn start_server(fs: &Arc<FailpointFs>) -> (Server, Client) {
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    let server = Server::serve_tcp(Arc::new(store), "127.0.0.1:0", test_config()).unwrap();
    let client = Client::connect_tcp(server.local_addr().unwrap().to_string());
    (server, client)
}

/// Sizes the kill matrix: fault points one uninterrupted session consumes
/// (counted from after server startup, like the kill runs arm after it).
fn total_fault_points() -> u64 {
    let fs = Arc::new(FailpointFs::new());
    let (server, client) = start_server(&fs);
    fs.reset_consumed();
    let acked = run_session(&client);
    assert_eq!(acked.len(), 8, "unarmed session must ack everything");
    drop(client);
    drop(server);
    fs.consumed()
}

/// Kills the disk at `point`, recovers, and asserts every acked write
/// survived.
fn kill_recover_check(point: u64) {
    let fs = Arc::new(FailpointFs::new());
    let (server, client) = start_server(&fs);
    fs.arm(point);
    let acked = run_session(&client);
    drop(client);
    drop(server); // joins handlers, final queue flush hits the dead disk
    fs.disarm();

    let (recovered, _) = DurableStore::open_with(fs, "db")
        .unwrap_or_else(|e| panic!("recovery after kill at point {point} failed: {e}"));
    for ack in &acked {
        match ack {
            Acked::Load { doc, tag } => {
                let xml = recovered
                    .to_xml(*doc)
                    .unwrap_or_else(|e| {
                        panic!("kill at {point}: acked load of <{tag}> lost: {e}")
                    })
                    .to_xml();
                assert!(
                    xml.starts_with(&format!("<{tag}")),
                    "kill at {point}: acked doc {doc:?} recovered with wrong root"
                );
            }
            Acked::Rename { doc, label } => {
                let xml = recovered
                    .to_xml(*doc)
                    .unwrap_or_else(|e| {
                        panic!("kill at {point}: doc of acked rename {label} lost: {e}")
                    })
                    .to_xml();
                assert!(
                    xml.contains(&format!("<{label}")),
                    "kill at {point}: acked rename to {label} missing after recovery"
                );
            }
        }
    }
}

fn matrix_stride(total: u64) -> u64 {
    if cfg!(debug_assertions) {
        (total / 48).max(1) // ~48 kill points in debug; CI runs denser in release
    } else {
        (total / 384).max(1)
    }
}

/// The satellite guarantee: a reply on the socket is a durable write, at
/// every instant the disk can die under a live server session.
#[test]
fn acked_replies_survive_a_kill_at_every_fault_point() {
    let total = total_fault_points();
    assert!(total > 100, "matrix suspiciously small: {total} fault points");
    let stride = matrix_stride(total);
    let mut point = 1;
    while point <= total {
        kill_recover_check(point);
        point += stride;
    }
    // Past-the-end arming: the kill never fires, everything is acked and
    // everything recovers.
    kill_recover_check(total + 1000);
}
