//! The frequency-bucket digram queue is a pure performance change: on every
//! input, compression with the queue-based selector must produce a grammar
//! byte-identical to the naive full-table-scan selector's, over the same
//! number of rounds. These properties pin that down across the synthetic
//! corpus generators and arbitrary random documents.

use proptest::prelude::*;
use slt_xml::datasets::random::{medline_like, treebank_like, xmark_like};
use slt_xml::grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};
use slt_xml::sltgrammar::text::print_grammar;
use slt_xml::sltgrammar::SymbolTable;
use slt_xml::treerepair::{DigramSelector, TreeRePair, TreeRePairConfig};
use slt_xml::xmltree::binary::to_binary;
use slt_xml::xmltree::XmlTree;

/// Compresses with both selectors and asserts byte-identical output grammars
/// and identical round counts.
fn assert_selectors_agree(xml: &XmlTree, context: &str) {
    let mut symbols = SymbolTable::new();
    let bin = to_binary(xml, &mut symbols).unwrap();

    let queue_config = TreeRePairConfig::default();
    assert_eq!(queue_config.selector, DigramSelector::FrequencyQueue);
    let naive_config = TreeRePairConfig {
        selector: DigramSelector::NaiveScan,
        ..TreeRePairConfig::default()
    };

    let (g_queue, s_queue) =
        TreeRePair::new(queue_config).compress_binary(symbols.clone(), bin.clone());
    let (g_naive, s_naive) = TreeRePair::new(naive_config).compress_binary(symbols, bin);

    assert_eq!(
        print_grammar(&g_queue),
        print_grammar(&g_naive),
        "selectors disagree on {context}"
    );
    assert_eq!(
        s_queue.rounds, s_naive.rounds,
        "round counts disagree on {context}"
    );
    assert_eq!(s_queue.output_edges, s_naive.output_edges);
    assert_eq!(s_queue.max_intermediate_edges, s_naive.max_intermediate_edges);
}

/// Same check for GrammarRePair, which bulk-builds the shared queue per round.
fn assert_grammar_selectors_agree(xml: &XmlTree, context: &str) {
    let queue = GrammarRePair::default();
    let naive = GrammarRePair::new(GrammarRePairConfig {
        selector: DigramSelector::NaiveScan,
        ..GrammarRePairConfig::default()
    });
    let (g_queue, s_queue) = queue.compress_xml(xml);
    let (g_naive, s_naive) = naive.compress_xml(xml);
    assert_eq!(
        print_grammar(&g_queue),
        print_grammar(&g_naive),
        "grammar selectors disagree on {context}"
    );
    assert_eq!(s_queue.rounds, s_naive.rounds);
}

#[test]
fn selectors_agree_on_the_random_corpus_generators() {
    for seed in 0..4u64 {
        assert_selectors_agree(&xmark_like(4, seed), &format!("xmark_like(4, {seed})"));
        assert_selectors_agree(&medline_like(12, seed), &format!("medline_like(12, {seed})"));
        assert_selectors_agree(&treebank_like(8, seed), &format!("treebank_like(8, {seed})"));
    }
}

#[test]
fn selectors_agree_under_tight_rank_limits() {
    // Small k_in exercises the eligibility-exclusion path: high-frequency
    // digrams get skipped for rank, which is where the two selectors could
    // plausibly diverge.
    for max_rank in 1..=3 {
        let xml = xmark_like(5, 99);
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let base = TreeRePairConfig {
            max_rank,
            ..TreeRePairConfig::default()
        };
        let naive = TreeRePairConfig {
            selector: DigramSelector::NaiveScan,
            ..base
        };
        let (gq, sq) = TreeRePair::new(base).compress_binary(symbols.clone(), bin.clone());
        let (gn, sn) = TreeRePair::new(naive).compress_binary(symbols, bin);
        assert_eq!(print_grammar(&gq), print_grammar(&gn), "k_in = {max_rank}");
        assert_eq!(sq.rounds, sn.rounds);
    }
}

#[test]
fn grammar_repair_selectors_agree_on_corpus_generators() {
    for seed in 0..2u64 {
        assert_grammar_selectors_agree(&medline_like(8, seed), &format!("medline_like(8, {seed})"));
        assert_grammar_selectors_agree(&treebank_like(5, seed), &format!("treebank_like(5, {seed})"));
    }
}

/// Random unranked XML trees over a small alphabet (repetition keeps them
/// compressible, which maximizes the number of selection rounds).
fn arbitrary_xml(max_nodes: usize) -> impl Strategy<Value = XmlTree> {
    let labels = prop::sample::select(vec!["a", "b", "c", "item", "rec"]);
    proptest::collection::vec((labels, 0usize..8), 1..max_nodes).prop_map(|spec| {
        let mut t = XmlTree::new("root");
        let mut nodes = vec![t.root()];
        for (label, parent_choice) in spec {
            let parent = nodes[parent_choice % nodes.len()];
            let n = t.add_child(parent, label);
            nodes.push(n);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Queue and naive-scan selection are indistinguishable on arbitrary trees.
    #[test]
    fn prop_selectors_agree_on_random_trees(xml in arbitrary_xml(80)) {
        assert_selectors_agree(&xml, "random tree");
    }

    /// Random generator sizes/seeds for the corpus stand-ins.
    #[test]
    fn prop_selectors_agree_on_random_generator_parameters(
        items in 1usize..6,
        seed in any::<u64>(),
    ) {
        assert_selectors_agree(&xmark_like(items, seed), "xmark_like");
    }

    /// GrammarRePair agrees too on arbitrary trees.
    #[test]
    fn prop_grammar_selectors_agree_on_random_trees(xml in arbitrary_xml(50)) {
        assert_grammar_selectors_agree(&xml, "random tree");
    }
}
