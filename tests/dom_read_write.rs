//! End-to-end differential test of the full read/write cycle: a mixed update
//! workload applied through [`CompressedDom`] (with automatic recompression)
//! must stay byte-for-byte equivalent to the same workload applied to an
//! uncompressed reference copy — including everything the *read path* reports
//! (labels, element counts, path-query results) after every batch of updates.

use slt_xml::grammar_repair::navigate::element_count;
use slt_xml::grammar_repair::query::PathQuery;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::sltgrammar::SymbolTable;
use slt_xml::xmltree::binary::{from_binary, to_binary, tree_fingerprint};
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::{updates as reference, UpdateOp, XmlTree};
use slt_xml::CompressedDom;

/// Deterministic pseudo-random stream (splitmix64) so the workload is
/// reproducible without pulling in `rand`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn seed_document() -> XmlTree {
    let mut doc = String::from("<journal>");
    for i in 0..40 {
        doc.push_str("<issue>");
        for _ in 0..(1 + i % 3) {
            doc.push_str("<paper><title/><authors><a/><a/></authors><abstract/></paper>");
        }
        doc.push_str("</issue>");
    }
    doc.push_str("</journal>");
    parse_xml(&doc).unwrap()
}

#[test]
fn mixed_workload_with_recompression_matches_the_reference() {
    let xml = seed_document();
    let mut symbols = SymbolTable::new();
    let mut reference_bin = to_binary(&xml, &mut symbols).unwrap();

    let mut dom = CompressedDom::from_xml(&xml, 25);
    assert_eq!(fingerprint(&dom.grammar()), tree_fingerprint(&reference_bin, &symbols));

    let fragment = parse_xml("<erratum><note/></erratum>").unwrap();
    let labels = ["paper", "retracted", "editorial", "report"];
    let queries = ["//paper/title", "//erratum", "//issue", "//authors/a", "//retracted"];

    let mut rng = Rng(0x5EED);
    let mut applied = 0usize;
    for step in 0usize..120 {
        let size = dom.derived_size();
        let target = 1 + rng.below((size - 2) as u64) as usize;
        let op = match rng.below(10) {
            0 => UpdateOp::Delete { target },
            1..=3 => UpdateOp::InsertBefore {
                target,
                fragment: fragment.clone(),
            },
            _ => UpdateOp::Rename {
                target,
                label: labels[step % labels.len()].to_string(),
            },
        };

        // Apply to the compressed document first; if the position happens to be
        // invalid for the operation (e.g. renaming a null node), both sides
        // skip it so they stay in lockstep.
        match dom.apply(&op) {
            Ok(_) => {
                reference::apply_update(&mut reference_bin, &mut symbols, &op)
                    .expect("reference must accept whatever the grammar accepted");
                applied += 1;
            }
            Err(_) => continue,
        }

        if step % 10 == 0 {
            // Structural equivalence.
            assert_eq!(
                fingerprint(&dom.grammar()),
                tree_fingerprint(&reference_bin, &symbols),
                "divergence after {applied} applied updates"
            );
            // Read path equivalence.
            let reference_xml = from_binary(&reference_bin, &symbols).unwrap();
            assert_eq!(
                element_count(&dom.grammar()),
                reference_xml.node_count() as u128
            );
            for text in queries {
                let q = PathQuery::parse(text).unwrap();
                assert_eq!(
                    q.count(&dom.grammar()),
                    q.evaluate_uncompressed(&reference_xml).len() as u128,
                    "query {text} diverged after {applied} applied updates"
                );
            }
        }
    }
    assert!(applied >= 60, "expected most of the workload to apply, got {applied}");
    assert!(dom.recompressions() >= 2, "automatic recompression should have triggered");

    // Final full materialization equals the reference document.
    let final_xml = dom.to_xml().unwrap();
    let reference_xml = from_binary(&reference_bin, &symbols).unwrap();
    assert_eq!(final_xml.to_xml(), reference_xml.to_xml());
}

#[test]
fn recompression_never_changes_query_results() {
    // Apply a rename-heavy workload *without* automatic recompression, then
    // recompress manually and check the read path is bit-identical before and
    // after — recompression must be invisible to readers.
    let xml = seed_document();
    let mut dom = CompressedDom::from_xml(&xml, 0);
    let mut rng = Rng(0xFEED);
    for i in 0..60 {
        let size = dom.derived_size();
        let target = 1 + rng.below((size - 2) as u64) as usize;
        let _ = dom.apply(&UpdateOp::Rename {
            target,
            label: format!("tag{}", i % 7),
        });
    }
    let queries = ["//paper", "//tag0", "//tag3//a", "//issue/paper/title"];
    let before: Vec<u128> = queries
        .iter()
        .map(|q| PathQuery::parse(q).unwrap().count(&dom.grammar()))
        .collect();
    let edges_before = dom.edge_count();
    dom.recompress_now();
    let after: Vec<u128> = queries
        .iter()
        .map(|q| PathQuery::parse(q).unwrap().count(&dom.grammar()))
        .collect();
    assert_eq!(before, after);
    // Allow a handful of edges of slack: recompression of small grammars can
    // occasionally trade a couple of edges for an extra pattern rule.
    assert!(
        dom.edge_count() <= edges_before + edges_before / 10 + 6,
        "recompression grew the grammar substantially ({} -> {})",
        edges_before,
        dom.edge_count()
    );
}
