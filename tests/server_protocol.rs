//! Wire-protocol integration and robustness suite for `core::server` /
//! `core::client`.
//!
//! The first half drives a live server end to end over TCP and unix
//! sockets (load → apply → query → serialize → checkpoint → stats) and
//! pins the coalescing contract: pipelined acknowledged batches share
//! group-committed fsyncs. The second half mirrors the v3-image
//! corruption suite at the network edge: arbitrary bytes, bit-flipped
//! valid frames and truncated frames must produce a typed protocol error
//! reply and a closed connection — never a panic, a hang, or an
//! allocation driven by attacker-controlled lengths — and the server
//! must keep serving fresh connections afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use grammar_repair::durable::DurableStore;
use grammar_repair::queue::DrainPolicy;
use grammar_repair::server::{
    encode_request, Request, Server, ServerConfig, FRAME_HEADER_LEN,
};
use grammar_repair::wal::testing::FailpointFs;
use grammar_repair::{Client, ClientConfig, DocId, Endpoint, RepairError};
use proptest::prelude::*;
use xmltree::parse::parse_xml;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

fn doc(tag: &str, n: usize) -> XmlTree {
    let mut s = format!("<{tag}>");
    for _ in 0..n {
        s.push_str("<item><title/><body><p/><p/></body></item>");
    }
    s.push_str(&format!("</{tag}>"));
    parse_xml(&s).unwrap()
}

fn rename(target: u32, label: &str) -> UpdateOp {
    UpdateOp::Rename {
        target: target as usize,
        label: label.into(),
    }
}

/// A snappy drain policy so tests don't sit in coalescing windows.
fn test_config() -> ServerConfig {
    ServerConfig {
        drain: DrainPolicy {
            max_pending_ops: 64,
            max_batch_age: Duration::from_millis(2),
            idle_flush: Duration::from_millis(1),
        },
        reply_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    }
}

fn tcp_server() -> (Arc<FailpointFs>, Server, Client) {
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    let server = Server::serve_tcp(Arc::new(store), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr().unwrap();
    let client = Client::connect_tcp(addr.to_string());
    (fs, server, client)
}

fn temp_sock(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sltxml-test-{}-{name}.sock",
        std::process::id()
    ));
    p
}

#[test]
fn full_session_roundtrips_over_tcp() {
    let (_fs, server, client) = tcp_server();

    let a = client.load_xml(&doc("feed", 3)).unwrap();
    let b = client.load_xml(&doc("blog", 2)).unwrap();
    assert_ne!(a, b);

    let stats = client.apply_batch(a, vec![rename(1, "entry"), rename(5, "note")]).unwrap();
    assert_eq!(stats.ops, 2);

    let matches = client.query(a, "//entry").unwrap();
    assert_eq!(matches.labels, vec!["entry".to_string()]);

    let xml = client.to_xml(a).unwrap();
    assert!(xml.contains("<entry") && xml.contains("<note"));
    assert!(client.to_xml(b).unwrap().contains("<blog"));

    let report = client.checkpoint().unwrap();
    assert_eq!(report.documents, 2);

    let stats = client.stats().unwrap();
    assert_eq!(stats.documents, 2);
    assert!(stats.requests >= 6);
    assert!(stats.wal_syncs > 0);

    // Store-level failures keep the connection open.
    let err = client.apply_batch(a, vec![rename(3, "null-target")]).unwrap_err();
    assert!(matches!(err, RepairError::Storage { .. }), "got {err}");
    assert!(client.to_xml(a).unwrap().contains("<entry"), "connection survived");

    drop(server);
}

#[cfg(unix)]
#[test]
fn full_session_roundtrips_over_unix_socket() {
    let path = temp_sock("roundtrip");
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    let server = Server::serve_unix(Arc::new(store), &path, test_config()).unwrap();
    let client = Client::connect_unix(&path);

    let a = client.load_xml(&doc("feed", 2)).unwrap();
    client.apply_batch(a, vec![rename(1, "entry")]).unwrap();
    assert!(client.to_xml(a).unwrap().contains("<entry"));
    let stats = client.stats().unwrap();
    assert_eq!(stats.documents, 1);

    drop(server);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pipelined_acks_share_group_commits() {
    let (fs, server, client) = tcp_server();
    let a = client.load_xml(&doc("feed", 4)).unwrap();

    let syncs_before = fs.sync_count();
    const BATCHES: usize = 24;
    let pending: Vec<_> = (0..BATCHES)
        .map(|i| {
            client
                .begin_apply_batch(a, vec![rename(1, &format!("r{i}"))])
                .unwrap()
        })
        .collect();
    for p in pending {
        assert!(p.wait_applied().unwrap().ops >= 1);
    }
    let syncs = fs.sync_count() - syncs_before;
    assert!(
        (syncs as usize) < BATCHES,
        "{BATCHES} acknowledged batches must share fsyncs, got {syncs}"
    );
    drop(server);
}

#[test]
fn concurrent_clients_share_one_server() {
    let (_fs, server, client) = tcp_server();
    let mut ids = Vec::new();
    for d in 0..4 {
        ids.push(client.load_xml(&doc(&format!("doc{d}"), 3)).unwrap());
    }
    let threads: Vec<_> = ids
        .iter()
        .map(|&id| {
            let client = client.clone();
            std::thread::spawn(move || {
                for i in 0..6 {
                    client
                        .apply_batch(id, vec![rename(1, &format!("t{i}"))])
                        .unwrap();
                }
                client.to_xml(id).unwrap()
            })
        })
        .collect();
    for t in threads {
        assert!(t.join().unwrap().contains("<t5"));
    }
    let stats = server.stats();
    assert!(stats.requests >= 4 + 24 + 4);
    drop(server);
}

#[test]
fn client_reconnects_after_a_dead_connection() {
    let (fs, server, _) = tcp_server();
    let addr = server.local_addr().unwrap();
    // An impatient client: replies slower than 100 ms poison its
    // connection.
    let client = Client::with_config(
        Endpoint::Tcp(addr.to_string()),
        ClientConfig {
            read_timeout: Duration::from_millis(100),
            ..ClientConfig::default()
        },
    );
    let a = client.load_xml(&doc("feed", 2)).unwrap();

    // Stall the disk: the ack cannot arrive before the client times out.
    fs.set_sync_delay(Duration::from_millis(400));
    let err = client.apply_batch(a, vec![rename(1, "slow")]).unwrap_err();
    assert!(
        err.to_string().contains("connection lost"),
        "expected a poisoned connection, got {err}"
    );

    // The lost reply's batch may or may not have committed (the module
    // docs' retry caveat); either way the *next* request must redial
    // transparently and succeed.
    fs.set_sync_delay(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(500));
    assert!(client.to_xml(a).unwrap().contains("<item"));

    // A protocol-error close on one raw connection never disturbs the
    // reconnected client.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xFF; 32]).unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = raw.read_to_end(&mut buf);
    drop(raw);
    assert!(client.to_xml(a).unwrap().contains("<item"));
    drop(server);
}

/// Sends raw bytes on a fresh connection, half-closes the write side,
/// and drains whatever the server sends back until it closes. Returns
/// the reply bytes. The 10 s timeout turns a hung server into a test
/// failure instead of a CI deadlock.
fn poke(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(bytes).unwrap();
    raw.flush().unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = Vec::new();
    let _ = raw.read_to_end(&mut reply);
    reply
}

/// A reply, if any, must be a single well-formed protocol-error frame.
fn assert_protocol_error_or_close(reply: &[u8]) {
    if reply.is_empty() {
        return; // closed without reply: mid-frame EOF
    }
    assert!(reply.len() >= FRAME_HEADER_LEN, "torn reply: {reply:?}");
    let payload = &reply[FRAME_HEADER_LEN..];
    let (_, response) = grammar_repair::server::decode_response(payload).unwrap();
    match response {
        grammar_repair::server::Response::Error { code, .. } => {
            assert_eq!(code, grammar_repair::server::ErrorCode::Protocol);
        }
        other => panic!("expected a protocol error reply, got {other:?}"),
    }
}

fn valid_frame(doc: DocId) -> Vec<u8> {
    encode_request(
        7,
        &Request::ApplyBatch {
            doc,
            ops: vec![rename(1, "entry")],
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary bytes never panic, hang, or OOM the server; every
    /// outcome is a typed error reply or a plain close, and the server
    /// keeps serving real clients afterwards.
    #[test]
    fn prop_server_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let (_fs, server, client) = tcp_server();
        let addr = server.local_addr().unwrap();
        let reply = poke(addr, &bytes);
        assert_protocol_error_or_close(&reply);
        // The server survived: a fresh, well-formed session succeeds.
        let a = client.load_xml(&doc("probe", 1)).unwrap();
        prop_assert!(client.to_xml(a).unwrap().contains("<probe"));
    }

    /// A single flipped bit anywhere in a valid frame is always caught
    /// by the length bound or the CRC — typed error or close, and no
    /// state change from the corrupted request.
    #[test]
    fn prop_bit_flipped_frames_are_rejected(seed in any::<u64>()) {
        let (_fs, server, client) = tcp_server();
        let addr = server.local_addr().unwrap();
        let a = client.load_xml(&doc("feed", 2)).unwrap();

        let mut frame = valid_frame(a);
        let bit = (seed as usize) % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        let reply = poke(addr, &frame);
        assert_protocol_error_or_close(&reply);
        // The corrupt ApplyBatch must not have landed.
        prop_assert!(!client.to_xml(a).unwrap().contains("<entry"));
        drop(server);
    }

    /// Every truncation of a valid frame closes cleanly (mid-frame EOF)
    /// or with a typed error; the partial request never applies.
    #[test]
    fn prop_truncated_frames_never_apply(seed in any::<u64>()) {
        let (_fs, server, client) = tcp_server();
        let addr = server.local_addr().unwrap();
        let a = client.load_xml(&doc("feed", 2)).unwrap();

        let frame = valid_frame(a);
        let len = (seed as usize) % frame.len();
        let reply = poke(addr, &frame[..len]);
        assert_protocol_error_or_close(&reply);
        prop_assert!(!client.to_xml(a).unwrap().contains("<entry"));
        drop(server);
    }
}

#[test]
fn oversized_length_headers_are_rejected_without_allocating() {
    let (_fs, server, _client) = tcp_server();
    let addr = server.local_addr().unwrap();
    // length = u32::MAX: a naive decoder would try a 4 GiB allocation.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    let reply = poke(addr, &bytes);
    assert!(!reply.is_empty(), "an oversized length is detectable before EOF");
    assert_protocol_error_or_close(&reply);
    assert_eq!(server.stats().protocol_errors, 1);
    drop(server);
}
