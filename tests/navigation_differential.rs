//! Differential read-path oracle harness.
//!
//! The fast read paths — the table-backed [`Cursor`], the array-stepping
//! [`PreorderLabels`] machine and the memoized, output-sensitive
//! [`PathQuery::evaluate`] — must be byte-/position-identical to their naive
//! oracles:
//!
//! * the pointer-tree document order and the materialized binary tree,
//! * the cursor-free uncompressed query evaluation
//!   (`PathQuery::evaluate_uncompressed`), and
//! * the previous streaming evaluator (`PathQuery::evaluate_streaming`),
//!
//! on the heterogeneous corpus **and across update/recompress cycles driven
//! through the session layer** — the latter catches stale
//! [`NavTables`] snapshots: every batch and every recompression bumps rule
//! versions, and `CompressedDom` must rebuild its cached tables before the
//! next read.

use proptest::prelude::*;
use slt_xml::datasets::catalog::Dataset;
use slt_xml::datasets::regular::heterogeneous_records_like;
use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::navigate::{term_counts, Cursor, NavTables, PreorderLabels};
use slt_xml::grammar_repair::query::{Axis, PathQuery, QueryMatches};
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::sltgrammar::{NodeKind, RhsTree, SymbolTable};
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::binary::to_binary;
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::updates::{self as reference, UpdateOp};
use slt_xml::xmltree::XmlTree;
use slt_xml::CompressedDom;
use std::sync::Arc;

/// Document-order element labels through the cursor's document view.
fn doc_labels_via_cursor(cursor: &mut Cursor<'_>) -> Vec<String> {
    let mut labels = Vec::new();
    'outer: loop {
        labels.push(cursor.label().to_string());
        if cursor.doc_first_child() {
            continue;
        }
        loop {
            if cursor.doc_next_sibling() {
                break;
            }
            if !cursor.doc_parent() {
                break 'outer;
            }
        }
    }
    labels
}

fn doc_labels(xml: &XmlTree) -> Vec<String> {
    xml.preorder()
        .iter()
        .map(|&n| xml.label(n).to_string())
        .collect()
}

/// Binary-tree preorder labels (the `PreorderLabels` oracle).
fn binary_labels(bin: &RhsTree, symbols: &SymbolTable) -> Vec<String> {
    bin.preorder()
        .iter()
        .map(|&n| match bin.kind(n) {
            NodeKind::Term(t) => symbols.name(t).to_string(),
            _ => unreachable!("binary trees contain only terminals"),
        })
        .collect()
}

/// Document-order element labels straight off the binary encoding: binary
/// preorder restricted to non-null terminals. Unlike a pointer-tree
/// materialization this is *forest-proof* — an `InsertBefore` targeting the
/// document root legitimately populates the root's next-sibling slot, which
/// `xmltree::binary::from_binary` silently drops but navigation must (and
/// does) surface.
fn binary_doc_labels(bin: &RhsTree, symbols: &SymbolTable) -> Vec<String> {
    binary_labels(bin, symbols)
        .into_iter()
        .filter(|l| l != slt_xml::sltgrammar::NULL_SYMBOL_NAME)
        .collect()
}

/// Independent reimplementation of the path-query semantics over the
/// uncompressed binary tree — the oracle shares no code with the compiled
/// transition, the streaming cursor walk or the memoized materializer.
fn query_oracle_on_binary(q: &PathQuery, bin: &RhsTree, symbols: &SymbolTable) -> QueryMatches {
    let steps = q.steps();
    let transition = |ctx: u32, label: &str| -> (u32, bool) {
        let mut next = 0u32;
        let mut matched = false;
        for (i, step) in steps.iter().enumerate() {
            if ctx & (1 << i) == 0 {
                continue;
            }
            if step.axis == Axis::Descendant {
                next |= 1 << i;
            }
            let hit = step.label.as_deref().is_none_or(|want| want == label);
            if hit {
                if i + 1 == steps.len() {
                    matched = true;
                } else {
                    next |= 1 << (i + 1);
                }
            }
        }
        (next, matched)
    };
    let mut out = QueryMatches::default();
    let mut position = 0u64;
    // Document order: first (descendant) child before second (sibling) child;
    // the sibling shares the element's incoming context.
    let mut stack = vec![(bin.root(), 1u32)];
    while let Some((node, ctx)) = stack.pop() {
        match bin.kind(node) {
            NodeKind::Term(t) if symbols.is_null(t) => {}
            NodeKind::Term(t) => {
                let label = symbols.name(t);
                let (child_ctx, matched) = transition(ctx, label);
                if matched {
                    out.positions.push(position);
                    out.labels.push(label.to_string());
                }
                position += 1;
                let children = bin.children(node);
                stack.push((children[1], ctx));
                stack.push((children[0], child_ctx));
            }
            _ => unreachable!("binary trees contain only terminals"),
        }
    }
    out
}

const CORPUS_QUERIES: &[&str] = &[
    "//item",
    "//item/name",
    "/site/regions//keyword",
    "//person",
    "//entry",
    "/log/entry/request/uri",
    "//rec0/f0",
    "//*",
    "/absent//nothing",
];

/// Asserts every fast read path against its oracle for one document/grammar
/// pair through one shared table snapshot.
fn assert_reads_match(
    xml: &XmlTree,
    g: &slt_xml::sltgrammar::Grammar,
    tables: &Arc<NavTables>,
    context: &str,
) {
    // Cursor document view vs pointer-tree document order.
    let mut cursor = Cursor::with_tables(g, tables.clone());
    assert_eq!(
        doc_labels_via_cursor(&mut cursor),
        doc_labels(xml),
        "{context}: cursor document order"
    );

    // Streaming preorder vs the materialized binary tree.
    let mut symbols = SymbolTable::new();
    let bin = to_binary(xml, &mut symbols).expect("valid document");
    let fast: Vec<String> = PreorderLabels::with_tables(g, tables.clone())
        .map(|t| g.symbols.name(t).to_string())
        .collect();
    assert_eq!(fast, binary_labels(&bin, &symbols), "{context}: preorder labels");

    // Label statistics vs a naive count.
    let counts = term_counts(g);
    let mut expected: std::collections::HashMap<String, u128> = std::collections::HashMap::new();
    for n in xml.preorder() {
        *expected.entry(xml.label(n).to_string()).or_insert(0) += 1;
    }
    for (label, count) in expected {
        let got: u128 = counts
            .iter()
            .filter(|&(&t, _)| g.symbols.name(t) == label)
            .map(|(_, &c)| c)
            .sum();
        assert_eq!(got, count, "{context}: count of label {label}");
    }

    // Query evaluation: memoized vs streaming vs uncompressed, plus count.
    for text in CORPUS_QUERIES {
        let q = PathQuery::parse(text).unwrap();
        let oracle = q.evaluate_uncompressed(xml);
        let streamed = q.evaluate_streaming(g);
        let memoized = q.evaluate_with_tables(g, tables);
        assert_eq!(streamed, oracle, "{context}: streaming oracle for {text}");
        assert_eq!(memoized, oracle, "{context}: memoized evaluate for {text}");
        assert_eq!(q.count(g), oracle.len() as u128, "{context}: count for {text}");
    }
}

/// Binary-level twin of [`assert_reads_match`] for post-update states, where
/// the ground truth is the oracle-updated binary tree itself (forest-proof,
/// see [`binary_doc_labels`]).
fn assert_reads_match_binary(
    bin: &RhsTree,
    symbols: &SymbolTable,
    g: &slt_xml::sltgrammar::Grammar,
    tables: &Arc<NavTables>,
    context: &str,
) {
    let mut cursor = Cursor::with_tables(g, tables.clone());
    assert_eq!(
        doc_labels_via_cursor(&mut cursor),
        binary_doc_labels(bin, symbols),
        "{context}: cursor document order"
    );
    let fast: Vec<String> = PreorderLabels::with_tables(g, tables.clone())
        .map(|t| g.symbols.name(t).to_string())
        .collect();
    assert_eq!(fast, binary_labels(bin, symbols), "{context}: preorder labels");
    for text in CORPUS_QUERIES {
        let q = PathQuery::parse(text).unwrap();
        let oracle = query_oracle_on_binary(&q, bin, symbols);
        assert_eq!(
            q.evaluate_streaming(g),
            oracle,
            "{context}: streaming oracle for {text}"
        );
        assert_eq!(
            q.evaluate_with_tables(g, tables),
            oracle,
            "{context}: memoized evaluate for {text}"
        );
        assert_eq!(q.count(g), oracle.len() as u128, "{context}: count for {text}");
    }
}

/// `doc_prev_sibling` vs the pointer-tree oracle: at every element of every
/// corpus document (both compressors), the cursor's previous-sibling move
/// must agree with the parent's child list — including the round trip back
/// via `doc_next_sibling` and the stay-put guarantee at first children.
#[test]
fn doc_prev_sibling_matches_the_pointer_tree_oracle() {
    let mut documents: Vec<(String, XmlTree)> = vec![(
        "heterogeneous".to_string(),
        heterogeneous_records_like(4, 24),
    )];
    documents.push((
        Dataset::ExiWeblog.name().to_string(),
        Dataset::ExiWeblog.generate(0.01),
    ));
    for (name, xml) in &documents {
        // Oracle: per document-preorder element, its previous sibling's
        // label (None for first children and the root).
        let order = xml.preorder();
        let prev_label: Vec<Option<String>> = order
            .iter()
            .map(|&n| {
                let parent = xml.parent(n)?;
                let siblings = xml.children(parent);
                let at = siblings.iter().position(|&s| s == n).expect("child listed");
                (at > 0).then(|| xml.label(siblings[at - 1]).to_string())
            })
            .collect();

        for (compressor, g) in [
            ("grammarrepair", GrammarRePair::default().compress_xml(xml).0),
            ("treerepair", TreeRePair::default().compress_xml(xml).0),
        ] {
            let tables = Arc::new(NavTables::build(&g));
            for (i, expected) in prev_label.iter().enumerate() {
                let context = format!("{name}/{compressor}: element {i}");
                let mut cursor = Cursor::with_tables(&g, tables.clone());
                assert!(cursor.nth_element(i as u128), "{context} addressable");
                let here = xml.label(order[i]);
                assert_eq!(cursor.label(), here, "{context} positioned");
                match expected {
                    Some(prev) => {
                        assert!(cursor.doc_prev_sibling(), "{context} has a prev sibling");
                        assert_eq!(cursor.label(), prev, "{context} prev label");
                        // The move is invertible: next-sibling returns here.
                        assert!(cursor.doc_next_sibling(), "{context} round trip");
                        assert_eq!(cursor.label(), here, "{context} round-trip label");
                    }
                    None => {
                        assert!(!cursor.doc_prev_sibling(), "{context} is a first child");
                        assert_eq!(cursor.label(), here, "{context} failed move stays put");
                    }
                }
            }
        }
    }
}

#[test]
fn fast_read_paths_match_oracles_on_the_heterogeneous_corpus() {
    let mut documents: Vec<(String, XmlTree)> = vec![(
        "heterogeneous".to_string(),
        heterogeneous_records_like(6, 40),
    )];
    for dataset in [Dataset::ExiWeblog, Dataset::XMark, Dataset::ExiTelecomp] {
        documents.push((dataset.name().to_string(), dataset.generate(0.02)));
    }
    for (name, xml) in &documents {
        let (g, _) = GrammarRePair::default().compress_xml(xml);
        let tables = Arc::new(NavTables::build(&g));
        assert_reads_match(xml, &g, &tables, name);

        // TreeRePair grammars exercise different rule shapes than
        // GrammarRePair ones; cover both compressors.
        let (g2, _) = TreeRePair::default().compress_xml(xml);
        let tables2 = Arc::new(NavTables::build(&g2));
        assert_reads_match(xml, &g2, &tables2, &format!("{name}/treerepair"));
    }
}

/// The stale-tables catcher: reads through the session-cached tables must
/// stay oracle-identical after every update batch and every recompression.
#[test]
fn session_reads_survive_update_recompress_cycles() {
    let base = Dataset::ExiWeblog.generate(0.02);
    for (mix, seed, label) in [
        (WorkloadMix::default(), 7u64, "uniform-insert-delete"),
        (WorkloadMix::clustered(0.9), 11, "clustered-renames"),
    ] {
        let ops = random_update_sequence(&base, 60, seed, mix);
        let mut dom = CompressedDom::from_xml(&base, 3);
        let mut symbols = SymbolTable::new();
        let mut oracle = to_binary(&base, &mut symbols).expect("valid document");

        let mut last_tables: Option<Arc<NavTables>> = None;
        for (b, batch) in ops.chunks(10).enumerate() {
            for op in batch {
                reference::apply_update(&mut oracle, &mut symbols, op)
                    .expect("workload operations stay valid");
            }
            dom.apply_batch(batch)
                .unwrap_or_else(|e| panic!("{label}: batch {b} rejected: {e:?}"));

            // The cached snapshot must have been invalidated by the batch.
            let tables = dom.nav_tables();
            if let Some(prev) = &last_tables {
                assert!(
                    !Arc::ptr_eq(prev, &tables),
                    "{label}: batch {b} must invalidate the cached NavTables"
                );
            }
            assert!(tables.is_current(&dom.grammar()));
            last_tables = Some(tables.clone());

            let context = format!("{label}/batch{b}");
            assert_reads_match_binary(&oracle, &symbols, &dom.grammar(), &tables, &context);

            // Session convenience reads resolve through the same cache.
            let q = PathQuery::parse("//entry").unwrap();
            assert_eq!(
                dom.query(&q),
                query_oracle_on_binary(&q, &oracle, &symbols),
                "{context}: dom.query"
            );

            if b % 2 == 1 {
                dom.recompress_now();
                let tables = dom.nav_tables();
                assert!(
                    !Arc::ptr_eq(last_tables.as_ref().unwrap(), &tables),
                    "{label}: recompression must invalidate the cached NavTables"
                );
                last_tables = Some(tables.clone());
                let context = format!("{label}/batch{b}/recompressed");
                assert_reads_match_binary(&oracle, &symbols, &dom.grammar(), &tables, &context);
            }
        }
    }
}

/// Repeated reads without interleaved writes must keep sharing one snapshot —
/// the caching is only worth its O(rules) validation if it actually hits.
#[test]
fn session_reads_share_one_snapshot_between_writes() {
    let xml = parse_xml(
        "<db><r><k/><v/></r><r><k/><v/></r><r><k/><v/></r><r><k/><v/></r></db>",
    )
    .unwrap();
    let mut dom = CompressedDom::from_xml(&xml, 0);
    let t1 = dom.nav_tables();
    let _ = dom.query_str("//r/k").unwrap();
    let _ = dom.cursor();
    let t2 = dom.nav_tables();
    assert!(Arc::ptr_eq(&t1, &t2));
    dom.apply(&UpdateOp::Rename {
        target: 1,
        label: "row".to_string(),
    })
    .unwrap();
    let t3 = dom.nav_tables();
    assert!(!Arc::ptr_eq(&t1, &t3));
    assert_eq!(dom.query_str("//row").unwrap().len(), 1);
}

/// Random document strategy shared by the property tests below.
fn arbitrary_xml(max_nodes: usize) -> impl Strategy<Value = XmlTree> {
    let labels = prop::sample::select(vec!["a", "b", "c", "item", "rec"]);
    proptest::collection::vec((labels, 0usize..8), 1..max_nodes).prop_map(|spec| {
        let mut t = XmlTree::new("root");
        let mut nodes = vec![t.root()];
        for (label, parent_choice) in spec {
            let parent = nodes[parent_choice % nodes.len()];
            let n = t.add_child(parent, label);
            nodes.push(n);
        }
        t
    })
}

/// Random path queries over the small label alphabet used by `arbitrary_xml`.
fn arbitrary_query() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,
        prop::sample::select(vec!["a", "b", "c", "item", "rec", "root", "*"]),
    );
    proptest::collection::vec(step, 1..4).prop_map(|steps| {
        let mut q = String::new();
        for (descendant, label) in steps {
            q.push_str(if descendant { "//" } else { "/" });
            q.push_str(label);
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The memoized materializer agrees with both oracles on arbitrary
    /// documents and arbitrary small queries, through both compressors.
    #[test]
    fn prop_memoized_evaluate_matches_oracles(xml in arbitrary_xml(50), query in arbitrary_query()) {
        let q = PathQuery::parse(&query).unwrap();
        let oracle = q.evaluate_uncompressed(&xml);
        for (name, g) in [
            ("treerepair", TreeRePair::default().compress_xml(&xml).0),
            ("grammarrepair", GrammarRePair::default().compress_xml(&xml).0),
        ] {
            let tables = NavTables::build(&g);
            prop_assert_eq!(&q.evaluate_with_tables(&g, &tables), &oracle, "{} memoized {}", name, query);
            prop_assert_eq!(&q.evaluate_streaming(&g), &oracle, "{} streaming {}", name, query);
            prop_assert_eq!(q.count(&g), oracle.len() as u128, "{} count {}", name, query);
        }
    }

    /// Table-backed document navigation visits exactly the oracle-updated
    /// binary document after a random update prefix (fresh tables per
    /// mutation; forest-proof via the binary-level oracle).
    #[test]
    fn prop_cursor_matches_document_after_updates(xml in arbitrary_xml(40), seed in 0u64..1000) {
        let ops = random_update_sequence(&xml, 6, seed, WorkloadMix::default());
        let mut dom = CompressedDom::from_xml(&xml, 2);
        let mut symbols = SymbolTable::new();
        let mut oracle = to_binary(&xml, &mut symbols).expect("valid document");
        for op in &ops {
            reference::apply_update(&mut oracle, &mut symbols, op).expect("valid op");
            dom.apply(op).expect("valid op");
        }
        let mut cursor = dom.cursor();
        prop_assert_eq!(
            doc_labels_via_cursor(&mut cursor),
            binary_doc_labels(&oracle, &symbols)
        );
        let q = PathQuery::parse("//rec//item").unwrap();
        prop_assert_eq!(dom.query(&q), query_oracle_on_binary(&q, &oracle, &symbols));
    }
}
