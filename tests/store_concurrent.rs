//! Concurrency differential suite for the sharded [`DomStore`].
//!
//! The store promises snapshot semantics: readers take no locks, never see a
//! torn document, and a snapshot held across concurrent updates and
//! recompressions stays byte-stable; writers to distinct documents proceed
//! in parallel and the final state is byte-identical to a single-threaded
//! replay of the same per-document schedules. These tests drive N reader
//! threads, per-document writer threads and the background maintenance
//! thread against each other and pin all of that. The schedules are
//! deterministic; the *interleavings* are not — CI runs this suite several
//! times in release mode to shake out races.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::store::SchedulerConfig;
use slt_xml::sltgrammar::{RhsTree, SymbolTable};
use slt_xml::xmltree::binary::{from_binary, to_binary};
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::updates::{self as reference, UpdateOp};
use slt_xml::xmltree::XmlTree;
use slt_xml::{DocId, DomStore};

/// Structurally different documents over overlapping alphabets.
fn corpus() -> Vec<XmlTree> {
    let mut feed = String::from("<feed>");
    for _ in 0..10 {
        feed.push_str("<item><title/><body><p/><p/></body></item>");
    }
    feed.push_str("</feed>");
    let mut blog = String::from("<blog>");
    for _ in 0..8 {
        blog.push_str("<post><title/><body><p/></body><comments><c/><c/></comments></post>");
    }
    blog.push_str("</blog>");
    let mut log = String::from("<log>");
    for _ in 0..12 {
        log.push_str("<entry><ts/><message/><level/></entry>");
    }
    log.push_str("</log>");
    vec![
        parse_xml(&feed).unwrap(),
        parse_xml(&blog).unwrap(),
        parse_xml(&log).unwrap(),
    ]
}

fn workload(xml: &XmlTree, count: usize, seed: u64) -> Vec<UpdateOp> {
    random_update_sequence(
        xml,
        count,
        seed,
        WorkloadMix {
            insert_probability: 0.7,
            rename_probability: 0.5,
            locality: 0.7,
            cluster_every: 9,
            ..WorkloadMix::default()
        },
    )
}

/// Replays one op schedule on the uncompressed binary oracle.
fn oracle_serialization(xml: &XmlTree, ops: &[UpdateOp]) -> String {
    let mut symbols = SymbolTable::new();
    let mut bin: RhsTree = to_binary(xml, &mut symbols).expect("valid document");
    for op in ops {
        reference::apply_update(&mut bin, &mut symbols, op).expect("workload stays valid");
    }
    from_binary(&bin, &symbols)
        .expect("oracle stays a well-formed document")
        .to_xml()
}

/// The tentpole guarantee, compile-checked: the store and its snapshots
/// cross threads, and reads are `&self`.
#[test]
fn store_is_send_sync_and_shared_references_read_from_any_thread() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DomStore>();
    assert_send_sync::<slt_xml::Snapshot>();

    let store = DomStore::new();
    let ids: Vec<DocId> = corpus().iter().map(|x| store.load_xml(x).unwrap()).collect();
    let store = &store; // plain shared reference — no Arc needed
    let ids = &ids;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                scope.spawn(move || {
                    let mut reads = 0usize;
                    for round in 0..25 {
                        let id = ids[(t + round) % ids.len()];
                        let snap = store.snapshot(id).unwrap();
                        // Internal consistency of one snapshot.
                        assert_eq!(snap.preorder_labels().count() as u128, snap.derived_size());
                        let hits = store.query_str(id, "//title").unwrap();
                        assert_eq!(
                            hits.len() as u128,
                            store
                                .query_count(id, &slt_xml::PathQuery::parse("//title").unwrap())
                                .unwrap()
                        );
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 25);
        }
    });
}

/// N readers traverse and query while one writer per document batches
/// updates and the background thread recompresses. Readers must only ever
/// observe internally consistent snapshots; the final state must be
/// byte-identical to the single-threaded oracle replay of each document's
/// schedule.
#[test]
fn concurrent_readers_writers_and_recompression_converge_to_the_oracle() {
    let docs = corpus();
    let schedules: Vec<Vec<UpdateOp>> = docs
        .iter()
        .enumerate()
        .map(|(i, xml)| workload(xml, 36, 0xC0DE + i as u64))
        .collect();

    let mut store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 40,
        drain_budget: 0,
        auto: true,
    });
    let ids: Vec<DocId> = docs.iter().map(|x| store.load_xml(x).unwrap()).collect();
    store.start_maintenance(Duration::from_millis(1));

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // One writer per document: apply its schedule in small batches, with
        // short pauses so readers and the maintenance thread interleave.
        for (d, &id) in ids.iter().enumerate() {
            let schedule = &schedules[d];
            let store = &store;
            scope.spawn(move || {
                for batch in schedule.chunks(4) {
                    store.apply_batch(id, batch).expect("workload stays valid");
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
        }
        // Readers: hammer snapshots of all documents until the writers stop.
        for t in 0..3usize {
            let store = &store;
            let ids = &ids;
            let done = &done;
            scope.spawn(move || {
                let mut round = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let id = ids[(t + round) % ids.len()];
                    round += 1;
                    let snap = store.snapshot(id).unwrap();
                    // A snapshot is one consistent version: streaming its
                    // preorder must agree with its own size tables, whatever
                    // the writers are doing meanwhile.
                    assert_eq!(snap.preorder_labels().count() as u128, snap.derived_size());
                    let q = slt_xml::PathQuery::parse("//title").unwrap();
                    assert_eq!(snap.query(&q).len() as u128, snap.query_count(&q));
                    let mut cursor = snap.cursor();
                    assert_eq!(cursor.subtree_size(), snap.derived_size());
                    while cursor.doc_first_child() {}
                }
            });
        }
        // Watchdog: once every document has absorbed its full schedule,
        // release the readers (the scope then joins everyone).
        let store = &store;
        let ids = &ids;
        let done = &done;
        scope.spawn(move || loop {
            let total: usize = ids
                .iter()
                .map(|&id| store.total_updates(id).unwrap())
                .sum();
            if total == 36 * ids.len() {
                done.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        });
    });
    store.stop_maintenance();

    // Byte-identical to the single-threaded oracle replay, per document.
    for (d, (&id, xml)) in ids.iter().zip(&docs).enumerate() {
        assert_eq!(
            store.to_xml(id).unwrap().to_xml(),
            oracle_serialization(xml, &schedules[d]),
            "doc {d} diverged from its oracle replay"
        );
        store.grammar(id).unwrap().validate().unwrap();
        assert_eq!(store.total_updates(id).unwrap(), 36);
    }
    // The run must actually have exercised background recompression.
    let recompressions: usize = ids
        .iter()
        .map(|&id| store.recompressions(id).unwrap())
        .sum();
    assert!(
        recompressions >= 1,
        "the schedule must trigger the background scheduler"
    );
}

/// A held snapshot is immutable across updates and recompression swaps: same
/// serialization, same `NavTables` `Arc`, while fresh reads see a different
/// grammar `Arc` with the new state.
#[test]
fn old_snapshots_survive_atomic_swaps_untouched() {
    let docs = corpus();
    let store = DomStore::new();
    let id = store.load_xml(&docs[0]).unwrap();

    let old = store.snapshot(id).unwrap();
    let old_serialization = old.to_xml().unwrap().to_xml();
    let old_grammar = old.grammar_arc();
    let old_tables = old.nav_tables();

    let ops = workload(&docs[0], 24, 0xBEEF);
    for batch in ops.chunks(6) {
        store.apply_batch(id, batch).expect("workload stays valid");
    }
    store.recompress(id).unwrap();

    // The old snapshot still reads the pre-update state, bit for bit…
    assert_eq!(old.to_xml().unwrap().to_xml(), old_serialization);
    assert!(Arc::ptr_eq(&old.grammar_arc(), &old_grammar));
    assert!(Arc::ptr_eq(&old.nav_tables(), &old_tables));
    assert_eq!(old.preorder_labels().count() as u128, old.derived_size());

    // …while the store serves the new version through a new snapshot.
    let new = store.snapshot(id).unwrap();
    assert!(!Arc::ptr_eq(&new.grammar_arc(), &old_grammar));
    assert_eq!(
        new.to_xml().unwrap().to_xml(),
        oracle_serialization(&docs[0], &ops)
    );
    // Dropping the old snapshot releases the old version without touching
    // the published one.
    drop(old);
    assert_eq!(store.to_xml(id).unwrap().to_xml(), new.to_xml().unwrap().to_xml());
}

/// Generation-tagged ids under concurrent churn: stale ids always error (no
/// slot aliasing), live documents are never disturbed, and maintenance
/// sweeps skip dead slots.
#[test]
fn stale_doc_ids_error_under_concurrent_churn() {
    let docs = corpus();
    let store = DomStore::new();
    let keeper = store.load_xml(&docs[0]).unwrap();
    let keeper_bytes = store.to_xml(keeper).unwrap().to_xml();

    let store = &store;
    std::thread::scope(|scope| {
        // Churners: load and remove in a loop, holding ids beyond removal.
        for t in 0..3usize {
            let xml = &docs[1 + t % 2];
            scope.spawn(move || {
                for _ in 0..20 {
                    let id = store.load_xml(xml).unwrap();
                    assert!(store.contains(id));
                    store.remove(id).unwrap();
                    // The id is dead from every surface, immediately.
                    assert!(!store.contains(id));
                    assert!(store.snapshot(id).is_err());
                    assert!(store.query_str(id, "//title").is_err());
                    assert!(store.apply(id, &UpdateOp::Delete { target: 1 }).is_err());
                    assert!(store.remove(id).is_err());
                }
            });
        }
        // Maintenance sweeps run concurrently and only ever see live docs.
        scope.spawn(move || {
            for _ in 0..40 {
                let report = store.maintain();
                for (id, _) in &report.drained {
                    assert!(store.contains(*id) || store.snapshot(*id).is_err());
                }
                std::thread::yield_now();
            }
        });
    });

    assert_eq!(store.to_xml(keeper).unwrap().to_xml(), keeper_bytes);
    // Slots were recycled, generations were not: every live id is unique and
    // the slab stayed bounded by the peak live count.
    let live = store.doc_ids();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0], keeper);
}

/// The parallel multi-document paths are semantically invisible:
/// `load_many` and `apply_batch_many` produce stores byte-identical (same
/// ids, same symbols, same grammars) to their sequential counterparts.
#[test]
fn parallel_multi_doc_operations_match_sequential_execution() {
    let docs = corpus();
    let schedules: Vec<Vec<UpdateOp>> = docs
        .iter()
        .enumerate()
        .map(|(i, xml)| workload(xml, 18, 0xFADE + i as u64))
        .collect();

    // Sequential reference run.
    let sequential = DomStore::new();
    let seq_ids: Vec<DocId> = docs.iter().map(|x| sequential.load_xml(x).unwrap()).collect();
    for (&id, ops) in seq_ids.iter().zip(&schedules) {
        sequential.apply_batch(id, ops).expect("workload stays valid");
    }

    // Parallel run: fan out both the loads and the cross-document batches.
    let parallel = DomStore::new();
    let par_ids = parallel.load_many(&docs).unwrap();
    assert_eq!(par_ids, seq_ids, "load_many must assign sequential ids");
    let jobs: Vec<(DocId, Vec<UpdateOp>)> = par_ids
        .iter()
        .zip(&schedules)
        .map(|(&id, ops)| (id, ops.clone()))
        .collect();
    let (results, _) = parallel.apply_batch_many(&jobs);
    for result in results {
        result.expect("workload stays valid");
    }

    assert_eq!(parallel.symbols().len(), sequential.symbols().len());
    for (d, (&p, &s)) in par_ids.iter().zip(&seq_ids).enumerate() {
        assert_eq!(
            parallel.to_xml(p).unwrap().to_xml(),
            sequential.to_xml(s).unwrap().to_xml(),
            "doc {d}: parallel and sequential runs must agree byte for byte"
        );
        assert_eq!(
            parallel.total_updates(p).unwrap(),
            sequential.total_updates(s).unwrap()
        );
        // Same shared-alphabet assignment, spot-checked per document.
        let pg = parallel.grammar(p).unwrap();
        let sg = sequential.grammar(s).unwrap();
        for name in ["title", "body", "#"] {
            assert_eq!(pg.symbols.get(name), sg.symbols.get(name), "doc {d}: id of {name}");
        }
        pg.validate().unwrap();
    }
}
