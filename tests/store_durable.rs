//! Kill-and-recover differential suite for the durable [`DurableStore`].
//!
//! The durable layer promises that a crash at *any* instant loses at most
//! the in-flight operation: after recovery the store is byte-identical (per
//! document, via `to_xml`) to an uninterrupted oracle that executed exactly
//! the committed prefix of the same workload. These tests script a mixed
//! workload (loads, update batches, removals, slot reuse, checkpoints) over
//! the fault-injecting [`FailpointFs`], kill the "process" at every fault
//! point — every byte offset of every write, after every fsync, around the
//! checkpoint rename — recover from the surviving disk image, and compare
//! against the oracle replay. In debug builds the kill matrix is strided to
//! keep `cargo test` quick; CI runs the full matrix in release.

use std::sync::Arc;

use proptest::prelude::*;
use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::wal::testing::FailpointFs;
use slt_xml::grammar_repair::RepairError;
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::updates::UpdateOp;
use slt_xml::xmltree::XmlTree;
use slt_xml::{DocId, DomStore, DurableStore, IngestQueue};

/// Structurally different documents over overlapping alphabets.
fn corpus() -> Vec<XmlTree> {
    let mut feed = String::from("<feed>");
    for _ in 0..6 {
        feed.push_str("<item><title/><body><p/><p/></body></item>");
    }
    feed.push_str("</feed>");
    let mut blog = String::from("<blog>");
    for _ in 0..5 {
        blog.push_str("<post><title/><body><p/></body><comments><c/></comments></post>");
    }
    blog.push_str("</blog>");
    let mut log = String::from("<log>");
    for _ in 0..6 {
        log.push_str("<entry><ts/><message/><level/></entry>");
    }
    log.push_str("</log>");
    vec![
        parse_xml(&feed).unwrap(),
        parse_xml(&blog).unwrap(),
        parse_xml(&log).unwrap(),
    ]
}

fn workload(xml: &XmlTree, count: usize, seed: u64) -> Vec<UpdateOp> {
    random_update_sequence(
        xml,
        count,
        seed,
        WorkloadMix {
            insert_probability: 0.6,
            rename_probability: 0.5,
            locality: 0.7,
            ..WorkloadMix::default()
        },
    )
}

/// One step of the scripted workload. `Apply` and `Remove` reference
/// documents by load order (index into the ids accumulated so far), so the
/// same script replays identically on the durable store and the oracle.
#[derive(Clone)]
enum Action {
    Load(usize),
    Apply(usize, Vec<UpdateOp>),
    Remove(usize),
    Checkpoint,
}

/// A deterministic mixed workload over three documents: interleaved update
/// batches, a mid-script removal with slot reuse, and (optionally)
/// checkpoints at two different log depths. Every non-checkpoint action is
/// exactly one WAL record, so the recovered `last_lsn` counts committed
/// actions directly.
fn script(with_checkpoints: bool) -> (Vec<XmlTree>, Vec<Action>) {
    let docs = corpus();
    let s0 = workload(&docs[0], 12, 0xD0C0);
    let s1 = workload(&docs[1], 8, 0xD0C1);
    let s2 = workload(&docs[2], 12, 0xD0C2);
    let s3 = workload(&docs[1], 8, 0xD0C3); // for the re-loaded blog
    let chunk = |s: &[UpdateOp], i: usize| s[i * 4..(i + 1) * 4].to_vec();

    let mut actions = vec![
        Action::Load(0),
        Action::Load(1),
        Action::Load(2),
        Action::Apply(0, chunk(&s0, 0)),
        Action::Apply(1, chunk(&s1, 0)),
        Action::Apply(2, chunk(&s2, 0)),
    ];
    if with_checkpoints {
        actions.push(Action::Checkpoint);
    }
    actions.extend([
        Action::Apply(0, chunk(&s0, 1)),
        Action::Remove(1),
        Action::Load(1), // reuses doc 1's slot under a fresh generation
        Action::Apply(2, chunk(&s2, 1)),
        Action::Apply(3, chunk(&s3, 0)),
    ]);
    if with_checkpoints {
        actions.push(Action::Checkpoint);
    }
    actions.extend([
        Action::Apply(0, chunk(&s0, 2)),
        Action::Apply(2, chunk(&s2, 2)),
        Action::Apply(3, chunk(&s3, 1)),
    ]);
    (docs, actions)
}

/// Runs the script until it completes or the injected fault kills the
/// store; every error is the dead disk (the workloads themselves are valid).
fn run_script(store: &DurableStore, corpus: &[XmlTree], actions: &[Action]) {
    let mut ids: Vec<DocId> = Vec::new();
    for action in actions {
        let ok = match action {
            Action::Load(c) => match store.load_xml(&corpus[*c]) {
                Ok(id) => {
                    ids.push(id);
                    true
                }
                Err(_) => false,
            },
            Action::Apply(d, ops) => store.apply_batch(ids[*d], ops).is_ok(),
            Action::Remove(d) => store.remove(ids[*d]).is_ok(),
            Action::Checkpoint => store.checkpoint().is_ok(),
        };
        if !ok {
            return; // the disk is dead; the rest of the script is lost
        }
    }
}

/// The uninterrupted oracle: a plain in-memory [`DomStore`] executing
/// exactly the first `committed` logged actions of the script.
fn oracle_store(corpus: &[XmlTree], actions: &[Action], committed: u64) -> DomStore {
    let store = DomStore::new();
    let mut ids: Vec<DocId> = Vec::new();
    let mut lsn = 0u64;
    for action in actions {
        if matches!(action, Action::Checkpoint) {
            continue; // checkpoints write no log record
        }
        if lsn == committed {
            break;
        }
        lsn += 1;
        match action {
            Action::Load(c) => ids.push(store.load_xml(&corpus[*c]).unwrap()),
            Action::Apply(d, ops) => {
                store.apply_batch(ids[*d], ops).unwrap();
            }
            Action::Remove(d) => {
                store.remove(ids[*d]).unwrap();
            }
            Action::Checkpoint => unreachable!(),
        }
    }
    assert_eq!(lsn, committed, "script shorter than the committed prefix");
    store
}

/// Byte-identical state: same live ids in the same order, and the same
/// serialization for every document.
fn assert_matches_oracle(recovered: &DurableStore, oracle: &DomStore, context: &str) {
    assert_eq!(recovered.doc_ids(), oracle.doc_ids(), "{context}: live document ids");
    for id in oracle.doc_ids() {
        assert_eq!(
            recovered.to_xml(id).unwrap().to_xml(),
            oracle.to_xml(id).unwrap().to_xml(),
            "{context}: document {id:?} diverged from the oracle"
        );
    }
}

/// Sizes the kill matrix: total fault points one uninterrupted script
/// consumes.
fn total_fault_points(corpus: &[XmlTree], actions: &[Action]) -> u64 {
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    run_script(&store, corpus, actions);
    drop(store);
    fs.consumed()
}

fn matrix_stride(total: u64) -> u64 {
    if cfg!(debug_assertions) {
        (total / 48).max(1) // ~48 kill points in debug; CI covers all in release
    } else {
        1
    }
}

/// Crashes the store at a given fault point, recovers from the surviving
/// disk image, and checks the recovered state against the oracle replay of
/// the committed prefix.
fn crash_recover_compare(corpus: &[XmlTree], actions: &[Action], point: u64) {
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    fs.arm(point);
    run_script(&store, corpus, actions);
    fs.disarm();
    drop(store); // the process is gone; `fs` is the disk image

    let (recovered, report) = DurableStore::open_with(fs, "db")
        .unwrap_or_else(|e| panic!("recovery after kill at point {point} failed: {e}"));
    let oracle = oracle_store(corpus, actions, report.last_lsn);
    assert_matches_oracle(&recovered, &oracle, &format!("kill at point {point}"));
}

/// The tentpole guarantee: killing the store at **every** fault point of a
/// mixed workload (every byte of every append, every fsync) and recovering
/// always yields exactly the committed prefix of the workload.
#[test]
fn kill_at_every_fault_point_recovers_the_committed_prefix() {
    let (corpus, actions) = script(false);
    let total = total_fault_points(&corpus, &actions);
    assert!(total > 200, "matrix suspiciously small: {total} fault points");
    let stride = matrix_stride(total);
    let mut point = 1;
    while point <= total {
        crash_recover_compare(&corpus, &actions, point);
        point += stride;
    }
}

/// Same matrix with checkpoints in the middle of the workload: a kill
/// before, during (temp write or rename), or after a checkpoint must leave
/// either the old state + full log or the new snapshot + skippable log —
/// never a half state.
#[test]
fn kill_around_checkpoints_never_loses_committed_state() {
    let (corpus, actions) = script(true);
    let total = total_fault_points(&corpus, &actions);
    let stride = matrix_stride(total);
    let mut point = 1;
    while point <= total {
        crash_recover_compare(&corpus, &actions, point);
        point += stride;
    }
}

/// A crash *during recovery* (while truncating the torn tail) is itself
/// recoverable: recovery is idempotent.
#[test]
fn crash_during_recovery_is_recoverable() {
    let (corpus, actions) = script(false);
    let total = total_fault_points(&corpus, &actions);
    // Kill mid-append somewhere in the middle of the workload so the log
    // has a torn tail recovery must truncate.
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    fs.arm(total / 2);
    run_script(&store, &corpus, &actions);
    fs.disarm();
    drop(store);

    // First recovery attempt dies partway through its own disk writes.
    for budget in 0..3 {
        fs.arm(budget);
        let _ = DurableStore::open_with(fs.clone(), "db");
        fs.disarm();
    }
    // The final attempt must still converge to the committed prefix.
    let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
    let oracle = oracle_store(&corpus, &actions, report.last_lsn);
    assert_matches_oracle(&recovered, &oracle, "recovery after interrupted recoveries");
}

/// A recovered store is a fully functional store: it accepts new writes,
/// checkpoints, and survives a second crash.
#[test]
fn recovered_store_accepts_writes_and_survives_a_second_crash() {
    let (corpus, actions) = script(false);
    let total = total_fault_points(&corpus, &actions);
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    fs.arm(2 * total / 3);
    run_script(&store, &corpus, &actions);
    fs.disarm();
    drop(store);

    // Recover, then write through the recovered store.
    let (recovered, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    let live = recovered.doc_ids();
    assert!(!live.is_empty());
    recovered
        .apply_batch(live[0], &workload(&corpus[0], 4, 0xAF7E2)[..2])
        .unwrap();
    let extra = recovered.load_xml(&corpus[2]).unwrap();
    recovered.checkpoint().unwrap();
    let wants: Vec<(DocId, String)> = recovered
        .doc_ids()
        .into_iter()
        .map(|id| (id, recovered.to_xml(id).unwrap().to_xml()))
        .collect();
    drop(recovered); // second "crash", right after a checkpoint

    let (again, report) = DurableStore::open_with(fs, "db").unwrap();
    assert_eq!(report.replayed, 0, "checkpoint covered everything");
    assert!(again.contains(extra));
    for (id, want) in wants {
        assert_eq!(again.to_xml(id).unwrap().to_xml(), want);
    }
}

/// Concurrent writers to distinct documents share fsyncs through group
/// commit, and the interleaved log still recovers every document to its
/// single-threaded oracle state.
#[test]
fn concurrent_writers_share_fsyncs_and_recover_to_per_doc_oracles() {
    let docs = corpus();
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    let ids: Vec<DocId> = docs.iter().map(|x| store.load_xml(x).unwrap()).collect();
    let schedules: Vec<Vec<UpdateOp>> = docs
        .iter()
        .enumerate()
        .map(|(i, xml)| workload(xml, 16, 0xFEED + i as u64))
        .collect();

    let store_ref = &store;
    std::thread::scope(|scope| {
        for (d, &id) in ids.iter().enumerate() {
            let schedule = &schedules[d];
            scope.spawn(move || {
                for batch in schedule.chunks(2) {
                    store_ref.apply_batch(id, batch).expect("workload stays valid");
                }
            });
        }
    });
    let commits = 3 + (16 / 2) * 3; // loads + batches
    assert_eq!(store.durable_lsn(), commits as u64);
    assert!(
        store.wal_sync_count() <= commits as u64,
        "group commit must never fsync more than once per commit"
    );
    drop(store);

    // Per-document recovery oracle: the log interleaving across documents is
    // nondeterministic, but each document's batches are ordered, so each must
    // recover to its sequential replay.
    let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
    assert_eq!(report.last_lsn, commits as u64);
    let oracle = DomStore::new();
    let oracle_ids: Vec<DocId> = docs.iter().map(|x| oracle.load_xml(x).unwrap()).collect();
    for (&id, schedule) in oracle_ids.iter().zip(&schedules) {
        oracle.apply_batch(id, schedule).unwrap();
    }
    assert_eq!(recovered.doc_ids(), oracle_ids);
    for &id in &oracle_ids {
        assert_eq!(
            recovered.to_xml(id).unwrap().to_xml(),
            oracle.to_xml(id).unwrap().to_xml()
        );
    }
}

/// The torn-tail rule end to end: garbage appended by a crashed writer is
/// silently truncated, while a flipped bit *inside* the log is a typed,
/// loud error — never silent data loss.
#[test]
fn torn_tails_truncate_silently_but_interior_corruption_is_loud() {
    let (corpus, actions) = script(false);
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    run_script(&store, &corpus, &actions);
    drop(store);
    let clean = fs.file("db/wal.log").unwrap();

    // Torn tail: half a frame header, then half a payload.
    for garbage in [&[0x99u8][..], &[40, 0, 0, 0, 7, 7, 7, 7, 1, 2, 3][..]] {
        let mut torn = clean.clone();
        torn.extend_from_slice(garbage);
        fs.set_file("db/wal.log", torn);
        let (recovered, report) = DurableStore::open_with(fs.clone(), "db").unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.truncated_bytes, garbage.len() as u64);
        let oracle = oracle_store(&corpus, &actions, report.last_lsn);
        assert_matches_oracle(&recovered, &oracle, "torn tail");
        assert_eq!(
            fs.file("db/wal.log").unwrap().len(),
            clean.len(),
            "recovery must truncate the torn bytes on disk"
        );
    }

    // Interior corruption: flip one byte in the middle of the log.
    let mut corrupt = clean.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x08;
    fs.set_file("db/wal.log", corrupt);
    let err = DurableStore::open_with(fs, "db")
        .err()
        .expect("interior corruption must fail recovery loudly");
    assert!(matches!(err, RepairError::WalCorrupt { .. }), "got {err:?}");
}

// ----- ingestion-queue kill matrix -----

/// One step of the scripted *queued* workload. Submits enqueue without
/// logging anything; only drains (`Flush`, `Barrier`) reach the WAL, as a
/// single coalesced record each.
#[derive(Clone)]
enum QueueAction {
    Load(usize),
    Submit(usize, Vec<UpdateOp>),
    Flush,
    Barrier(usize),
    Checkpoint,
}

/// A deterministic queued workload over three documents: bursts of
/// per-document submissions coalesced by flushes, a single-document
/// barrier with other documents left queued, and a mid-script fuzzy
/// checkpoint.
fn queue_script() -> (Vec<XmlTree>, Vec<QueueAction>) {
    let docs = corpus();
    let s0 = workload(&docs[0], 12, 0xBEE0);
    let s1 = workload(&docs[1], 8, 0xBEE1);
    let s2 = workload(&docs[2], 12, 0xBEE2);
    let chunk = |s: &[UpdateOp], i: usize| s[i * 4..(i + 1) * 4].to_vec();

    let actions = vec![
        QueueAction::Load(0),
        QueueAction::Load(1),
        QueueAction::Load(2),
        // A mixed burst: two chunks of doc 0 and one each of docs 1 and 2
        // coalesce into one three-job ApplyMany record.
        QueueAction::Submit(0, chunk(&s0, 0)),
        QueueAction::Submit(1, chunk(&s1, 0)),
        QueueAction::Submit(0, chunk(&s0, 1)),
        QueueAction::Submit(2, chunk(&s2, 0)),
        QueueAction::Flush,
        // A barrier drains only doc 1; docs 0 and 2 stay queued across it
        // and across the checkpoint that follows.
        QueueAction::Submit(2, chunk(&s2, 1)),
        QueueAction::Submit(1, chunk(&s1, 1)),
        QueueAction::Submit(0, chunk(&s0, 2)),
        QueueAction::Barrier(1),
        QueueAction::Checkpoint,
        QueueAction::Flush,
        QueueAction::Submit(2, chunk(&s2, 2)),
        QueueAction::Flush,
    ];
    (docs, actions)
}

/// Runs the queued script until it completes or the injected fault kills
/// the store. Tickets are awaited after every full flush, so a dead disk
/// (surfacing as per-job commit errors) stops the script like `run_script`.
fn run_queue_script(store: &Arc<DurableStore>, corpus: &[XmlTree], actions: &[QueueAction]) {
    let queue = IngestQueue::new(Arc::clone(store));
    let mut ids: Vec<DocId> = Vec::new();
    let mut outstanding: Vec<(usize, slt_xml::grammar_repair::queue::Ticket)> = Vec::new();
    for action in actions {
        let ok = match action {
            QueueAction::Load(c) => match store.load_xml(&corpus[*c]) {
                Ok(id) => {
                    ids.push(id);
                    true
                }
                Err(_) => false,
            },
            QueueAction::Submit(d, ops) => {
                let ticket = queue
                    .submit(ids[*d], ops.clone())
                    .expect("unbounded queue accepts every submission");
                outstanding.push((*d, ticket));
                true
            }
            QueueAction::Flush => {
                queue.flush();
                outstanding.drain(..).all(|(_, t)| queue.wait(t).is_ok())
            }
            QueueAction::Barrier(d) => {
                let drained = queue.barrier(ids[*d]);
                outstanding.retain(|(od, _)| od != d);
                !matches!(drained, Some(Err(_)))
            }
            QueueAction::Checkpoint => store.checkpoint().is_ok(),
        };
        if !ok {
            return; // the disk is dead; the rest of the script is lost
        }
    }
}

/// The queue oracle: replays the *same coalescing* the queue performs on a
/// plain in-memory store, counting one LSN per drained record (loads count
/// one each; checkpoints and submits none), stopping at the committed
/// prefix.
fn queue_oracle(corpus: &[XmlTree], actions: &[QueueAction], committed: u64) -> DomStore {
    let store = DomStore::new();
    let mut ids: Vec<DocId> = Vec::new();
    let mut pending: Vec<(usize, Vec<UpdateOp>)> = Vec::new();
    let mut lsn = 0u64;
    for action in actions {
        match action {
            QueueAction::Load(c) => {
                if lsn == committed {
                    return store;
                }
                lsn += 1;
                ids.push(store.load_xml(&corpus[*c]).unwrap());
            }
            QueueAction::Submit(d, ops) => pending.push((*d, ops.clone())),
            QueueAction::Flush => {
                if pending.is_empty() {
                    continue;
                }
                if lsn == committed {
                    return store;
                }
                lsn += 1;
                // Coalesce exactly like the queue: one job per document,
                // ops in submission order, documents in first-submission
                // order.
                let mut jobs: Vec<(usize, Vec<UpdateOp>)> = Vec::new();
                for (d, ops) in pending.drain(..) {
                    if let Some(job) = jobs.iter_mut().find(|(jd, _)| *jd == d) {
                        job.1.extend(ops);
                    } else {
                        jobs.push((d, ops));
                    }
                }
                for (d, ops) in jobs {
                    store.apply_batch(ids[d], &ops).unwrap();
                }
            }
            QueueAction::Barrier(d) => {
                let mut ops = Vec::new();
                pending.retain_mut(|(pd, pops)| {
                    if pd == d {
                        ops.append(pops);
                        false
                    } else {
                        true
                    }
                });
                if ops.is_empty() {
                    continue;
                }
                if lsn == committed {
                    return store;
                }
                lsn += 1;
                store.apply_batch(ids[*d], &ops).unwrap();
            }
            QueueAction::Checkpoint => {}
        }
    }
    assert_eq!(lsn, committed, "script shorter than the committed prefix");
    store
}

/// The queued analogue of the main kill matrix: a crash at **every** fault
/// point of a workload whose writes reach the log only as coalesced
/// `ApplyMany` drains (plus one barrier and one fuzzy v3 checkpoint)
/// recovers exactly the committed prefix — a mid-flush kill loses the
/// whole drain, never half of one.
#[test]
fn kill_during_coalesced_flushes_recovers_the_committed_prefix() {
    let (corpus, actions) = queue_script();
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    let store = Arc::new(store);
    run_queue_script(&store, &corpus, &actions);
    drop(store);
    let total = fs.consumed();
    assert!(total > 100, "matrix suspiciously small: {total} fault points");

    let stride = matrix_stride(total);
    let mut point = 1;
    while point <= total {
        let fs = Arc::new(FailpointFs::new());
        let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
        let store = Arc::new(store);
        fs.arm(point);
        run_queue_script(&store, &corpus, &actions);
        fs.disarm();
        drop(store);

        let (recovered, report) = DurableStore::open_with(fs, "db")
            .unwrap_or_else(|e| panic!("recovery after kill at point {point} failed: {e}"));
        let oracle = queue_oracle(&corpus, &actions, report.last_lsn);
        assert_matches_oracle(
            &recovered,
            &oracle,
            &format!("queued kill at point {point}"),
        );
        point += stride;
    }
}

// ----- checkpoint-v3 adversarial proptests -----

/// Builds a real v3 checkpoint image (with an empty covering log) for the
/// adversarial tests: three documents, a batch each, then a quiescent
/// checkpoint — so the log truncates and the checkpoint alone carries the
/// state.
fn v3_checkpoint_image() -> (Vec<u8>, usize) {
    let docs = corpus();
    let fs = Arc::new(FailpointFs::new());
    let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
    for (i, xml) in docs.iter().enumerate() {
        let id = store.load_xml(xml).unwrap();
        store
            .apply_batch(id, &workload(xml, 4, 0xC4E0 + i as u64))
            .unwrap();
    }
    let report = store.checkpoint().unwrap();
    assert!(report.log_truncated, "single-threaded checkpoint is quiescent");
    drop(store);
    (fs.file("db/checkpoint.slck").unwrap(), docs.len())
}

/// Opens a store whose disk holds exactly `checkpoint` (and no log) and
/// touches every document, forcing lazy materialization. Returns `Err` if
/// the open or any touch reports corruption.
fn open_and_touch_all(checkpoint: Vec<u8>) -> Result<(), RepairError> {
    let fs = Arc::new(FailpointFs::new());
    fs.set_file("db/checkpoint.slck", checkpoint);
    let (store, _) = DurableStore::open_with(fs, "db")?;
    for id in store.doc_ids() {
        store.to_xml(id)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every byte of a v3 checkpoint is covered by some integrity check:
    /// the header and the three indexed sections by CRCs verified at open,
    /// the lazy docs region by per-extent payload CRCs verified at first
    /// touch. A single bit flip anywhere must therefore surface as a typed
    /// error from open or from touching the documents — never silently,
    /// never as a panic.
    #[test]
    fn prop_v3_bit_flips_are_always_detected(seed in any::<u64>()) {
        let (pristine, doc_count) = v3_checkpoint_image();
        let bit = (seed as usize) % (pristine.len() * 8);
        let mut flipped = pristine;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let outcome = open_and_touch_all(flipped);
        prop_assert!(outcome.is_err(), "flipped bit {} went undetected across {} docs", bit, doc_count);
        prop_assert!(
            matches!(outcome, Err(RepairError::Storage { .. })),
            "corruption must be the typed checkpoint error, got {:?}", outcome
        );
    }

    /// Truncating a v3 checkpoint at any length fails at open: the header
    /// demands the file end exactly where the docs region ends.
    #[test]
    fn prop_v3_truncations_fail_at_open(seed in any::<u64>()) {
        let (pristine, _) = v3_checkpoint_image();
        let len = (seed as usize) % pristine.len();
        let outcome = open_and_touch_all(pristine[..len].to_vec());
        prop_assert!(outcome.is_err(), "truncation to {} bytes went undetected", len);
    }

    /// Arbitrary bytes — raw or hiding behind the real magic and version —
    /// never panic the checkpoint decoder and never open successfully
    /// unless they happen to decode into a consistent (empty) image.
    #[test]
    fn prop_v3_decoder_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = open_and_touch_all(bytes.clone());
        let mut framed = b"SLCK\x03".to_vec();
        framed.extend_from_slice(&bytes);
        let _ = open_and_touch_all(framed);
        let mut legacy = b"SLCK\x01".to_vec();
        legacy.extend_from_slice(&bytes);
        let _ = open_and_touch_all(legacy);
    }
}
