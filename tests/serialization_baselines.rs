//! Cross-crate integration tests for persistence and the related-work
//! baselines: binary grammar serialization, minimal-DAG sharing, and
//! GrammarRePair run on DAG-derived grammars.

use proptest::prelude::*;
use slt_xml::dag_xml::{dag_to_grammar, Dag};
use slt_xml::datasets::catalog::Dataset;
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::sltgrammar::{serialize, SymbolTable};
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::binary::{to_binary, tree_fingerprint};
use slt_xml::xmltree::XmlTree;

#[test]
fn serialization_roundtrips_compressed_corpus_documents() {
    for dataset in [Dataset::ExiWeblog, Dataset::XMark, Dataset::Ncbi] {
        let xml = dataset.generate(0.03);
        let (mut g, _) = GrammarRePair::default().compress_xml(&xml);
        g.compact();
        let bytes = serialize::encode(&g);
        let back = serialize::decode(&bytes).unwrap();
        back.validate().unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&back), "roundtrip on {}", dataset.name());
        assert_eq!(g.edge_count(), back.edge_count());
        // The byte encoding is small: a handful of bytes per grammar edge.
        assert!(
            bytes.len() <= 16 * g.edge_count() + 1024,
            "{}: {} bytes for {} edges",
            dataset.name(),
            bytes.len(),
            g.edge_count()
        );
    }
}

#[test]
fn dag_sharing_sits_between_tree_and_grammar_compression() {
    // The paper's introduction: DAGs shrink typical XML to ~10 % of the edges,
    // SLT grammars to ~3 %. On the synthetic corpus the ordering
    // grammar <= DAG <= tree must hold for the well-compressing documents.
    for dataset in [Dataset::ExiWeblog, Dataset::Medline, Dataset::ExiTelecomp] {
        let xml = dataset.generate(0.03);
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let dag = Dag::build(&bin, &symbols);
        let (g, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        assert!(
            dag.edge_count() <= bin.edge_count(),
            "{}: DAG must not exceed the tree",
            dataset.name()
        );
        assert!(
            g.edge_count() <= dag.edge_count(),
            "{}: grammar ({}) must not exceed the DAG ({})",
            dataset.name(),
            g.edge_count(),
            dag.edge_count()
        );
        assert_eq!(dag.derived_node_count(), bin.node_count() as u128);
    }
}

#[test]
fn grammarrepair_compresses_dag_grammars_without_losing_data() {
    // Static compression started from a grammar (not a tree): feed the
    // DAG-derived grammar to GrammarRePair — the scenario the paper calls
    // "GrammarRePair applied to grammars".
    for dataset in [Dataset::ExiWeblog, Dataset::XMark] {
        let xml = dataset.generate(0.03);
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let reference = tree_fingerprint(&bin, &symbols);
        let dag = Dag::build(&bin, &symbols);
        let mut g = dag_to_grammar(&dag, &symbols);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), reference);

        let dag_edges = g.edge_count();
        let stats = GrammarRePair::default().recompress(&mut g);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), reference, "lost data on {}", dataset.name());
        assert!(
            stats.output_edges <= dag_edges,
            "{}: recompression must not grow the DAG grammar ({} -> {})",
            dataset.name(),
            dag_edges,
            stats.output_edges
        );

        // And it should be in the same ballpark as compressing the tree directly.
        let (direct, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        assert!(
            stats.output_edges <= 2 * direct.edge_count() + 64,
            "{}: grammar from DAG ({}) far larger than direct compression ({})",
            dataset.name(),
            stats.output_edges,
            direct.edge_count()
        );
    }
}

fn arbitrary_xml(max_nodes: usize) -> impl Strategy<Value = XmlTree> {
    let labels = prop::sample::select(vec!["a", "b", "c", "item", "rec"]);
    proptest::collection::vec((labels, 0usize..8), 1..max_nodes).prop_map(|spec| {
        let mut t = XmlTree::new("root");
        let mut nodes = vec![t.root()];
        for (label, parent_choice) in spec {
            let parent = nodes[parent_choice % nodes.len()];
            let n = t.add_child(parent, label);
            nodes.push(n);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary serialization is the identity on arbitrary compressed documents.
    #[test]
    fn prop_serialization_roundtrips(xml in arbitrary_xml(60)) {
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        let back = serialize::decode(&serialize::encode(&g)).unwrap();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(fingerprint(&g), fingerprint(&back));
        prop_assert_eq!(g.edge_count(), back.edge_count());
        prop_assert_eq!(g.rule_count(), back.rule_count());
    }

    /// The minimal DAG is lossless and never larger than the tree; converting
    /// it to a grammar keeps the document.
    #[test]
    fn prop_dag_is_lossless(xml in arbitrary_xml(60)) {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let reference = tree_fingerprint(&bin, &symbols);
        let dag = Dag::build(&bin, &symbols);
        prop_assert!(dag.edge_count() <= bin.edge_count());
        prop_assert_eq!(dag.derived_node_count(), bin.node_count() as u128);
        prop_assert_eq!(tree_fingerprint(&dag.unfold(), &symbols), reference);
        let g = dag_to_grammar(&dag, &symbols);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(fingerprint(&g), reference);
    }

    /// Serialization composes with updates: decode(encode(G)) supports the same
    /// updates as G and yields the same document afterwards.
    #[test]
    fn prop_serialized_grammars_stay_updatable(xml in arbitrary_xml(40), label in "[a-z]{1,6}") {
        use slt_xml::grammar_repair::update::rename;
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        let mut direct = g.clone();
        let mut reloaded = serialize::decode(&serialize::encode(&g)).unwrap();
        // Rename the document root (binary preorder index 0) in both copies.
        rename(&mut direct, 0, &label).unwrap();
        rename(&mut reloaded, 0, &label).unwrap();
        prop_assert_eq!(fingerprint(&direct), fingerprint(&reloaded));
    }

    /// Adversarial input: `decode` on arbitrary byte strings never panics and
    /// never allocates from a corrupt length field — it returns an error or a
    /// grammar that passes validation.
    #[test]
    fn prop_decode_survives_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(g) = serialize::decode(&bytes) {
            prop_assert!(g.validate().is_ok());
        }
        // Arbitrary bytes prefixed with the real magic + version exercise the
        // parser past the header checks.
        let mut framed = b"SLTG\x02".to_vec();
        framed.extend_from_slice(&bytes);
        if let Ok(g) = serialize::decode(&framed) {
            prop_assert!(g.validate().is_ok());
        }
        let mut legacy = b"SLTG\x01".to_vec();
        legacy.extend_from_slice(&bytes);
        if let Ok(g) = serialize::decode(&legacy) {
            prop_assert!(g.validate().is_ok());
        }
    }

    /// Adversarial input: truncating or bit-flipping a real encoding never
    /// panics; truncation always errors, a flip errors or decodes valid.
    #[test]
    fn prop_decode_survives_truncation_and_bit_flips(xml in arbitrary_xml(40), seed in any::<u64>()) {
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        let bytes = serialize::encode(&g);
        for len in 0..bytes.len() {
            prop_assert!(serialize::decode(&bytes[..len]).is_err(),
                "truncation to {} of {} bytes must fail", len, bytes.len());
        }
        let mut flipped = bytes.clone();
        let bit = (seed as usize) % (bytes.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        if let Ok(g) = serialize::decode(&flipped) {
            prop_assert!(g.validate().is_ok());
        }
    }
}
