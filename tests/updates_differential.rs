//! Differential update-oracle harness.
//!
//! Seeded random update sequences (insert/delete/rename at several locality
//! settings) are applied simultaneously to
//!
//! * a [`CompressedDom`] through the **single-operation** path,
//! * a [`CompressedDom`] through the **batched** path (`apply_batch`, several
//!   batch sizes), and
//! * a plain uncompressed binary tree through `xmltree::updates` — the
//!   oracle,
//!
//! with and without automatic recompression, asserting **byte-identical XML
//! serialization** after every step (every operation on the single-op path,
//! every batch on the batched path). The harness also pins the batched
//! isolation growth bound and the byte-identity of singleton batches with
//! single-target isolation.

use proptest::prelude::*;
use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::isolate::{isolate, isolate_many};
use slt_xml::sltgrammar::derive::val;
use slt_xml::sltgrammar::fingerprint::{derived_size, fingerprint};
use slt_xml::sltgrammar::{serialize, NodeKind, RhsTree, SymbolTable};
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::binary::{from_binary, to_binary, tree_fingerprint};
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::updates::{self as reference, UpdateOp};
use slt_xml::xmltree::XmlTree;
use slt_xml::CompressedDom;

/// The uncompressed ground-truth document, updated via `xmltree::updates`.
struct Oracle {
    bin: RhsTree,
    symbols: SymbolTable,
}

impl Oracle {
    fn new(xml: &XmlTree) -> Self {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(xml, &mut symbols).expect("valid document");
        Oracle { bin, symbols }
    }

    fn apply(&mut self, op: &UpdateOp) {
        reference::apply_update(&mut self.bin, &mut self.symbols, op)
            .expect("oracle rejects a workload operation");
    }

    fn serialization(&self) -> String {
        from_binary(&self.bin, &self.symbols)
            .expect("oracle stays a well-formed document")
            .to_xml()
    }
}

fn dom_serialization(dom: &CompressedDom) -> String {
    dom.to_xml().expect("document stays materializable").to_xml()
}

/// Runs one differential scenario: the same `ops` through the oracle, the
/// single-op path (checked after every operation) and the batched path with
/// the given batch size (checked after every batch).
fn run_differential(
    xml: &XmlTree,
    ops: &[UpdateOp],
    recompress_every: usize,
    batch_size: usize,
    context: &str,
) {
    let mut single = CompressedDom::from_xml(xml, recompress_every);
    let mut batched = CompressedDom::from_xml(xml, recompress_every);
    let mut oracle = Oracle::new(xml);

    for (b, batch) in ops.chunks(batch_size).enumerate() {
        for (i, op) in batch.iter().enumerate() {
            oracle.apply(op);
            single.apply(op).unwrap_or_else(|e| {
                panic!("{context}: single-op path rejected op {i} of batch {b}: {e:?}")
            });
            assert_eq!(
                dom_serialization(&single),
                oracle.serialization(),
                "{context}: single-op path diverged at op {i} of batch {b}"
            );
        }
        batched
            .apply_batch(batch)
            .unwrap_or_else(|e| panic!("{context}: batched path rejected batch {b}: {e:?}"));
        assert_eq!(
            dom_serialization(&batched),
            oracle.serialization(),
            "{context}: batched path diverged after batch {b}"
        );
    }
    single.grammar().validate().unwrap();
    batched.grammar().validate().unwrap();
}

/// A small, repetitive document the compressor bites into.
fn feed_doc(items: usize) -> XmlTree {
    let mut s = String::from("<feed>");
    for i in 0..items {
        s.push_str("<item><title/><body><p/><p/></body>");
        if i % 3 == 0 {
            s.push_str("<tags><t/><t/></tags>");
        }
        s.push_str("</item>");
    }
    s.push_str("</feed>");
    parse_xml(&s).unwrap()
}

#[test]
fn differential_insert_delete_rename_across_locality_settings() {
    let xml = feed_doc(14);
    for &locality in &[0.0, 0.5, 0.95] {
        let mix = WorkloadMix {
            insert_probability: 0.85,
            rename_probability: 0.3,
            locality,
            cluster_every: 12,
            ..WorkloadMix::default()
        };
        let ops = random_update_sequence(&xml, 60, 0xD1FF ^ (locality * 100.0) as u64, mix);
        for &batch_size in &[1usize, 9, 60] {
            // recompress_every = 0 disables automatic recompression; 4 makes
            // it fire repeatedly inside the sequence on both paths.
            for &recompress_every in &[0usize, 4] {
                run_differential(
                    &xml,
                    &ops,
                    recompress_every,
                    batch_size,
                    &format!(
                        "locality {locality}, batch {batch_size}, recompress {recompress_every}"
                    ),
                );
            }
        }
    }
}

#[test]
fn differential_paper_insert_delete_mix_with_clustering() {
    // The paper's 90/10 insert/delete mix, clustered: deletes stay inside
    // their isolation chunk (the delete-tolerant planner), so this exercises
    // removed-region remapping under recompression.
    let xml = feed_doc(10);
    let ops = random_update_sequence(&xml, 80, 0xBADD, WorkloadMix::clustered(0.9));
    run_differential(&xml, &ops, 6, 16, "paper mix, clustered");
}

#[test]
fn differential_delete_heavy_mix_across_locality_and_batch_sizes() {
    // Inverts the paper's ratio: deletes dominate, so nearly every chunk
    // carries several removed regions, including nested and overlapping-run
    // shapes the 90/10 mix rarely produces.
    let xml = feed_doc(16);
    for &locality in &[0.0, 0.9] {
        let mix = WorkloadMix {
            insert_probability: 0.35,
            rename_probability: 0.15,
            locality,
            cluster_every: 10,
            ..WorkloadMix::default()
        };
        let ops = random_update_sequence(&xml, 70, 0xDE1E ^ (locality * 10.0) as u64, mix);
        for &batch_size in &[4usize, 70] {
            run_differential(
                &xml,
                &ops,
                5,
                batch_size,
                &format!("delete-heavy, locality {locality}, batch {batch_size}"),
            );
        }
    }
}

#[test]
fn differential_rename_only_figure6_workload() {
    let xml = feed_doc(12);
    let mix = WorkloadMix {
        rename_probability: 1.0,
        locality: 0.9,
        cluster_every: 20,
        ..WorkloadMix::default()
    };
    let ops = random_update_sequence(&xml, 100, 6, mix);
    run_differential(&xml, &ops, 10, 25, "figure-6 renames");
}

#[test]
fn differential_handcrafted_edits_inside_fresh_fragments() {
    // Ops 2 and 3 target nodes that only exist because op 1 inserted them:
    // their chunk-start coordinates do not exist, forcing chunk flushes whose
    // correctness only the oracle can certify.
    let xml = parse_xml("<r><a/><b/><c/></r>").unwrap();
    let mut probe = Oracle::new(&xml);
    // Preorder (binary): r0 a1 #2 b3 #4 c5 #6 #7 — insert before b (index 3).
    let ops = vec![
        UpdateOp::InsertBefore {
            target: 3,
            fragment: parse_xml("<x><y/></x>").unwrap(),
        },
        // After op 1: x at 3, y at 4. Rename the fresh y.
        UpdateOp::Rename {
            target: 4,
            label: "z".to_string(),
        },
        // Insert into the fresh element's empty child list (a fresh null).
        UpdateOp::InsertBefore {
            target: 5,
            fragment: parse_xml("<w/>").unwrap(),
        },
        // Delete the whole fresh subtree again, then rename its old sibling.
        UpdateOp::Delete { target: 3 },
        UpdateOp::Rename {
            target: 3,
            label: "bee".to_string(),
        },
    ];
    for op in &ops {
        probe.apply(op); // validates the handcrafted coordinates
    }
    assert_eq!(probe.serialization(), "<r><a/><bee/><c/></r>");
    run_differential(&xml, &ops, 0, ops.len(), "handcrafted fresh-fragment edits");
}

#[test]
fn differential_deletes_adjacent_to_and_inside_fresh_fragments() {
    // Preorder (binary): r0 a1 #2 b3 #4 c5 #6 #7. Op 1 inserts <x><y/></x>
    // before b, so b slides past the 4 fresh positions. Op 2 deletes b right
    // *after* the fragment (same chunk — the boundary anchor must not be
    // swallowed by fragment bookkeeping); op 3 deletes y *inside* the
    // fragment (chunk break); ops 4–5 clean up at post-splice coordinates.
    let xml = parse_xml("<r><a/><b/><c/></r>").unwrap();
    let mut probe = Oracle::new(&xml);
    let ops = vec![
        UpdateOp::InsertBefore {
            target: 3,
            fragment: parse_xml("<x><y/></x>").unwrap(),
        },
        UpdateOp::Delete { target: 7 }, // b, immediately after the fresh fragment
        UpdateOp::Delete { target: 4 }, // y, inside the fresh fragment
        UpdateOp::Delete { target: 3 }, // x, now emptied
        UpdateOp::Rename {
            target: 3,
            label: "sea".to_string(),
        },
    ];
    for op in &ops {
        probe.apply(op); // validates the handcrafted coordinates
    }
    assert_eq!(probe.serialization(), "<r><a/><sea/></r>");
    for &batch_size in &[2usize, ops.len()] {
        run_differential(&xml, &ops, 0, batch_size, "deletes around fresh fragments");
    }
}

#[test]
fn differential_consecutive_delete_runs() {
    // Repeated deletes at the *same* evolving position peel off a sibling
    // run: every op lands on the coordinate the previous delete freed, so
    // the region map accumulates same-start removed markers whose shifts
    // must stack. A second run walks backwards through distinct positions.
    let xml = feed_doc(8);
    let mut probe = Oracle::new(&xml);
    let same_spot: Vec<UpdateOp> = (0..5).map(|_| UpdateOp::Delete { target: 1 }).collect();
    for op in &same_spot {
        probe.apply(op);
    }
    for &batch_size in &[1usize, 2, same_spot.len()] {
        run_differential(&xml, &same_spot, 0, batch_size, "same-spot delete run");
    }

    // Backwards run: delete the 3rd, 2nd, then 1st item — later targets lie
    // *before* earlier removed regions, so their resolution must not shift.
    let item_positions: Vec<usize> = {
        let oracle = Oracle::new(&xml);
        let pre = oracle.bin.preorder();
        pre.iter()
            .enumerate()
            .filter(
                |(_, &n)| matches!(oracle.bin.kind(n), NodeKind::Term(t) if oracle.symbols.name(t) == "item"),
            )
            .map(|(i, _)| i)
            .collect()
    };
    let backwards: Vec<UpdateOp> = item_positions[..3]
        .iter()
        .rev()
        .map(|&i| UpdateOp::Delete { target: i })
        .collect();
    let mut probe = Oracle::new(&xml);
    for op in &backwards {
        probe.apply(op);
    }
    for &batch_size in &[2usize, backwards.len()] {
        run_differential(&xml, &backwards, 3, batch_size, "backwards delete run");
    }
}

#[test]
fn differential_delete_at_document_root() {
    // Deleting the root leaves a bare null document — not serializable as
    // XML, so this scenario compares structural fingerprints instead of
    // going through run_differential.
    let xml = feed_doc(3);
    let ops = vec![
        UpdateOp::Rename {
            target: 0,
            label: "feed2".to_string(),
        },
        UpdateOp::Delete { target: 1 }, // first item under the root
        UpdateOp::Delete { target: 0 }, // the document root itself
    ];
    let mut oracle = Oracle::new(&xml);
    for op in &ops {
        oracle.apply(op);
    }
    // Batched path, all in one batch.
    let mut dom = CompressedDom::from_xml(&xml, 0);
    dom.apply_batch(&ops).unwrap();
    dom.grammar().validate().unwrap();
    assert_eq!(
        fingerprint(&dom.grammar()),
        tree_fingerprint(&oracle.bin, &oracle.symbols),
        "root deletion: batched path diverged from the oracle"
    );
    // Single-op path agrees too.
    let mut single = CompressedDom::from_xml(&xml, 0);
    for op in &ops {
        single.apply(op).unwrap();
    }
    assert_eq!(
        fingerprint(&single.grammar()),
        tree_fingerprint(&oracle.bin, &oracle.symbols),
        "root deletion: single-op path diverged from the oracle"
    );
}

#[test]
fn batched_path_survives_repeated_update_recompress_cycles() {
    // Long-running session: many batches with recompression interleaved; the
    // final document must still match an oracle that saw every operation.
    let xml = feed_doc(12);
    let mix = WorkloadMix {
        insert_probability: 0.8,
        rename_probability: 0.4,
        locality: 0.7,
        cluster_every: 10,
        ..WorkloadMix::default()
    };
    let ops = random_update_sequence(&xml, 120, 0xC0FFEE, mix);
    let mut dom = CompressedDom::from_xml(&xml, 3);
    let mut oracle = Oracle::new(&xml);
    for batch in ops.chunks(8) {
        for op in batch {
            oracle.apply(op);
        }
        dom.apply_batch(batch).unwrap();
    }
    assert!(dom.recompressions() >= 4);
    assert_eq!(dom_serialization(&dom), oracle.serialization());
}

// ---------------------------------------------------------------------------
// Batched-isolation properties
// ---------------------------------------------------------------------------

/// A compressed grammar plus derived size for isolation properties.
fn compressed_feed(records: usize) -> slt_xml::sltgrammar::Grammar {
    let (g, _) = TreeRePair::default().compress_xml(&feed_doc(records));
    g
}

/// Deterministically spreads `k` pseudo-random targets over `0..total`.
fn spread_targets(total: u128, k: usize, seed: u64) -> Vec<u128> {
    let mut state = seed | 1;
    let mut targets: Vec<u128> = (0..k)
        .map(|_| {
            // SplitMix64 step — the shims' proptest RNG is not seedable per case.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u128 % total
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    targets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 1, batched: grammar edge growth stays within a factor two per
    /// *distinct* root-to-target path — isolating p paths at once never adds
    /// more than p times the grammar size.
    #[test]
    fn prop_batched_isolation_growth_within_2x_per_distinct_path(
        (records, seed, k) in (2usize..14, any::<u64>(), 1usize..9)
    ) {
        let mut g = compressed_feed(records);
        let total = derived_size(&g);
        let targets = spread_targets(total, k, seed);
        let p = targets.len();
        let before_edges = g.edge_count();
        let before_fp = fingerprint(&g);
        let (nodes, _) = isolate_many(&mut g, &targets).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(fingerprint(&g), before_fp, "isolation must preserve the document");
        prop_assert_eq!(nodes.len(), p);
        for &node in &nodes {
            prop_assert!(g.rule(g.start()).rhs.kind(node).is_term());
        }
        let after = g.edge_count();
        prop_assert!(
            after <= (1 + p) * before_edges + 2 * p,
            "batched isolation grew {before_edges} -> {after} edges for {p} distinct paths"
        );
    }

    /// A singleton batch is byte-identical to single-target isolation: same
    /// resolved node, same inlining count, identical serialized grammar and
    /// identical arena layout of the start rule.
    #[test]
    fn prop_singleton_batch_is_byte_identical_to_isolate(
        (records, seed) in (2usize..14, any::<u64>())
    ) {
        let g0 = compressed_feed(records);
        let total = derived_size(&g0);
        let target = spread_targets(total, 1, seed)[0];

        let mut g_single = g0.clone();
        let (node_single, stats_single) = isolate(&mut g_single, target).unwrap();
        let mut g_batch = g0.clone();
        let (nodes, stats_batch) = isolate_many(&mut g_batch, &[target]).unwrap();

        prop_assert_eq!(nodes[0], node_single);
        prop_assert_eq!(stats_batch.inlinings, stats_single.inlinings);
        prop_assert_eq!(
            serialize::encode(&g_batch),
            serialize::encode(&g_single),
            "serialized grammars must be byte-identical"
        );
        // Arena layout, not just structure: the same node ids in the same
        // preorder with the same labels.
        let rhs_s = &g_single.rule(g_single.start()).rhs;
        let rhs_b = &g_batch.rule(g_batch.start()).rhs;
        let layout = |rhs: &RhsTree| -> Vec<(u32, NodeKind)> {
            rhs.preorder().into_iter().map(|n| (n.0, rhs.kind(n))).collect()
        };
        prop_assert_eq!(layout(rhs_s), layout(rhs_b));
    }

    /// Batched isolation agrees with `val`: every resolved node carries the
    /// label of the derived tree at its preorder index.
    #[test]
    fn prop_batched_isolation_resolves_correct_labels(
        (records, seed, k) in (2usize..8, any::<u64>(), 1usize..6)
    ) {
        let mut g = compressed_feed(records);
        let tree = val(&g).unwrap();
        let pre = tree.preorder();
        let total = derived_size(&g);
        let targets = spread_targets(total, k, seed);
        let (nodes, _) = isolate_many(&mut g, &targets).unwrap();
        for (&t, &node) in targets.iter().zip(&nodes) {
            let want = tree.kind(pre[t as usize]);
            let got = g.rule(g.start()).rhs.kind(node);
            prop_assert_eq!(got, want, "label mismatch at preorder index {}", t);
        }
    }
}
