//! The central correctness property of the reproduction: updates executed on
//! the grammar (with and without GrammarRePair recompression, and via the udc
//! baseline) are equivalent to the reference updates on the uncompressed tree.

use proptest::prelude::*;
use slt_xml::datasets::catalog::Dataset;
use slt_xml::datasets::workload::{
    random_insert_delete_sequence, random_rename_sequence, WorkloadMix,
};
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::grammar_repair::udc::update_decompress_compress;
use slt_xml::grammar_repair::update::apply_update;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::sltgrammar::SymbolTable;
use slt_xml::treerepair::{TreeRePair, TreeRePairConfig};
use slt_xml::xmltree::binary::{to_binary, tree_fingerprint};
use slt_xml::xmltree::updates as reference;
use slt_xml::xmltree::XmlTree;

/// Applies `ops` on the uncompressed reference tree and returns its fingerprint.
fn reference_fingerprint(
    xml: &XmlTree,
    ops: &[slt_xml::xmltree::UpdateOp],
) -> slt_xml::sltgrammar::fingerprint::Fingerprint {
    let mut symbols = SymbolTable::new();
    let mut bin = to_binary(xml, &mut symbols).unwrap();
    for op in ops {
        reference::apply_update(&mut bin, &mut symbols, op).unwrap();
    }
    tree_fingerprint(&bin, &symbols)
}

#[test]
fn grammar_updates_match_reference_semantics_on_the_corpus() {
    for dataset in [Dataset::ExiWeblog, Dataset::XMark, Dataset::Medline] {
        let xml = dataset.generate(0.03);
        let ops = random_insert_delete_sequence(&xml, 120, 0xBEEF, WorkloadMix::default());
        let expected = reference_fingerprint(&xml, &ops);

        let (mut grammar, _) = TreeRePair::default().compress_xml(&xml);
        for op in &ops {
            apply_update(&mut grammar, op).unwrap();
        }
        grammar.validate().unwrap();
        assert_eq!(
            fingerprint(&grammar),
            expected,
            "naive grammar updates diverged on {}",
            dataset.name()
        );

        // Interleaving GrammarRePair recompression must not change the document.
        let (mut maintained, _) = TreeRePair::default().compress_xml(&xml);
        let repair = GrammarRePair::default();
        for (i, op) in ops.iter().enumerate() {
            apply_update(&mut maintained, op).unwrap();
            if (i + 1) % 25 == 0 {
                repair.recompress(&mut maintained);
            }
        }
        maintained.validate().unwrap();
        assert_eq!(
            fingerprint(&maintained),
            expected,
            "recompressed grammar updates diverged on {}",
            dataset.name()
        );

        // The udc baseline reaches the same document too.
        let (compressed, _) = TreeRePair::default().compress_xml(&xml);
        let (udc_result, _) =
            update_decompress_compress(&compressed, &ops, TreeRePairConfig::default()).unwrap();
        assert_eq!(
            fingerprint(&udc_result),
            expected,
            "udc diverged on {}",
            dataset.name()
        );
    }
}

#[test]
fn rename_workloads_match_reference_semantics() {
    let xml = Dataset::ExiTelecomp.generate(0.03);
    let ops = random_rename_sequence(&xml, 80, 7);
    let expected = reference_fingerprint(&xml, &ops);
    let (mut grammar, _) = TreeRePair::default().compress_xml(&xml);
    for op in &ops {
        apply_update(&mut grammar, op).unwrap();
    }
    let repair_stats = GrammarRePair::default().recompress(&mut grammar);
    assert_eq!(fingerprint(&grammar), expected);
    assert!(repair_stats.output_edges <= repair_stats.input_edges);
}

/// A random small document plus a short random update sequence.
fn doc_and_ops() -> impl Strategy<Value = (XmlTree, u64, usize)> {
    (1usize..30, any::<u64>(), 1usize..25).prop_map(|(records, seed, count)| {
        let mut t = XmlTree::new("root");
        let root = t.root();
        for i in 0..records {
            let rec = t.add_child(root, if i % 3 == 0 { "rec" } else { "item" });
            t.add_child(rec, "k");
            if i % 2 == 0 {
                t.add_child(rec, "v");
            }
        }
        (t, seed, count)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary documents and random insert/delete/rename mixes, grammar
    /// updates followed by recompression equal the reference semantics.
    #[test]
    fn prop_grammar_updates_equal_reference((xml, seed, count) in doc_and_ops()) {
        let mut ops = random_insert_delete_sequence(&xml, count, seed, WorkloadMix::default());
        // Mix in a couple of renames derived from the same seed.
        ops.truncate(count);
        let expected = reference_fingerprint(&xml, &ops);

        let (mut grammar, _) = TreeRePair::default().compress_xml(&xml);
        for op in &ops {
            apply_update(&mut grammar, op).unwrap();
        }
        prop_assert_eq!(fingerprint(&grammar), expected);

        let stats = GrammarRePair::default().recompress(&mut grammar);
        prop_assert!(grammar.validate().is_ok());
        prop_assert_eq!(fingerprint(&grammar), expected);
        // Recompression almost always shrinks the grammar, but on tiny inputs a
        // digram whose usage-weighted count is >= 2 can stem from a single
        // generator site; replacing it adds a pattern rule that pruning does not
        // always recover, so allow a few edges of slack (the paper only claims
        // parity with decompress-and-compress, not per-run monotonicity).
        prop_assert!(
            stats.output_edges <= stats.input_edges + stats.input_edges / 10 + 6,
            "recompression grew the grammar substantially: {} -> {}",
            stats.input_edges,
            stats.output_edges
        );
    }
}
