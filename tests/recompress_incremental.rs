//! Oracle tests for the incremental grammar-side occurrence index.
//!
//! `GrammarRePair` with the default `FrequencyQueue` selector builds its
//! occurrence table **once** per `recompress` invocation and maintains it with
//! deltas across replacement rounds; the `NaiveScan` selector re-retrieves all
//! occurrence generators per round (`retrieve_occs`, the full-grammar rebuild).
//! The optimization is only sound if the two paths are observationally
//! indistinguishable: these tests assert **byte-identical output grammars**,
//! identical round counts, and a preserved derived tree on the heterogeneous
//! corpus and — the paper's actual workload — on documents that received a
//! batch of grammar-side updates before recompression.

use slt_xml::datasets::regular::heterogeneous_records_like;
use slt_xml::datasets::workload::{
    random_insert_delete_sequence, random_rename_sequence, WorkloadMix,
};
use slt_xml::grammar_repair::repair::{GrammarRePair, GrammarRePairConfig};
use slt_xml::grammar_repair::update::apply_update;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::sltgrammar::text::print_grammar;
use slt_xml::sltgrammar::{Grammar, SymbolTable};
use slt_xml::treerepair::DigramSelector;
use slt_xml::xmltree::binary::{to_binary, tree_fingerprint};
use slt_xml::xmltree::updates as reference;
use slt_xml::xmltree::updates::UpdateOp;
use slt_xml::xmltree::XmlTree;

fn rebuild_config() -> GrammarRePairConfig {
    GrammarRePairConfig {
        selector: DigramSelector::NaiveScan,
        ..GrammarRePairConfig::default()
    }
}

/// Recompresses clones of `g` with both paths and asserts byte-identical
/// results; returns the incremental result for further checks.
fn assert_paths_agree(g: &Grammar, context: &str) -> Grammar {
    let mut g_inc = g.clone();
    let mut g_reb = g.clone();
    let s_inc = GrammarRePair::default().recompress(&mut g_inc);
    let s_reb = GrammarRePair::new(rebuild_config()).recompress(&mut g_reb);
    assert_eq!(
        print_grammar(&g_inc),
        print_grammar(&g_reb),
        "incremental and rebuild paths disagree on {context}"
    );
    assert_eq!(s_inc.rounds, s_reb.rounds, "round counts differ on {context}");
    assert_eq!(s_inc.replacements, s_reb.replacements);
    assert_eq!(s_inc.inlinings, s_reb.inlinings);
    assert_eq!(s_inc.exported_rules, s_reb.exported_rules);
    assert_eq!(s_inc.output_edges, s_reb.output_edges);
    assert_eq!(s_inc.max_intermediate_edges, s_reb.max_intermediate_edges);
    g_inc.validate().unwrap();
    g_inc
}

#[test]
fn paths_agree_on_the_heterogeneous_corpus() {
    // The selection-bound corpus from the selector A/B baseline: repetitive
    // *and* label-diverse, so many rounds with many live digrams.
    for (schemas, records) in [(20usize, 300usize), (50, 550)] {
        let xml = heterogeneous_records_like(schemas, records);
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let g = Grammar::new(symbols, bin);
        let before = fingerprint(&g);
        let out = assert_paths_agree(&g, &format!("heterogeneous({schemas},{records})"));
        assert_eq!(fingerprint(&out), before, "derived tree must be preserved");
    }
}

/// Applies the workload to a compressed grammar and to the uncompressed
/// reference tree, then checks both recompression paths agree and still
/// derive the reference.
fn run_update_workload(xml: &XmlTree, ops: &[UpdateOp], context: &str) {
    let (mut g, _) = GrammarRePair::default().compress_xml(xml);
    let mut symbols = SymbolTable::new();
    let mut bin = to_binary(xml, &mut symbols).unwrap();
    for op in ops {
        apply_update(&mut g, op).expect("workload op applies to the grammar");
        reference::apply_update(&mut bin, &mut symbols, op)
            .expect("workload op applies to the reference");
    }
    let expected = tree_fingerprint(&bin, &symbols);
    assert_eq!(fingerprint(&g), expected, "updates must agree before recompression");
    let out = assert_paths_agree(&g, context);
    assert_eq!(fingerprint(&out), expected, "recompression must preserve the document");
}

#[test]
fn paths_agree_after_insert_delete_workloads() {
    let xml = heterogeneous_records_like(8, 120);
    for seed in [3u64, 17] {
        let ops = random_insert_delete_sequence(&xml, 40, seed, WorkloadMix::default());
        run_update_workload(&xml, &ops, &format!("insert/delete workload seed {seed}"));
    }
}

#[test]
fn paths_agree_after_rename_workloads() {
    // Renames to fresh labels (the Figure 6 workload): isolation blows the
    // grammar up without changing its shape class.
    let xml = slt_xml::datasets::regular::exi_weblog_like(40);
    let ops = random_rename_sequence(&xml, 30, 11);
    run_update_workload(&xml, &ops, "rename workload");
}

#[test]
fn paths_agree_on_repeated_update_recompress_cycles() {
    // The steady-state loop of a compressed DOM under write traffic:
    // update batch → recompress → update batch → recompress. Each cycle
    // starts from the *incremental* result, so any divergence compounds and
    // would be caught by the per-cycle comparison with the rebuild path.
    let xml = heterogeneous_records_like(5, 80);
    let (mut g, _) = GrammarRePair::default().compress_xml(&xml);
    let mut symbols = SymbolTable::new();
    let mut bin = to_binary(&xml, &mut symbols).unwrap();
    for cycle in 0..3u64 {
        // Generate ops against the *current* document state.
        let current = slt_xml::xmltree::binary::from_binary(&bin, &symbols).unwrap();
        let ops = random_insert_delete_sequence(&current, 15, cycle, WorkloadMix::default());
        for op in &ops {
            apply_update(&mut g, op).unwrap();
            reference::apply_update(&mut bin, &mut symbols, op).unwrap();
        }
        g = assert_paths_agree(&g, &format!("cycle {cycle}"));
        assert_eq!(fingerprint(&g), tree_fingerprint(&bin, &symbols));
    }
}
