//! Store-level differential suite: a [`DomStore`] serving several documents
//! under interleaved update schedules must keep **every** document
//! byte-identical to its own uncompressed `xmltree::updates` oracle — and
//! updating one document must never perturb another (cross-document
//! isolation), even while the store's debt scheduler recompresses documents
//! between batches. Also pins the shared-symbol-table round-trip (shared ids
//! agree across documents, serialization survives rebasing) and the
//! positional read surface (`node_at_preorder` / `nth_element` /
//! `subtree_size`) against cursor stepping across update/recompress cycles.

use slt_xml::datasets::workload::{random_update_sequence, WorkloadMix};
use slt_xml::grammar_repair::store::SchedulerConfig;
use slt_xml::sltgrammar::{RhsTree, SymbolTable};
use slt_xml::xmltree::binary::{from_binary, to_binary};
use slt_xml::xmltree::parse::parse_xml;
use slt_xml::xmltree::updates::{self as reference, UpdateOp};
use slt_xml::xmltree::XmlTree;
use slt_xml::{DocId, DomStore};

/// The uncompressed ground-truth document, updated via `xmltree::updates`.
struct Oracle {
    bin: RhsTree,
    symbols: SymbolTable,
}

impl Oracle {
    fn new(xml: &XmlTree) -> Self {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(xml, &mut symbols).expect("valid document");
        Oracle { bin, symbols }
    }

    fn apply(&mut self, op: &UpdateOp) {
        reference::apply_update(&mut self.bin, &mut self.symbols, op)
            .expect("oracle rejects a workload operation");
    }

    fn serialization(&self) -> String {
        from_binary(&self.bin, &self.symbols)
            .expect("oracle stays a well-formed document")
            .to_xml()
    }
}

fn store_serialization(store: &DomStore, doc: DocId) -> String {
    store
        .to_xml(doc)
        .expect("document stays materializable")
        .to_xml()
}

/// Three structurally different documents over overlapping alphabets.
fn corpus() -> Vec<XmlTree> {
    let mut feed = String::from("<feed>");
    for i in 0..12 {
        feed.push_str("<item><title/><body><p/><p/></body>");
        if i % 3 == 0 {
            feed.push_str("<tags><t/><t/></tags>");
        }
        feed.push_str("</item>");
    }
    feed.push_str("</feed>");
    let mut blog = String::from("<blog>");
    for _ in 0..9 {
        blog.push_str("<post><title/><body><p/></body><comments><c/><c/></comments></post>");
    }
    blog.push_str("</blog>");
    let mut log = String::from("<log>");
    for _ in 0..15 {
        log.push_str("<entry><ts/><message/><level/></entry>");
    }
    log.push_str("</log>");
    vec![
        parse_xml(&feed).unwrap(),
        parse_xml(&blog).unwrap(),
        parse_xml(&log).unwrap(),
    ]
}

/// Per-document workload mixes with different shapes, so the documents heat
/// up at different rates.
fn workloads(docs: &[XmlTree], count: usize) -> Vec<Vec<UpdateOp>> {
    let mixes = [
        WorkloadMix {
            insert_probability: 0.85,
            rename_probability: 0.3,
            locality: 0.8,
            cluster_every: 10,
            ..WorkloadMix::default()
        },
        WorkloadMix {
            rename_probability: 1.0,
            locality: 0.6,
            cluster_every: 14,
            ..WorkloadMix::default()
        },
        WorkloadMix::clustered(0.9),
    ];
    docs.iter()
        .enumerate()
        .map(|(i, xml)| {
            random_update_sequence(xml, count, 0x57E0 + i as u64, mixes[i % mixes.len()])
        })
        .collect()
}

#[test]
fn interleaved_updates_across_documents_stay_byte_identical_to_their_oracles() {
    let docs = corpus();
    let ops = workloads(&docs, 48);
    // Small threshold + auto: the scheduler recompresses mid-schedule.
    let store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 60,
        drain_budget: 0,
        auto: true,
    });
    let ids: Vec<DocId> = docs.iter().map(|x| store.load_xml(x).unwrap()).collect();
    let mut oracles: Vec<Oracle> = docs.iter().map(Oracle::new).collect();

    // Interleave: round-robin over the documents, alternating batched and
    // single-operation ingestion per round.
    let chunk = 6;
    let rounds = ops[0].len() / chunk;
    for round in 0..rounds {
        for (d, &id) in ids.iter().enumerate() {
            let batch = &ops[d][round * chunk..(round + 1) * chunk];
            if (round + d) % 2 == 0 {
                for op in batch {
                    oracles[d].apply(op);
                    store.apply(id, op).expect("workload is valid");
                }
            } else {
                for op in batch {
                    oracles[d].apply(op);
                }
                store.apply_batch(id, batch).expect("workload is valid");
            }
            // The updated document matches its oracle…
            assert_eq!(
                store_serialization(&store, id),
                oracles[d].serialization(),
                "doc {d} diverged in round {round}"
            );
            // …and no *other* document moved (cross-document isolation).
            for (other, &oid) in ids.iter().enumerate() {
                if other != d {
                    assert_eq!(
                        store_serialization(&store, oid),
                        oracles[other].serialization(),
                        "updating doc {d} perturbed doc {other} in round {round}"
                    );
                }
            }
        }
    }
    let total_recompressions: usize = ids.iter().map(|&id| store.recompressions(id).unwrap()).sum();
    assert!(
        total_recompressions >= 2,
        "the schedule must actually exercise the scheduler, got {total_recompressions}"
    );
    for &id in &ids {
        store.grammar(id).unwrap().validate().unwrap();
    }
}

#[test]
fn updating_one_document_never_invalidates_anothers_tables() {
    let docs = corpus();
    let store = DomStore::new();
    let a = store.load_xml(&docs[0]).unwrap();
    let b = store.load_xml(&docs[1]).unwrap();
    let b_before = store_serialization(&store, b);
    let b_tables = store.nav_tables(b).unwrap();
    let ops = workloads(&docs[..1], 30).remove(0);
    for batch in ops.chunks(10) {
        store.apply_batch(a, batch).expect("workload is valid");
    }
    store.recompress(a).unwrap();
    // B's serialization, cached tables and debt are untouched.
    assert_eq!(store_serialization(&store, b), b_before);
    let b_tables_after = store.nav_tables(b).unwrap();
    assert!(
        std::sync::Arc::ptr_eq(&b_tables, &b_tables_after),
        "doc B's cached tables must survive doc A's updates"
    );
    assert_eq!(store.debt(b).unwrap(), 0);
    assert_eq!(store.recompressions(b).unwrap(), 0);
}

#[test]
fn shared_table_round_trips_and_beats_private_tables() {
    let docs = corpus();
    let store = DomStore::new();
    let ids: Vec<DocId> = docs.iter().map(|x| store.load_xml(x).unwrap()).collect();
    // Byte-identical round trip for every document through the shared table.
    for (xml, &id) in docs.iter().zip(&ids) {
        assert_eq!(store_serialization(&store, id), xml.to_xml());
    }
    // Shared ids agree across all documents and the master.
    for name in ["title", "body", "p", "#"] {
        let master_id = store.symbols().get(name).expect("common label interned");
        for &id in &ids {
            let table = &store.grammar(id).unwrap().symbols;
            assert_eq!(table.get(name), Some(master_id), "id of `{name}` must agree");
            assert_eq!(table.name(master_id), name);
        }
    }
    // The resident footprint beats per-document tables on this corpus.
    let stats = store.symbol_stats();
    assert!(
        stats.resident_bytes() < stats.unshared_bytes,
        "sharing must reduce resident label-table bytes: {stats:?}"
    );
    // Serialize/decode round trip per document (private table view).
    for &id in &ids {
        let g = store.grammar(id).unwrap();
        let bytes = slt_xml::sltgrammar::serialize::encode(&g);
        let back = slt_xml::sltgrammar::serialize::decode(&bytes).unwrap();
        assert_eq!(
            from_binary(
                &slt_xml::sltgrammar::derive::val(&back).unwrap(),
                &back.symbols
            )
            .unwrap()
            .to_xml(),
            store_serialization(&store, id)
        );
    }
}

#[test]
fn update_interned_labels_stay_private_to_their_document() {
    let docs = corpus();
    let store = DomStore::new();
    let a = store.load_xml(&docs[0]).unwrap();
    let b = store.load_xml(&docs[1]).unwrap();
    // Rename an element of A to a label no document has seen.
    store
        .apply(
            a,
            &UpdateOp::Rename {
                target: 1,
                label: "only_in_a".to_string(),
            },
        )
        .unwrap();
    let ga = store.grammar(a).unwrap();
    let gb = store.grammar(b).unwrap();
    assert!(ga.symbols.get("only_in_a").is_some());
    assert!(gb.symbols.get("only_in_a").is_none(), "B must not see A's label");
    assert!(
        store.symbols().get("only_in_a").is_none(),
        "the master only holds load-time alphabets"
    );
    // The private label lives in A's local tail, above the shared prefix.
    let id = ga.symbols.get("only_in_a").unwrap();
    assert!(id.index() >= ga.symbols.shared_len());
    assert!(ga.symbols.local_heap_bytes() > 0);
    assert_eq!(gb.symbols.local_heap_bytes(), 0);
}

#[test]
fn positional_reads_agree_with_cursor_stepping_across_update_cycles() {
    let docs = corpus();
    let ops = workloads(&docs, 24);
    let mut store = DomStore::new().with_scheduler(SchedulerConfig {
        debt_threshold: 80,
        drain_budget: 0,
        auto: true,
    });
    let ids: Vec<DocId> = docs.iter().map(|x| store.load_xml(x).unwrap()).collect();

    let check_doc = |store: &mut DomStore, id: DocId, context: &str| {
        let total = store.derived_size(id).unwrap();
        // Step a cursor through the whole document; at every position the
        // positional jump and the stepper must agree on label, subtree size
        // and element numbering.
        let tables = store.nav_tables(id).unwrap();
        let grammar = store.grammar(id).unwrap();
        let mut stepper = slt_xml::Cursor::with_tables(&grammar, tables.clone());
        let mut elements: u128 = 0;
        let mut sizes: Vec<u128> = Vec::new();
        for idx in 0..total {
            let mut jumper = slt_xml::Cursor::with_tables(&grammar, tables.clone());
            assert!(jumper.node_at_preorder(idx), "{context}: index {idx} in range");
            assert_eq!(jumper.label(), stepper.label(), "{context}: label at {idx}");
            assert_eq!(
                jumper.subtree_size(),
                stepper.subtree_size(),
                "{context}: subtree size at {idx}"
            );
            sizes.push(stepper.subtree_size());
            if !stepper.is_null() {
                let mut nth = slt_xml::Cursor::with_tables(&grammar, tables.clone());
                assert!(nth.nth_element(elements), "{context}: element {elements}");
                assert_eq!(nth.label(), stepper.label());
                elements += 1;
            }
            if stepper.rank() > 0 {
                stepper.down(0);
            } else {
                loop {
                    match stepper.up() {
                        None => break,
                        Some(i) if i + 1 < stepper.rank() => {
                            stepper.down(i + 1);
                            break;
                        }
                        Some(_) => continue,
                    }
                }
            }
        }
        assert!(!slt_xml::Cursor::with_tables(&grammar, tables).node_at_preorder(total));
        // Subtree sizes are consistent: each node's size is 1 + children.
        // (Cheap sanity on top of the cross-check above: the root covers all.)
        assert_eq!(sizes[0], total, "{context}: root subtree covers the document");
    };

    for (d, &id) in ids.iter().enumerate() {
        check_doc(&mut store, id, &format!("doc {d} fresh"));
    }
    for (round, chunk) in [0usize, 1, 2].into_iter().zip(ops[0].chunks(8)) {
        for (d, &id) in ids.iter().enumerate() {
            if d == 0 {
                store.apply_batch(id, chunk).expect("workload is valid");
            }
            check_doc(&mut store, id, &format!("doc {d} after round {round}"));
        }
    }
    // And once more after a forced recompression.
    store.recompress(ids[0]).unwrap();
    check_doc(&mut store, ids[0], "doc 0 after forced recompression");
}
