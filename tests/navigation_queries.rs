//! Cross-crate integration tests for the read path over compressed documents:
//! cursor navigation, streaming traversal, path queries and label statistics,
//! all cross-checked against the uncompressed document.

use std::collections::HashMap;

use proptest::prelude::*;
use slt_xml::datasets::catalog::Dataset;
use slt_xml::grammar_repair::navigate::{element_count, label_counts, Cursor, PreorderLabels};
use slt_xml::grammar_repair::query::PathQuery;
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::succinct_xml::SuccinctDom;
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::XmlTree;

/// Document-order element labels reached through the compressed cursor.
fn document_labels_via_cursor(g: &slt_xml::sltgrammar::Grammar) -> Vec<String> {
    let mut cursor = Cursor::new(g);
    let mut labels = Vec::new();
    'outer: loop {
        labels.push(cursor.label().to_string());
        if cursor.doc_first_child() {
            continue;
        }
        loop {
            if cursor.doc_next_sibling() {
                break;
            }
            if !cursor.doc_parent() {
                break 'outer;
            }
        }
    }
    labels
}

fn document_labels(xml: &XmlTree) -> Vec<String> {
    xml.preorder()
        .iter()
        .map(|&n| xml.label(n).to_string())
        .collect()
}

#[test]
fn cursor_visits_the_corpus_documents_in_document_order() {
    for dataset in [Dataset::ExiWeblog, Dataset::XMark, Dataset::Treebank] {
        let xml = dataset.generate(0.02);
        let (g, _) = GrammarRePair::default().compress_xml(&xml);
        assert_eq!(
            document_labels_via_cursor(&g),
            document_labels(&xml),
            "cursor order mismatch on {}",
            dataset.name()
        );
        assert_eq!(element_count(&g), xml.node_count() as u128);
    }
}

#[test]
fn streaming_preorder_matches_the_binary_tree_of_the_corpus() {
    let xml = Dataset::Medline.generate(0.02);
    let mut symbols = slt_xml::sltgrammar::SymbolTable::new();
    let bin = slt_xml::xmltree::binary::to_binary(&xml, &mut symbols).unwrap();
    let (g, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
    let got: Vec<String> = PreorderLabels::new(&g)
        .map(|t| g.symbols.name(t).to_string())
        .collect();
    let expected: Vec<String> = bin
        .preorder()
        .iter()
        .map(|&n| match bin.kind(n) {
            slt_xml::sltgrammar::NodeKind::Term(t) => symbols.name(t).to_string(),
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn queries_agree_with_uncompressed_evaluation_on_the_corpus() {
    let cases = [
        (Dataset::XMark, vec!["//item", "//item/name", "/site/regions//keyword", "//person"]),
        (Dataset::Medline, vec!["//citation", "//article/title", "/medline_citation_set//author"]),
        (Dataset::ExiWeblog, vec!["//entry", "/log/entry/request/uri", "//absent"]),
    ];
    for (dataset, queries) in cases {
        let xml = dataset.generate(0.03);
        let (g, _) = GrammarRePair::default().compress_xml(&xml);
        for text in queries {
            let q = PathQuery::parse(text).unwrap();
            let reference = q.evaluate_uncompressed(&xml);
            assert_eq!(
                q.count(&g),
                reference.len() as u128,
                "count mismatch for {text} on {}",
                dataset.name()
            );
            assert_eq!(
                q.evaluate(&g),
                reference,
                "evaluation mismatch for {text} on {}",
                dataset.name()
            );
        }
    }
}

#[test]
fn label_counts_match_the_document_statistics() {
    let xml = Dataset::ExiTelecomp.generate(0.05);
    let (g, _) = GrammarRePair::default().compress_xml(&xml);
    let counts = label_counts(&g);
    let mut expected: HashMap<String, u128> = HashMap::new();
    for n in xml.preorder() {
        *expected.entry(xml.label(n).to_string()).or_insert(0) += 1;
    }
    for (label, count) in expected {
        assert_eq!(counts.get(&label).copied().unwrap_or(0), count, "label {label}");
    }
}

#[test]
fn succinct_dom_and_grammar_cursor_agree() {
    // Two entirely independent read paths over the same document must agree on
    // navigation results: the succinct DOM (pointerless but uncompressed) and
    // the grammar cursor (compressed).
    let xml = Dataset::XMark.generate(0.05);
    let dom = SuccinctDom::build(&xml);
    let (g, _) = GrammarRePair::default().compress_xml(&xml);
    let via_grammar = document_labels_via_cursor(&g);
    let via_succinct: Vec<String> = dom.preorder().map(|v| dom.label(v).to_string()).collect();
    assert_eq!(via_grammar, via_succinct);
    assert_eq!(element_count(&g), dom.node_count() as u128);
}

/// Random document strategy shared by the property tests below.
fn arbitrary_xml(max_nodes: usize) -> impl Strategy<Value = XmlTree> {
    let labels = prop::sample::select(vec!["a", "b", "c", "item", "rec"]);
    proptest::collection::vec((labels, 0usize..8), 1..max_nodes).prop_map(|spec| {
        let mut t = XmlTree::new("root");
        let mut nodes = vec![t.root()];
        for (label, parent_choice) in spec {
            let parent = nodes[parent_choice % nodes.len()];
            let n = t.add_child(parent, label);
            nodes.push(n);
        }
        t
    })
}

/// Random path queries over the small label alphabet used by `arbitrary_xml`.
fn arbitrary_query() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,
        prop::sample::select(vec!["a", "b", "c", "item", "rec", "root", "*"]),
    );
    proptest::collection::vec(step, 1..4).prop_map(|steps| {
        let mut q = String::new();
        for (descendant, label) in steps {
            q.push_str(if descendant { "//" } else { "/" });
            q.push_str(label);
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The document view of the cursor visits exactly the original document.
    #[test]
    fn prop_cursor_document_traversal(xml in arbitrary_xml(50)) {
        let (g, _) = GrammarRePair::default().compress_xml(&xml);
        prop_assert_eq!(document_labels_via_cursor(&g), document_labels(&xml));
    }

    /// Both query evaluation modes agree with the uncompressed oracle on
    /// arbitrary documents and arbitrary small queries.
    #[test]
    fn prop_queries_match_oracle(xml in arbitrary_xml(50), query in arbitrary_query()) {
        let q = PathQuery::parse(&query).unwrap();
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        let reference = q.evaluate_uncompressed(&xml);
        prop_assert_eq!(q.count(&g), reference.len() as u128, "count for {}", query);
        prop_assert_eq!(q.evaluate(&g), reference, "evaluation for {}", query);
    }

    /// Usage-weighted label statistics equal the real per-label counts.
    #[test]
    fn prop_label_counts_match(xml in arbitrary_xml(60)) {
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        let counts = label_counts(&g);
        let mut expected: HashMap<String, u128> = HashMap::new();
        for n in xml.preorder() {
            *expected.entry(xml.label(n).to_string()).or_insert(0) += 1;
        }
        for (label, count) in expected {
            prop_assert_eq!(counts.get(&label).copied().unwrap_or(0), count);
        }
        prop_assert_eq!(element_count(&g), xml.node_count() as u128);
    }
}
