//! Cross-crate integration tests: compression roundtrips on the synthetic
//! corpus and on random documents (property-based).

use proptest::prelude::*;
use slt_xml::datasets::catalog::Dataset;
use slt_xml::grammar_repair::repair::GrammarRePair;
use slt_xml::sltgrammar::fingerprint::fingerprint;
use slt_xml::sltgrammar::SymbolTable;
use slt_xml::treerepair::TreeRePair;
use slt_xml::xmltree::binary::{from_binary, to_binary, tree_fingerprint};
use slt_xml::xmltree::XmlTree;

/// Compression must be lossless: `val(compress(t)) == t` for both compressors.
#[test]
fn compressors_are_lossless_on_the_corpus() {
    for dataset in Dataset::all() {
        let xml = dataset.generate(0.03);
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let reference = tree_fingerprint(&bin, &symbols);

        let (g_tr, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        g_tr.validate().unwrap();
        assert_eq!(fingerprint(&g_tr), reference, "TreeRePair lost data on {}", dataset.name());

        let (g_gr, _) = GrammarRePair::default().compress_xml(&xml);
        g_gr.validate().unwrap();
        assert_eq!(
            fingerprint(&g_gr),
            reference,
            "GrammarRePair lost data on {}",
            dataset.name()
        );
    }
}

/// Recompressing a TreeRePair grammar with GrammarRePair keeps the document and
/// does not blow the grammar up.
#[test]
fn recompression_of_compressed_grammars_is_stable() {
    for dataset in [Dataset::ExiWeblog, Dataset::XMark, Dataset::Medline] {
        let xml = dataset.generate(0.05);
        let (mut g, tr_stats) = TreeRePair::default().compress_xml(&xml);
        let reference = fingerprint(&g);
        let stats = GrammarRePair::default().recompress(&mut g);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), reference);
        assert!(
            stats.output_edges <= tr_stats.output_edges + tr_stats.output_edges / 5 + 8,
            "{}: recompression should not grow the grammar substantially ({} -> {})",
            dataset.name(),
            tr_stats.output_edges,
            stats.output_edges
        );
    }
}

/// Decompressing a grammar and re-reading it as XML reproduces the document.
#[test]
fn full_decompression_roundtrip() {
    let xml = Dataset::ExiTelecomp.generate(0.05);
    let (g, _) = TreeRePair::default().compress_xml(&xml);
    let bin = slt_xml::sltgrammar::derive::val(&g).unwrap();
    let back = from_binary(&bin, &g.symbols).unwrap();
    assert_eq!(back.to_xml(), xml.to_xml());
}

/// Strategy: random unranked XML trees with up to `max_nodes` nodes drawn from
/// a small label alphabet (repetition makes them compressible).
fn arbitrary_xml(max_nodes: usize) -> impl Strategy<Value = XmlTree> {
    let labels = prop::sample::select(vec!["a", "b", "c", "item", "rec"]);
    (2usize..max_nodes, proptest::collection::vec((labels, 0usize..8), 1..max_nodes)).prop_map(
        |(_, spec)| {
            let mut t = XmlTree::new("root");
            let mut nodes = vec![t.root()];
            for (label, parent_choice) in spec {
                let parent = nodes[parent_choice % nodes.len()];
                let n = t.add_child(parent, label);
                nodes.push(n);
            }
            t
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// TreeRePair is lossless on arbitrary documents.
    #[test]
    fn prop_treerepair_roundtrips(xml in arbitrary_xml(60)) {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let reference = tree_fingerprint(&bin, &symbols);
        let (g, stats) = TreeRePair::default().compress_binary(symbols, bin);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(fingerprint(&g), reference);
        prop_assert!(stats.output_edges <= stats.input_edges);
    }

    /// GrammarRePair applied to the tree is lossless and similar in size to
    /// TreeRePair.
    #[test]
    fn prop_grammarrepair_roundtrips(xml in arbitrary_xml(60)) {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let reference = tree_fingerprint(&bin, &symbols);
        let (g, _) = GrammarRePair::default().compress_xml(&xml);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(fingerprint(&g), reference);
    }

    /// XML serialization and parsing are inverse to each other.
    #[test]
    fn prop_xml_serialization_roundtrips(xml in arbitrary_xml(80)) {
        let text = xml.to_xml();
        let parsed = slt_xml::xmltree::parse::parse_xml(&text).unwrap();
        prop_assert_eq!(parsed.to_xml(), text);
        prop_assert_eq!(parsed.node_count(), xml.node_count());
    }

    /// Binary encoding and decoding are inverse to each other.
    #[test]
    fn prop_binary_encoding_roundtrips(xml in arbitrary_xml(80)) {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        prop_assert_eq!(bin.node_count(), 2 * xml.node_count() + 1);
        let back = from_binary(&bin, &symbols).unwrap();
        prop_assert_eq!(back.to_xml(), xml.to_xml());
    }
}
