//! Reference (uncompressed) update semantics on binary XML trees.
//!
//! The paper defines three atomic update operations on the binary tree
//! representation (Section III and Section V-C):
//!
//! * `rename(t, u, σ)` — relabel node `u` with `σ` (`u` and `σ` non-null),
//! * `insert(t, u, s)` — insert the tree `s` *before* node `u` (or, when `u` is
//!   a null pointer, at that empty position, which realizes "insert after the
//!   last sibling" / "insert into an empty child list"),
//! * `delete(t, u)` — delete the XML subtree rooted at `u`, keeping `u`'s
//!   following siblings.
//!
//! This module implements those semantics directly on uncompressed binary trees.
//! It serves as the ground-truth oracle against which the grammar-based updates
//! of the `grammar-repair` crate are tested, and as the workload vocabulary
//! shared by the dataset generators and the benchmark harness.

use sltgrammar::{NodeId, NodeKind, RhsTree, SymbolTable};

use crate::binary::to_binary;
use crate::error::{Result, XmlError};
use crate::tree::XmlTree;

/// One atomic update operation, addressed by the 0-based preorder index of the
/// target node in the *binary* tree (null nodes included, so "insert after the
/// last child" positions are addressable).
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// Relabel the element at `target` with `label`.
    Rename {
        /// Preorder index of the element node in the binary tree.
        target: usize,
        /// New element label (must not be the null symbol).
        label: String,
    },
    /// Insert `fragment` as a new previous sibling of the node at `target`
    /// (or at the empty position if `target` is a null node).
    InsertBefore {
        /// Preorder index of the target node in the binary tree.
        target: usize,
        /// The element subtree to insert.
        fragment: XmlTree,
    },
    /// Delete the XML subtree rooted at the element at `target`, preserving its
    /// following siblings.
    Delete {
        /// Preorder index of the element node in the binary tree.
        target: usize,
    },
}

impl UpdateOp {
    /// The preorder index the operation targets.
    pub fn target(&self) -> usize {
        match self {
            UpdateOp::Rename { target, .. }
            | UpdateOp::InsertBefore { target, .. }
            | UpdateOp::Delete { target } => *target,
        }
    }
}

/// Resolves a 0-based preorder index to a node id of a plain tree.
pub fn node_at_preorder(bin: &RhsTree, index: usize) -> Result<NodeId> {
    bin.preorder()
        .get(index)
        .copied()
        .ok_or_else(|| XmlError::InvalidUpdate {
            detail: format!("preorder index {index} is out of range"),
        })
}

fn expect_element(bin: &RhsTree, symbols: &SymbolTable, node: NodeId) -> Result<()> {
    match bin.kind(node) {
        NodeKind::Term(t) if !symbols.is_null(t) => Ok(()),
        NodeKind::Term(_) => Err(XmlError::InvalidUpdate {
            detail: "target node is a null node".to_string(),
        }),
        _ => Err(XmlError::InvalidUpdate {
            detail: "target node is not a terminal".to_string(),
        }),
    }
}

/// `rename(t, u, σ)` on an uncompressed binary tree.
pub fn rename(bin: &mut RhsTree, symbols: &mut SymbolTable, node: NodeId, label: &str) -> Result<()> {
    expect_element(bin, symbols, node)?;
    if label == sltgrammar::NULL_SYMBOL_NAME {
        return Err(XmlError::InvalidUpdate {
            detail: "cannot rename a node to the null symbol".to_string(),
        });
    }
    let term = symbols.intern(label, 2).map_err(|_| XmlError::InvalidUpdate {
        detail: format!("label `{label}` is already used with a different rank"),
    })?;
    bin.set_kind(node, NodeKind::Term(term));
    Ok(())
}

/// The rightmost leaf of the subtree rooted at `node` (following last children).
pub fn rightmost_leaf(bin: &RhsTree, node: NodeId) -> NodeId {
    let mut cur = node;
    loop {
        match bin.children(cur).last() {
            Some(&c) => cur = c,
            None => return cur,
        }
    }
}

/// `insert(t, u, s)` on an uncompressed binary tree: inserts the element
/// `fragment` as a previous sibling of `node` (or at the empty position if
/// `node` is a null node).
pub fn insert_before(
    bin: &mut RhsTree,
    symbols: &mut SymbolTable,
    node: NodeId,
    fragment: &XmlTree,
) -> Result<()> {
    let frag_bin = to_binary(fragment, symbols)?;
    let frag_root = bin.clone_subtree_from(&frag_bin, frag_bin.root());
    let attach = rightmost_leaf(bin, frag_root);
    match bin.kind(attach) {
        NodeKind::Term(t) if symbols.is_null(t) => {}
        _ => {
            return Err(XmlError::InvalidUpdate {
                detail: "the rightmost leaf of the inserted fragment must be a null node"
                    .to_string(),
            })
        }
    }
    let target_is_null = match bin.kind(node) {
        NodeKind::Term(t) => symbols.is_null(t),
        _ => {
            return Err(XmlError::InvalidUpdate {
                detail: "insert target must be a terminal node".to_string(),
            })
        }
    };
    // Put the fragment where the target used to be; the old subtree (the target
    // element and its following siblings) becomes the fragment's sibling chain,
    // unless the target was a null position.
    bin.replace_subtree(node, frag_root);
    if !target_is_null {
        bin.replace_subtree(attach, node);
    }
    Ok(())
}

/// `delete(t, u)` on an uncompressed binary tree: removes the element at `node`
/// together with its descendants, splicing its next-sibling chain into its place.
pub fn delete_subtree(bin: &mut RhsTree, symbols: &SymbolTable, node: NodeId) -> Result<()> {
    expect_element(bin, symbols, node)?;
    let next_sibling = bin.children(node)[1];
    bin.detach(next_sibling);
    bin.replace_subtree(node, next_sibling);
    Ok(())
}

/// Applies one [`UpdateOp`] to an uncompressed binary tree.
pub fn apply_update(bin: &mut RhsTree, symbols: &mut SymbolTable, op: &UpdateOp) -> Result<()> {
    let node = node_at_preorder(bin, op.target())?;
    match op {
        UpdateOp::Rename { label, .. } => rename(bin, symbols, node, label),
        UpdateOp::InsertBefore { fragment, .. } => insert_before(bin, symbols, node, fragment),
        UpdateOp::Delete { .. } => delete_subtree(bin, symbols, node),
    }
}

/// Applies a sequence of updates in order.
pub fn apply_updates(bin: &mut RhsTree, symbols: &mut SymbolTable, ops: &[UpdateOp]) -> Result<()> {
    for op in ops {
        apply_update(bin, symbols, op)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{from_binary, is_binary_xml, to_binary};
    use crate::parse::parse_xml;

    fn setup(doc: &str) -> (RhsTree, SymbolTable) {
        let xml = parse_xml(doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        (bin, symbols)
    }

    fn as_xml(bin: &RhsTree, symbols: &SymbolTable) -> String {
        from_binary(bin, symbols).unwrap().to_xml()
    }

    #[test]
    fn rename_changes_exactly_one_node() {
        let (mut bin, mut symbols) = setup("<f><d/><b><a/></b></f>");
        // Find the d node.
        let d = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "d"))
            .unwrap();
        rename(&mut bin, &mut symbols, d, "a").unwrap();
        assert_eq!(as_xml(&bin, &symbols), "<f><a/><b><a/></b></f>");
    }

    #[test]
    fn rename_rejects_null_targets_and_null_labels() {
        let (mut bin, mut symbols) = setup("<f><a/></f>");
        let null = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.is_null(t)))
            .unwrap();
        assert!(rename(&mut bin, &mut symbols, null, "x").is_err());
        let root = bin.root();
        assert!(rename(&mut bin, &mut symbols, root, "#").is_err());
    }

    #[test]
    fn insert_before_an_element_makes_it_the_previous_sibling() {
        let (mut bin, mut symbols) = setup("<r><a/><c/></r>");
        // Insert <b/> before <c/>.
        let c = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "c"))
            .unwrap();
        let frag = parse_xml("<b><x/></b>").unwrap();
        insert_before(&mut bin, &mut symbols, c, &frag).unwrap();
        assert!(is_binary_xml(&bin, &symbols));
        assert_eq!(as_xml(&bin, &symbols), "<r><a/><b><x/></b><c/></r>");
    }

    #[test]
    fn insert_at_null_appends_after_the_last_sibling() {
        let (mut bin, mut symbols) = setup("<r><a/></r>");
        // The null second child of <a/>'s binary node is the "after last child of r" slot.
        let a = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "a"))
            .unwrap();
        let slot = bin.children(a)[1];
        let frag = parse_xml("<z/>").unwrap();
        insert_before(&mut bin, &mut symbols, slot, &frag).unwrap();
        assert_eq!(as_xml(&bin, &symbols), "<r><a/><z/></r>");
    }

    #[test]
    fn insert_into_empty_child_list() {
        let (mut bin, mut symbols) = setup("<r><a/></r>");
        let a = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "a"))
            .unwrap();
        let empty_children_slot = bin.children(a)[0];
        let frag = parse_xml("<w/>").unwrap();
        insert_before(&mut bin, &mut symbols, empty_children_slot, &frag).unwrap();
        assert_eq!(as_xml(&bin, &symbols), "<r><a><w/></a></r>");
    }

    #[test]
    fn delete_keeps_following_siblings() {
        let (mut bin, symbols) = setup("<r><a><x/></a><b/><c/></r>");
        let a = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "a"))
            .unwrap();
        delete_subtree(&mut bin, &symbols, a).unwrap();
        assert_eq!(as_xml(&bin, &symbols), "<r><b/><c/></r>");
    }

    #[test]
    fn delete_then_insert_is_identity() {
        let (mut bin, mut symbols) = setup("<r><a/><b><y/></b><c/></r>");
        let before = as_xml(&bin, &symbols);
        let b = bin
            .preorder()
            .into_iter()
            .find(|&n| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "b"))
            .unwrap();
        // c is b's next sibling in the binary tree.
        let c = bin.children(b)[1];
        delete_subtree(&mut bin, &symbols, b).unwrap();
        // After deletion the c node sits where b was; insert <b><y/></b> before it.
        let frag = parse_xml("<b><y/></b>").unwrap();
        insert_before(&mut bin, &mut symbols, c, &frag).unwrap();
        assert_eq!(as_xml(&bin, &symbols), before);
    }

    #[test]
    fn apply_update_resolves_preorder_targets() {
        let (mut bin, mut symbols) = setup("<r><a/><b/></r>");
        // Preorder: r(0), a(1), #(2), b(3), ...
        let op = UpdateOp::Rename {
            target: 1,
            label: "q".to_string(),
        };
        apply_update(&mut bin, &mut symbols, &op).unwrap();
        assert_eq!(as_xml(&bin, &symbols), "<r><q/><b/></r>");
        assert!(apply_update(
            &mut bin,
            &mut symbols,
            &UpdateOp::Delete { target: 999 }
        )
        .is_err());
    }
}
