//! Wire encoding of trees and update operations for the durable store.
//!
//! The write-ahead log (`core::wal`) persists [`UpdateOp`] batches and
//! [`XmlTree`] fragments as record payloads. This module is their byte
//! format: LEB128 varints throughout, trees written in preorder as
//! `(label, child count)` pairs so the shape is reconstructed from the
//! stream alone, and operations tagged with one byte.
//!
//! ```text
//! tree:   node count (varint), then per node in preorder:
//!           label length (varint), label bytes (UTF-8), child count (varint)
//! op:     tag 0 = Rename       + target (varint) + label (varint len + bytes)
//!         tag 1 = InsertBefore + target (varint) + tree
//!         tag 2 = Delete       + target (varint)
//! batch:  op count (varint), then each op
//! ```
//!
//! Framing (length prefix, CRC, versioning) is the log's job, not this
//! module's: these encoders produce raw payload bytes. Decoding is
//! nevertheless hardened the same way as `sltgrammar::serialize`: every
//! count is bounded by the bytes actually remaining before it can size an
//! allocation, so corrupt input yields [`XmlError::Decode`], never a panic
//! or an OOM-sized reservation.

use crate::error::{Result, XmlError};
use crate::tree::XmlTree;
use crate::updates::UpdateOp;

/// Appends a LEB128 varint to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends the wire encoding of a tree to `out`.
pub fn write_tree(out: &mut Vec<u8>, tree: &XmlTree) {
    let preorder = tree.preorder();
    write_varint(out, preorder.len() as u64);
    for &node in &preorder {
        write_string(out, tree.label(node));
        write_varint(out, tree.children(node).len() as u64);
    }
}

/// Appends the wire encoding of a single update operation to `out`.
pub fn write_op(out: &mut Vec<u8>, op: &UpdateOp) {
    match op {
        UpdateOp::Rename { target, label } => {
            out.push(0);
            write_varint(out, *target as u64);
            write_string(out, label);
        }
        UpdateOp::InsertBefore { target, fragment } => {
            out.push(1);
            write_varint(out, *target as u64);
            write_tree(out, fragment);
        }
        UpdateOp::Delete { target } => {
            out.push(2);
            write_varint(out, *target as u64);
        }
    }
}

/// Appends the wire encoding of an operation batch (count-prefixed) to `out`.
pub fn write_ops(out: &mut Vec<u8>, ops: &[UpdateOp]) {
    write_varint(out, ops.len() as u64);
    for op in ops {
        write_op(out, op);
    }
}

/// Cursor over wire-encoded bytes. Exposes the primitive readers so callers
/// (the WAL record decoder) can interleave their own fields with trees and
/// operations in one payload.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.data.len()
    }

    fn error(&self, detail: &str) -> XmlError {
        XmlError::Decode {
            offset: self.pos,
            detail: detail.to_string(),
        }
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 63 && byte > 1 {
                return Err(self.error("varint overflows 64 bits"));
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let len = self.varint()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.error("label is not valid UTF-8"))
    }

    /// Reads a count varint bounded by the bytes remaining: each counted
    /// element occupies at least `min_bytes` of input, so a larger count is
    /// corrupt and must not size an allocation.
    fn count(&mut self, min_bytes: usize, what: &str) -> Result<usize> {
        let n = self.varint()? as usize;
        if n > self.remaining() / min_bytes {
            return Err(self.error(&format!(
                "{what} count {n} exceeds what the remaining input could hold"
            )));
        }
        Ok(n)
    }

    /// Reads a wire-encoded tree.
    pub fn tree(&mut self) -> Result<XmlTree> {
        // Each node is at least 2 bytes (empty label length + child count).
        let node_count = self.count(2, "tree node")?;
        if node_count == 0 {
            return Err(self.error("tree must have at least a root node"));
        }
        let root_label = self.string()?;
        let root_children = self.varint()? as usize;
        let mut tree = XmlTree::new(&root_label);
        let mut read = 1usize;
        // Stack of (node, children still expected); children attach in
        // preorder under the innermost node that still expects some.
        let mut stack = vec![(tree.root(), root_children)];
        while let Some(top) = stack.last_mut() {
            if top.1 == 0 {
                stack.pop();
                continue;
            }
            top.1 -= 1;
            let parent = top.0;
            if read == node_count {
                return Err(self.error("tree structure claims more nodes than its count"));
            }
            let label = self.string()?;
            let children = self.varint()? as usize;
            let node = tree.add_child(parent, &label);
            read += 1;
            stack.push((node, children));
        }
        if read != node_count {
            return Err(self.error("tree structure ended before its node count was reached"));
        }
        Ok(tree)
    }

    /// Reads a wire-encoded update operation.
    pub fn op(&mut self) -> Result<UpdateOp> {
        match self.byte()? {
            0 => Ok(UpdateOp::Rename {
                target: self.varint()? as usize,
                label: self.string()?,
            }),
            1 => Ok(UpdateOp::InsertBefore {
                target: self.varint()? as usize,
                fragment: self.tree()?,
            }),
            2 => Ok(UpdateOp::Delete {
                target: self.varint()? as usize,
            }),
            other => Err(self.error(&format!("unknown update-op tag {other}"))),
        }
    }

    /// Reads a count-prefixed operation batch.
    pub fn ops(&mut self) -> Result<Vec<UpdateOp>> {
        // The smallest op (Delete) is 2 bytes: tag + target varint.
        let n = self.count(2, "update-op")?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(self.op()?);
        }
        Ok(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xml;

    fn sample_tree() -> XmlTree {
        parse_xml("<library><book><chapter/><chapter/></book><book/><dvd/></library>").unwrap()
    }

    fn sample_ops() -> Vec<UpdateOp> {
        vec![
            UpdateOp::Rename {
                target: 3,
                label: "section".into(),
            },
            UpdateOp::InsertBefore {
                target: 5,
                fragment: sample_tree(),
            },
            UpdateOp::Delete { target: 1 },
        ]
    }

    #[test]
    fn tree_roundtrips() {
        let tree = sample_tree();
        let mut bytes = Vec::new();
        write_tree(&mut bytes, &tree);
        let mut r = WireReader::new(&bytes);
        let back = r.tree().unwrap();
        assert!(r.finished());
        assert_eq!(tree.to_xml(), back.to_xml());
    }

    #[test]
    fn single_node_tree_roundtrips() {
        let tree = XmlTree::new("only");
        let mut bytes = Vec::new();
        write_tree(&mut bytes, &tree);
        let back = WireReader::new(&bytes).tree().unwrap();
        assert_eq!(tree.to_xml(), back.to_xml());
    }

    #[test]
    fn op_batch_roundtrips() {
        let ops = sample_ops();
        let mut bytes = Vec::new();
        write_ops(&mut bytes, &ops);
        let mut r = WireReader::new(&bytes);
        let back = r.ops().unwrap();
        assert!(r.finished());
        assert_eq!(back.len(), ops.len());
        for (a, b) in ops.iter().zip(&back) {
            assert_eq!(a.target(), b.target());
            match (a, b) {
                (UpdateOp::Rename { label: x, .. }, UpdateOp::Rename { label: y, .. }) => {
                    assert_eq!(x, y)
                }
                (
                    UpdateOp::InsertBefore { fragment: x, .. },
                    UpdateOp::InsertBefore { fragment: y, .. },
                ) => assert_eq!(x.to_xml(), y.to_xml()),
                (UpdateOp::Delete { .. }, UpdateOp::Delete { .. }) => {}
                other => panic!("op kind changed in roundtrip: {other:?}"),
            }
        }
    }

    #[test]
    fn truncations_error_and_never_panic() {
        let mut bytes = Vec::new();
        write_ops(&mut bytes, &sample_ops());
        for len in 0..bytes.len() {
            assert!(
                WireReader::new(&bytes[..len]).ops().is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn corrupt_counts_cannot_cause_huge_allocations() {
        // A batch claiming ~2^60 ops with a 3-byte payload must be rejected
        // by the remaining-bytes bound before any allocation happens.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 1u64 << 60);
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(matches!(
            WireReader::new(&bytes).ops(),
            Err(XmlError::Decode { .. })
        ));
        // Same for a tree node count.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 1u64 << 60);
        assert!(WireReader::new(&bytes).tree().is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // A deterministic pseudo-random byte fuzz over the op decoder.
        let mut state = 0x1234_5678_9abc_def0u64;
        for round in 0..200 {
            let len = (round % 37) as usize;
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bytes.push((state >> 33) as u8);
            }
            let _ = WireReader::new(&bytes).ops();
            let _ = WireReader::new(&bytes).tree();
            let _ = WireReader::new(&bytes).op();
        }
    }

    #[test]
    fn tree_with_mismatched_structure_is_rejected() {
        let tree = sample_tree();
        let mut bytes = Vec::new();
        write_tree(&mut bytes, &tree);
        // Claim one more node than the structure provides.
        let mut bigger = Vec::new();
        write_varint(&mut bigger, tree.node_count() as u64 + 1);
        bigger.extend_from_slice(&bytes[1..]); // node_count fits one byte here
        assert!(WireReader::new(&bigger).tree().is_err());
    }
}
