//! Error types for XML structure handling.

use std::fmt;

/// Errors produced while parsing XML or manipulating trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed XML input.
    Parse {
        /// Byte offset where the problem was detected.
        offset: usize,
        /// Description of the problem.
        detail: String,
    },
    /// A closing tag did not match the open element.
    TagMismatch {
        /// Name of the currently open element.
        open: String,
        /// Name found in the closing tag.
        close: String,
    },
    /// The document contains no root element.
    Empty,
    /// An update operation targeted an invalid node (e.g. renaming a null node).
    InvalidUpdate {
        /// Description of the problem.
        detail: String,
    },
    /// The binary wire encoding of a tree or update operation could not be
    /// decoded (see [`crate::wire`]).
    Decode {
        /// Byte offset at which decoding failed.
        offset: usize,
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { offset, detail } => {
                write!(f, "XML parse error at byte {offset}: {detail}")
            }
            XmlError::TagMismatch { open, close } => {
                write!(f, "closing tag </{close}> does not match open element <{open}>")
            }
            XmlError::Empty => write!(f, "document contains no root element"),
            XmlError::InvalidUpdate { detail } => write!(f, "invalid update: {detail}"),
            XmlError::Decode { offset, detail } => {
                write!(f, "wire decode error at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = XmlError::TagMismatch {
            open: "a".into(),
            close: "b".into(),
        };
        assert!(e.to_string().contains("</b>"));
        let e = XmlError::Parse {
            offset: 12,
            detail: "oops".into(),
        };
        assert!(e.to_string().contains("12"));
    }
}
