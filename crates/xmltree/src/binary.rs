//! Binary first-child/next-sibling encoding of XML trees.
//!
//! Like TreeRePair, the compression algorithms work on a *binary* view of the
//! unranked document tree: every element node becomes a rank-2 terminal whose
//! first child encodes the element's first child and whose second child encodes
//! its next sibling; missing children/siblings are represented by the null
//! symbol `#` (the paper's `⊥`). See Figure 1 of the paper.

use sltgrammar::fingerprint::{label_code, Fingerprint, Segment};
use sltgrammar::{Grammar, NodeId, NodeKind, RhsTree, SymbolTable};

use crate::error::{Result, XmlError};
use crate::tree::{XmlNodeId, XmlTree};

/// Converts an unranked XML tree into its binary encoding.
///
/// All element labels are interned into `symbols` with rank 2; the null symbol
/// `#` is interned with rank 0.
pub fn to_binary(xml: &XmlTree, symbols: &mut SymbolTable) -> Result<RhsTree> {
    let null = symbols.null();
    let mut tree = RhsTree::singleton(NodeKind::Term(null));

    let preorder = xml.preorder();
    let mut bin_of: std::collections::HashMap<XmlNodeId, NodeId> =
        std::collections::HashMap::with_capacity(preorder.len());

    // Reverse document order: first child and next sibling of a node come after
    // it in preorder, so both binary encodings already exist when we need them.
    for &n in preorder.iter().rev() {
        let label = xml.label(n);
        let term = symbols
            .intern(label, 2)
            .map_err(|_| XmlError::InvalidUpdate {
                detail: format!("label `{label}` clashes with a reserved symbol"),
            })?;
        let first_child = xml
            .children(n)
            .first()
            .map(|c| bin_of[c])
            .unwrap_or_else(|| tree.add_leaf(NodeKind::Term(null)));
        let next_sibling = next_sibling_of(xml, n)
            .map(|s| bin_of[&s])
            .unwrap_or_else(|| tree.add_leaf(NodeKind::Term(null)));
        let node = tree.add_node(NodeKind::Term(term), vec![first_child, next_sibling]);
        bin_of.insert(n, node);
    }
    tree.set_root(bin_of[&xml.root()]);
    tree.compact();
    Ok(tree)
}

fn next_sibling_of(xml: &XmlTree, n: XmlNodeId) -> Option<XmlNodeId> {
    let parent = xml.parent(n)?;
    let siblings = xml.children(parent);
    let idx = siblings.iter().position(|&c| c == n)?;
    siblings.get(idx + 1).copied()
}

/// Converts a binary encoding (terminals only) back into an unranked XML tree.
pub fn from_binary(bin: &RhsTree, symbols: &SymbolTable) -> Result<XmlTree> {
    let root = bin.root();
    let root_term = match bin.kind(root) {
        NodeKind::Term(t) if !symbols.is_null(t) => t,
        _ => {
            return Err(XmlError::InvalidUpdate {
                detail: "binary tree root must be a non-null terminal".to_string(),
            })
        }
    };
    let mut xml = XmlTree::new(symbols.name(root_term));
    // Stack of (binary node, XML parent to append to). The root's children are
    // seeded below; its next-sibling slot must be null for a single-rooted document.
    let mut stack: Vec<(NodeId, XmlNodeId)> = Vec::new();
    let root_children = bin.children(root);
    if root_children.len() != 2 {
        return Err(XmlError::InvalidUpdate {
            detail: "binary element node must have exactly two children".to_string(),
        });
    }
    stack.push((root_children[0], xml.root()));

    while let Some((node, parent)) = stack.pop() {
        match bin.kind(node) {
            NodeKind::Term(t) if symbols.is_null(t) => continue,
            NodeKind::Term(t) => {
                let children = bin.children(node);
                if children.len() != 2 {
                    return Err(XmlError::InvalidUpdate {
                        detail: format!(
                            "element `{}` in the binary tree must have exactly two children",
                            symbols.name(t)
                        ),
                    });
                }
                let new_node = xml.add_child(parent, symbols.name(t));
                // Process the next sibling after the whole first-child subtree
                // so children are appended in document order.
                stack.push((children[1], parent));
                stack.push((children[0], new_node));
            }
            _ => {
                return Err(XmlError::InvalidUpdate {
                    detail: "binary tree contains nonterminals or parameters".to_string(),
                })
            }
        }
    }
    Ok(xml)
}

/// Checks that `bin` is a well-formed binary XML encoding: terminals only, every
/// non-null node has exactly two children, every null node is a leaf.
pub fn is_binary_xml(bin: &RhsTree, symbols: &SymbolTable) -> bool {
    for n in bin.preorder() {
        match bin.kind(n) {
            NodeKind::Term(t) if symbols.is_null(t) => {
                if !bin.children(n).is_empty() {
                    return false;
                }
            }
            NodeKind::Term(_) => {
                if bin.children(n).len() != 2 {
                    return false;
                }
            }
            _ => return false,
        }
    }
    match bin.kind(bin.root()) {
        NodeKind::Term(t) => !symbols.is_null(t),
        _ => false,
    }
}

/// Wraps a binary tree in a trivial grammar whose start rule derives exactly
/// that tree — the input form consumed by GrammarRePair and TreeRePair.
pub fn binary_to_grammar(symbols: SymbolTable, bin: RhsTree) -> Grammar {
    Grammar::new(symbols, bin)
}

/// Preorder fingerprint of a plain tree (terminals only), comparable with
/// [`sltgrammar::fingerprint::fingerprint`] of a grammar deriving the same tree.
pub fn tree_fingerprint(bin: &RhsTree, symbols: &SymbolTable) -> Fingerprint {
    let mut seg = Segment::empty();
    for n in bin.preorder() {
        match bin.kind(n) {
            NodeKind::Term(t) => seg.push_label(label_code(symbols.name(t))),
            other => panic!("tree_fingerprint expects terminals only, found {other:?}"),
        }
    }
    Fingerprint {
        size: seg.len,
        hash: seg.hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_xml;
    use sltgrammar::fingerprint::fingerprint as grammar_fingerprint;
    use sltgrammar::text::print_grammar;

    fn figure1() -> XmlTree {
        parse_xml("<f><a><a/><a/></a><a><a/><a/></a></f>").unwrap()
    }

    #[test]
    fn binary_encoding_uses_first_child_next_sibling_with_nulls() {
        let xml = figure1();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        // 7 elements + 8 null leaves = 15 binary nodes (cf. Figure 1 of the paper).
        assert_eq!(bin.node_count(), 15);
        assert!(is_binary_xml(&bin, &symbols));
        // Textual shape check via the trivial grammar printer.
        let g = binary_to_grammar(symbols, bin);
        let printed = print_grammar(&g);
        assert_eq!(
            printed.trim(),
            "S -> f(a(a(#,a(#,#)),a(a(#,a(#,#)),#)),#)"
        );
    }

    #[test]
    fn binary_roundtrip_preserves_structure() {
        let xml = parse_xml("<r><a><b/><c><d/></c></a><e/><a/></r>").unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let back = from_binary(&bin, &symbols).unwrap();
        assert_eq!(back.to_xml(), xml.to_xml());
        // Node counts: binary has 2n+1 nodes for n elements.
        assert_eq!(bin.node_count(), 2 * xml.node_count() + 1);
    }

    #[test]
    fn fingerprints_agree_between_tree_and_trivial_grammar() {
        let xml = figure1();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let fp_tree = tree_fingerprint(&bin, &symbols);
        let g = binary_to_grammar(symbols, bin);
        assert_eq!(fp_tree, grammar_fingerprint(&g));
    }

    #[test]
    fn from_binary_rejects_malformed_trees() {
        let mut symbols = SymbolTable::new();
        let null = symbols.null();
        let bad = RhsTree::singleton(NodeKind::Term(null));
        assert!(from_binary(&bad, &symbols).is_err());
    }

    #[test]
    fn wide_and_deep_documents_convert_iteratively() {
        // 20 000 siblings produce a binary right-spine of depth 20 000; this must
        // not overflow the stack.
        let mut xml = XmlTree::new("root");
        let root = xml.root();
        for _ in 0..20_000 {
            xml.add_child(root, "item");
        }
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        assert_eq!(bin.node_count(), 2 * 20_001 + 1);
        let back = from_binary(&bin, &symbols).unwrap();
        assert_eq!(back.node_count(), xml.node_count());
    }
}
