//! # xmltree — the XML structure model
//!
//! Element-only XML documents for the reproduction of *Incremental Updates on
//! Compressed XML* (ICDE 2016):
//!
//! * [`tree::XmlTree`] — unranked ordered labeled trees (the document structure),
//! * [`parse::parse_xml`] — a minimal structure-only XML parser,
//! * [`binary`] — the first-child/next-sibling binary encoding with `#`/`⊥`
//!   null leaves used by TreeRePair and GrammarRePair, plus fingerprints and the
//!   trivial-grammar wrapper,
//! * [`updates`] — the reference (uncompressed) semantics of the paper's three
//!   atomic update operations; the grammar-based updates are tested against it.
//!
//! ## Example
//!
//! ```
//! use xmltree::parse::parse_xml;
//! use xmltree::binary::{to_binary, binary_to_grammar};
//! use sltgrammar::SymbolTable;
//!
//! let doc = parse_xml("<library><book><chapter/></book><book/></library>").unwrap();
//! assert_eq!(doc.edge_count(), 3);
//!
//! let mut symbols = SymbolTable::new();
//! let bin = to_binary(&doc, &mut symbols).unwrap();
//! let grammar = binary_to_grammar(symbols, bin);   // trivial start-rule grammar
//! assert_eq!(grammar.rule_count(), 1);
//! ```

#![warn(missing_docs)]

pub mod binary;
pub mod error;
pub mod parse;
pub mod tree;
pub mod updates;
pub mod wire;

pub use error::{Result, XmlError};
pub use tree::{XmlNodeId, XmlTree};
pub use updates::UpdateOp;
