//! Minimal element-only XML parser.
//!
//! The evaluation of the paper uses *structure-only* documents: all text,
//! attributes, comments and processing instructions are stripped. This parser
//! accepts general XML input and keeps only the element structure, which is
//! exactly what the compression pipeline consumes.

use crate::error::{Result, XmlError};
use crate::tree::{XmlNodeId, XmlTree};

/// Parses the element structure of an XML document.
///
/// Text content, attributes, comments, CDATA, processing instructions and the
/// XML declaration are skipped. Returns an error for unbalanced or malformed
/// tags or if the document has no root element.
pub fn parse_xml(input: &str) -> Result<XmlTree> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut tree: Option<XmlTree> = None;
    let mut stack: Vec<XmlNodeId> = Vec::new();
    let mut finished = false;

    while pos < bytes.len() {
        // Skip everything up to the next tag (text content).
        match input[pos..].find('<') {
            Some(rel) => pos += rel,
            None => break,
        }
        let rest = &input[pos..];
        if rest.starts_with("<!--") {
            let end = rest.find("-->").ok_or(XmlError::Parse {
                offset: pos,
                detail: "unterminated comment".to_string(),
            })?;
            pos += end + 3;
            continue;
        }
        if rest.starts_with("<![CDATA[") {
            let end = rest.find("]]>").ok_or(XmlError::Parse {
                offset: pos,
                detail: "unterminated CDATA section".to_string(),
            })?;
            pos += end + 3;
            continue;
        }
        if rest.starts_with("<?") {
            let end = rest.find("?>").ok_or(XmlError::Parse {
                offset: pos,
                detail: "unterminated processing instruction".to_string(),
            })?;
            pos += end + 2;
            continue;
        }
        if rest.starts_with("<!") {
            let end = rest.find('>').ok_or(XmlError::Parse {
                offset: pos,
                detail: "unterminated declaration".to_string(),
            })?;
            pos += end + 1;
            continue;
        }
        let close = rest.find('>').ok_or(XmlError::Parse {
            offset: pos,
            detail: "unterminated tag".to_string(),
        })?;
        let tag = &rest[1..close];
        pos += close + 1;

        if let Some(name_part) = tag.strip_prefix('/') {
            // Closing tag.
            let name = name_part.trim();
            let open = stack.pop().ok_or(XmlError::Parse {
                offset: pos,
                detail: format!("closing tag </{name}> without open element"),
            })?;
            let t = tree.as_ref().expect("tree exists when stack non-empty");
            if t.label(open) != name {
                return Err(XmlError::TagMismatch {
                    open: t.label(open).to_string(),
                    close: name.to_string(),
                });
            }
            if stack.is_empty() {
                finished = true;
            }
            continue;
        }

        let self_closing = tag.ends_with('/');
        let body = if self_closing { &tag[..tag.len() - 1] } else { tag };
        let name = body
            .split_whitespace()
            .next()
            .ok_or(XmlError::Parse {
                offset: pos,
                detail: "empty tag name".to_string(),
            })?
            .to_string();
        if name.is_empty() {
            return Err(XmlError::Parse {
                offset: pos,
                detail: "empty tag name".to_string(),
            });
        }

        if finished {
            return Err(XmlError::Parse {
                offset: pos,
                detail: "content after the root element".to_string(),
            });
        }

        let node = match (&mut tree, stack.last()) {
            (None, _) => {
                tree = Some(XmlTree::new(&name));
                tree.as_ref().expect("just created").root()
            }
            (Some(t), Some(&parent)) => t.add_child(parent, &name),
            (Some(_), None) => {
                return Err(XmlError::Parse {
                    offset: pos,
                    detail: "second root element".to_string(),
                })
            }
        };
        if !self_closing {
            stack.push(node);
        } else if stack.is_empty() {
            finished = true;
        }
    }

    if !stack.is_empty() {
        let t = tree.as_ref().expect("tree exists when stack non-empty");
        return Err(XmlError::Parse {
            offset: pos,
            detail: format!("unclosed element <{}>", t.label(*stack.last().unwrap())),
        });
    }
    tree.ok_or(XmlError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let t = parse_xml("<f><a><a/><a/></a><a><a/><a/></a></f>").unwrap();
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.label(t.root()), "f");
    }

    #[test]
    fn skips_text_attributes_comments_and_pis() {
        let doc = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <library kind="public">
              <book id="1">Some <i>text</i> here</book>
              <![CDATA[ <ignored/> ]]>
              <book/>
            </library>"#;
        let t = parse_xml(doc).unwrap();
        let labels: Vec<_> = t.preorder().iter().map(|&n| t.label(n).to_string()).collect();
        assert_eq!(labels, vec!["library", "book", "i", "book"]);
    }

    #[test]
    fn roundtrips_through_serialization() {
        let src = "<a><b><c/></b><b/><d><e/><e/></d></a>";
        let t = parse_xml(src).unwrap();
        assert_eq!(t.to_xml(), src);
        let t2 = parse_xml(&t.to_xml()).unwrap();
        assert_eq!(t2.node_count(), t.node_count());
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        assert!(matches!(
            parse_xml("<a><b></a></b>"),
            Err(XmlError::TagMismatch { .. })
        ));
    }

    #[test]
    fn unclosed_elements_are_rejected() {
        assert!(matches!(parse_xml("<a><b></b>"), Err(XmlError::Parse { .. })));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(parse_xml("   "), Err(XmlError::Empty)));
    }

    #[test]
    fn second_root_is_rejected() {
        assert!(matches!(parse_xml("<a/><b/>"), Err(XmlError::Parse { .. })));
    }
}
