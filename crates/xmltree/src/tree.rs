//! Unranked ordered labeled trees — the element structure of an XML document.

/// Identifier of a node in an [`XmlTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XmlNodeId(pub u32);

impl XmlNodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct XmlNode {
    label: String,
    parent: Option<XmlNodeId>,
    children: Vec<XmlNodeId>,
}

/// An unranked ordered labeled tree: the structural skeleton of an XML document
/// (element nodes only — no text, attributes, comments or processing
/// instructions, matching the paper's experimental setup).
#[derive(Debug, Clone)]
pub struct XmlTree {
    nodes: Vec<XmlNode>,
    root: XmlNodeId,
}

impl XmlTree {
    /// Creates a tree consisting of a single root element.
    pub fn new(root_label: &str) -> Self {
        XmlTree {
            nodes: vec![XmlNode {
                label: root_label.to_string(),
                parent: None,
                children: Vec::new(),
            }],
            root: XmlNodeId(0),
        }
    }

    /// The root element.
    pub fn root(&self) -> XmlNodeId {
        self.root
    }

    /// Appends a child element labelled `label` under `parent` and returns it.
    pub fn add_child(&mut self, parent: XmlNodeId, label: &str) -> XmlNodeId {
        let id = XmlNodeId(self.nodes.len() as u32);
        self.nodes.push(XmlNode {
            label: label.to_string(),
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Label of a node.
    pub fn label(&self, id: XmlNodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// Overwrites the label of a node.
    pub fn set_label(&mut self, id: XmlNodeId, label: &str) {
        self.nodes[id.index()].label = label.to_string();
    }

    /// Children of a node, in document order.
    pub fn children(&self, id: XmlNodeId) -> &[XmlNodeId] {
        &self.nodes[id.index()].children
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: XmlNodeId) -> Option<XmlNodeId> {
        self.nodes[id.index()].parent
    }

    /// Number of element nodes.
    pub fn node_count(&self) -> usize {
        self.preorder().len()
    }

    /// Number of edges (`node_count − 1`) — the `#edges` column of Table III.
    pub fn edge_count(&self) -> usize {
        self.node_count().saturating_sub(1)
    }

    /// Depth of the tree: number of edges on the longest root-to-leaf path —
    /// the `dp` column of Table III.
    pub fn depth(&self) -> usize {
        let mut max_depth = 0;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((n, d)) = stack.pop() {
            max_depth = max_depth.max(d);
            for &c in self.children(n) {
                stack.push((c, d + 1));
            }
        }
        max_depth
    }

    /// Preorder (document order) traversal.
    pub fn preorder(&self) -> Vec<XmlNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Serializes the element structure back to XML text (no declaration, no
    /// whitespace between tags).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        // Iterative serialization: emit open tag on entry, close tag after children.
        enum W {
            Open(XmlNodeId),
            Close(XmlNodeId),
        }
        let mut stack = vec![W::Open(self.root)];
        while let Some(w) = stack.pop() {
            match w {
                W::Open(n) => {
                    let label = self.label(n);
                    if self.children(n).is_empty() {
                        out.push('<');
                        out.push_str(label);
                        out.push_str("/>");
                    } else {
                        out.push('<');
                        out.push_str(label);
                        out.push('>');
                        stack.push(W::Close(n));
                        for &c in self.children(n).iter().rev() {
                            stack.push(W::Open(c));
                        }
                    }
                }
                W::Close(n) => {
                    out.push_str("</");
                    out.push_str(self.label(n));
                    out.push('>');
                }
            }
        }
        out
    }

    /// Collects the distinct element labels in document order of first use.
    pub fn labels(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for n in self.preorder() {
            let l = self.label(n);
            if seen.insert(l.to_string()) {
                out.push(l.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlTree {
        // <f><a><a/><a/></a><a><a/><a/></a></f> — the unranked tree of Figure 1.
        let mut t = XmlTree::new("f");
        let root = t.root();
        let a1 = t.add_child(root, "a");
        let a2 = t.add_child(root, "a");
        t.add_child(a1, "a");
        t.add_child(a1, "a");
        t.add_child(a2, "a");
        t.add_child(a2, "a");
        t
    }

    #[test]
    fn counts_and_depth() {
        let t = sample();
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn preorder_is_document_order() {
        let t = sample();
        let labels: Vec<_> = t.preorder().iter().map(|&n| t.label(n).to_string()).collect();
        assert_eq!(labels, vec!["f", "a", "a", "a", "a", "a", "a"]);
    }

    #[test]
    fn serialization_produces_wellformed_xml() {
        let t = sample();
        let xml = t.to_xml();
        assert_eq!(xml, "<f><a><a/><a/></a><a><a/><a/></a></f>");
    }

    #[test]
    fn labels_are_deduplicated() {
        let t = sample();
        assert_eq!(t.labels(), vec!["f".to_string(), "a".to_string()]);
    }

    #[test]
    fn set_label_renames() {
        let mut t = sample();
        let first_child = t.children(t.root())[0];
        t.set_label(first_child, "b");
        assert_eq!(t.label(first_child), "b");
        assert!(t.to_xml().contains("<b>"));
    }
}
