//! Write-ahead op log for the durable store: framed, checksummed, versioned
//! records over an injectable storage backend, with leader-based group
//! commit.
//!
//! # Commit protocol
//!
//! Every mutation of a [`crate::durable::DurableStore`] becomes exactly one
//! log record, assigned a **log sequence number** (LSN, 1-based, strictly
//! sequential) at enqueue time. The durability discipline is
//! *fsync-before-apply*: a record is appended to the log file and fsync'd
//! **before** the corresponding in-memory change is made, so any state a
//! reader could ever observe is reconstructible by replay. A crash between
//! fsync and apply merely means recovery replays a record whose effect was
//! never visible — replay is idempotent against that because recovery starts
//! from the checkpoint, not from the crashed process's memory.
//!
//! **Group commit.** Concurrent committers enqueue their encoded frames
//! under the log mutex and then elect a leader: the first committer finding
//! no leader active drains *every* pending frame (its own and everyone
//! else's enqueued meanwhile) with one `append` + one `fsync`, then wakes
//! the waiters whose LSNs the flush covered. Writers to distinct documents
//! therefore share fsyncs under load instead of paying one each —
//! [`Wal::sync_count`] exposes the actual fsync count so tests can pin the
//! coalescing. A failed append or fsync poisons the log (the record cannot
//! be half-trusted); every later commit fails with the same storage error.
//!
//! # Frame format
//!
//! ```text
//! frame:   length u32-LE | crc32 u32-LE (of payload) | payload
//! payload: version u8 | lsn varint | kind u8 | body
//! ```
//!
//! Bodies use the `xmltree::wire` encoding for trees and update operations.
//! Record kinds cover the store's whole mutation surface: document loads
//! (as the XML fragment, or as encoded grammar bytes), removal, per-document
//! update batches, and the multi-document batch (one record per
//! `apply_batch_many` call — built-in group commit).
//!
//! # Torn-tail rule
//!
//! [`read_log`] distinguishes two failure shapes. An **incomplete final
//! frame** — the file ends before the frame's declared length — is exactly
//! what a crash mid-append leaves behind; it is reported as a torn tail and
//! recovery truncates it silently (the record never committed: its fsync
//! cannot have returned). A **complete frame that fails its CRC, version,
//! or LSN-sequence check** is genuine corruption of already-durable data and
//! yields the typed [`RepairError::WalCorrupt`] instead — silently dropping
//! a record whose fsync succeeded would break the durability contract.
//!
//! # Checkpoint atomicity
//!
//! Checkpoints are written through [`StorageFs::write_atomic`] (temp file,
//! fsync, rename, parent-directory fsync): the checkpoint file is always
//! either the complete old one or the complete new one, and the rename
//! itself is durable — a directory entry only committed to the directory's
//! own metadata is lost by a power cut, so the parent is fsync'd before
//! `write_atomic` returns. The log is truncated only *after* that directory
//! fsync succeeds; a crash in between is harmless because replay skips
//! records with `lsn <= checkpoint_lsn` — truncation is an optimization,
//! not a correctness step. The same directory-durability rule covers the
//! log file's creation: [`DiskFs::append`] fsyncs the parent when it
//! creates the file, before the first commit can report durability.
//!
//! Checkpoints are now written *fuzzily*: writers keep committing while the
//! checkpoint serializes, so the log may hold records the image already
//! folds in. [`Wal::truncate_if_at`] therefore truncates only when the log
//! is provably fully covered (durable LSN still equals the checkpoint's
//! base LSN and nothing is in flight); otherwise the log survives until the
//! next quiescent checkpoint and replay's per-document LSN filter skips the
//! folded records.
//!
//! # Checkpoint-v3 on-disk layout
//!
//! Version 3 of the checkpoint file (written by
//! [`crate::durable::DurableStore::checkpoint`]) is a paged, offset-indexed
//! image designed for O(open) cold starts: `open()` validates and adopts
//! the header, slab, symbol-table image and extent table, but does **not**
//! decode any grammar — per-document extents are handed to the store as
//! raw bytes and decoded lazily on first touch.
//!
//! ```text
//! magic "SLCK" | version u8 = 3
//! header (fixed width, 72 bytes + CRC):
//!   base_lsn u64-LE                 every record with lsn <= base_lsn is folded in
//!   slab_off u64    slab_len u64    \
//!   symtab_off u64  symtab_len u64   } absolute byte extents of the sections
//!   extents_off u64 extents_len u64  }
//!   docs_off u64    docs_len u64    /
//!   crc32 u32-LE of the 9 fields above
//! slab section:    crc32 u32-LE | slot generations, free list, live list (varints)
//! symtab section:  crc32 u32-LE | sealed segment count, then per segment:
//!                    symbol count, per symbol (rank varint, name len varint, name)
//!                  — the master symbol table's segment runs, boundaries intact,
//!                    adopted wholesale on open (no per-symbol re-intern)
//! extents section: crc32 u32-LE | doc count, then per doc:
//!                    slot varint, generation varint, doc_lsn varint,
//!                    payload offset varint (relative to docs_off),
//!                    payload length varint, payload crc32 u32-LE
//! docs section:    concatenated per-doc payloads (sltgrammar's
//!                  shared-alphabet encoding; no framing of their own)
//! ```
//!
//! Integrity is layered: the header CRC covers the section offsets (a
//! corrupt offset cannot cause an out-of-bounds or OOM-sized read — every
//! extent is also bounds-checked against the file), each section carries
//! its own CRC, and each document payload carries a CRC **in the extent
//! table** that is verified only when the document is first materialized —
//! the deliberate trade-off that keeps open O(1) in fleet size: bit rot in
//! a cold document surfaces as a typed [`RepairError::Storage`] on first
//! touch rather than at open. `doc_lsn` records the durable LSN at the
//! moment that document was serialized; replay applies a per-document
//! record only when its LSN exceeds that document's `doc_lsn` (fuzzy
//! checkpoints fold later records for early-serialized documents). Version
//! 1 files (eager, monolithic) are still decoded by the shim in
//! `core::durable`.

use std::sync::{Arc, Condvar, Mutex};

use sltgrammar::crc32::crc32;
use xmltree::updates::UpdateOp;
use xmltree::wire::{self, WireReader};
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::store::DocId;

/// Version byte of the record payload format.
pub const WAL_VERSION: u8 = 1;

fn storage_err(op: &str, path: &str, e: std::io::Error) -> RepairError {
    RepairError::Storage {
        detail: format!("{op} `{path}`: {e}"),
    }
}

/// Fsyncs the parent directory of `path`: file creation and rename are
/// directory mutations, durable only once the directory itself is synced.
fn sync_parent_dir(path: &str) -> Result<()> {
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    std::fs::File::open(parent)
        .and_then(|d| d.sync_all())
        .map_err(|e| storage_err("sync parent directory of", path, e))
}

/// The storage operations the durable layer needs, as an injectable trait:
/// [`DiskFs`] is the real implementation, `testing::FailpointFs` the
/// fault-injecting in-memory one the kill-and-recover suite drives.
pub trait StorageFs: Send + Sync {
    /// Appends `bytes` to the file at `path`, creating it if missing.
    fn append(&self, path: &str, bytes: &[u8]) -> Result<()>;
    /// Forces the file's content to durable storage (fsync).
    fn sync(&self, path: &str) -> Result<()>;
    /// Reads the whole file; `Ok(None)` when it does not exist.
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>>;
    /// Replaces the file's content atomically and durably (temp file,
    /// fsync, rename, parent-directory fsync): after a crash — including a
    /// power loss — the file holds either the old or the new content, never
    /// a mix.
    fn write_atomic(&self, path: &str, bytes: &[u8]) -> Result<()>;
    /// Truncates the file to `len` bytes.
    fn set_len(&self, path: &str, len: u64) -> Result<()>;
}

/// [`StorageFs`] over the real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskFs;

impl StorageFs for DiskFs {
    fn append(&self, path: &str, bytes: &[u8]) -> Result<()> {
        use std::io::Write;
        let created = !std::path::Path::new(path).exists();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| storage_err("open for append", path, e))?;
        file.write_all(bytes).map_err(|e| storage_err("append to", path, e))?;
        if created {
            // The new directory entry must be durable too, or a power loss
            // after the first commit's fsync could lose the whole file.
            sync_parent_dir(path)?;
        }
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<()> {
        std::fs::File::open(path)
            .and_then(|f| f.sync_all())
            .map_err(|e| storage_err("sync", path, e))
    }

    fn read(&self, path: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(storage_err("read", path, e)),
        }
    }

    fn write_atomic(&self, path: &str, bytes: &[u8]) -> Result<()> {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, bytes).map_err(|e| storage_err("write", &tmp, e))?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(|e| storage_err("sync", &tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| storage_err("rename into", path, e))?;
        // The rename is durable only once the directory entry is: fsync the
        // parent before reporting success — callers truncate the log on it.
        sync_parent_dir(path)
    }

    fn set_len(&self, path: &str, len: u64) -> Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|f| f.set_len(len))
            .map_err(|e| storage_err("truncate", path, e))
    }
}

// ----- records -----

/// A record to be committed, borrowing the caller's data (encode side).
#[derive(Debug, Clone, Copy)]
pub enum WalRecord<'a> {
    /// A document load from an XML fragment ([`crate::store::DomStore::load_xml`]).
    LoadXml {
        /// The document, replayed through `load_xml` for bit-identical
        /// compression and alphabet interning.
        tree: &'a XmlTree,
    },
    /// A document load from an already-compressed grammar, carried as its
    /// `sltgrammar::serialize` encoding.
    LoadGrammar {
        /// The encoded grammar bytes.
        bytes: &'a [u8],
    },
    /// A document removal.
    Remove {
        /// The removed document.
        doc: DocId,
    },
    /// One update batch against one document (a single update is a batch of
    /// one).
    ApplyBatch {
        /// The targeted document (possibly already stale — replay reproduces
        /// the original failure in that case).
        doc: DocId,
        /// The operations, in order.
        ops: &'a [UpdateOp],
    },
    /// One multi-document batch (`apply_batch_many`): one record — and
    /// therefore at most one fsync — for the whole fan-out.
    ApplyMany {
        /// The per-document jobs, in job order.
        jobs: &'a [(DocId, Vec<UpdateOp>)],
    },
}

/// A decoded record (owned; the replay side of [`WalRecord`]).
#[derive(Debug, Clone)]
pub enum WalEntry {
    /// See [`WalRecord::LoadXml`].
    LoadXml {
        /// The document to load.
        tree: XmlTree,
    },
    /// See [`WalRecord::LoadGrammar`].
    LoadGrammar {
        /// The encoded grammar bytes.
        bytes: Vec<u8>,
    },
    /// See [`WalRecord::Remove`].
    Remove {
        /// The removed document.
        doc: DocId,
    },
    /// See [`WalRecord::ApplyBatch`].
    ApplyBatch {
        /// The targeted document.
        doc: DocId,
        /// The operations, in order.
        ops: Vec<UpdateOp>,
    },
    /// See [`WalRecord::ApplyMany`].
    ApplyMany {
        /// The per-document jobs, in job order.
        jobs: Vec<(DocId, Vec<UpdateOp>)>,
    },
}

fn write_doc(out: &mut Vec<u8>, doc: DocId) {
    wire::write_varint(out, doc.slot() as u64);
    wire::write_varint(out, doc.generation() as u64);
}

fn read_doc(r: &mut WireReader<'_>) -> std::result::Result<DocId, xmltree::XmlError> {
    let slot = r.varint()? as u32;
    let generation = r.varint()? as u32;
    Ok(DocId::from_parts(slot, generation))
}

/// Encodes one record into a complete frame (length, CRC, payload).
pub fn encode_frame(lsn: u64, record: &WalRecord<'_>) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(WAL_VERSION);
    wire::write_varint(&mut payload, lsn);
    match record {
        WalRecord::LoadXml { tree } => {
            payload.push(0);
            wire::write_tree(&mut payload, tree);
        }
        WalRecord::LoadGrammar { bytes } => {
            payload.push(1);
            wire::write_varint(&mut payload, bytes.len() as u64);
            payload.extend_from_slice(bytes);
        }
        WalRecord::Remove { doc } => {
            payload.push(2);
            write_doc(&mut payload, *doc);
        }
        WalRecord::ApplyBatch { doc, ops } => {
            payload.push(3);
            write_doc(&mut payload, *doc);
            wire::write_ops(&mut payload, ops);
        }
        WalRecord::ApplyMany { jobs } => {
            payload.push(4);
            wire::write_varint(&mut payload, jobs.len() as u64);
            for (doc, ops) in jobs.iter() {
                write_doc(&mut payload, *doc);
                wire::write_ops(&mut payload, ops);
            }
        }
    }
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one frame payload into `(lsn, entry)`.
fn decode_payload(payload: &[u8]) -> std::result::Result<(u64, WalEntry), String> {
    let mut r = WireReader::new(payload);
    let fail = |e: xmltree::XmlError| e.to_string();
    let version = r.byte().map_err(fail)?;
    if version != WAL_VERSION {
        return Err(format!("unsupported record version {version}"));
    }
    let lsn = r.varint().map_err(fail)?;
    let entry = match r.byte().map_err(fail)? {
        0 => WalEntry::LoadXml {
            tree: r.tree().map_err(fail)?,
        },
        1 => {
            let len = r.varint().map_err(fail)? as usize;
            WalEntry::LoadGrammar {
                bytes: r.bytes(len).map_err(fail)?.to_vec(),
            }
        }
        2 => WalEntry::Remove {
            doc: read_doc(&mut r).map_err(fail)?,
        },
        3 => WalEntry::ApplyBatch {
            doc: read_doc(&mut r).map_err(fail)?,
            ops: r.ops().map_err(fail)?,
        },
        4 => {
            let count = r.varint().map_err(fail)? as usize;
            let mut jobs = Vec::new();
            for _ in 0..count {
                let doc = read_doc(&mut r).map_err(fail)?;
                jobs.push((doc, r.ops().map_err(fail)?));
            }
            WalEntry::ApplyMany { jobs }
        }
        other => return Err(format!("unknown record kind {other}")),
    };
    if !r.finished() {
        return Err("trailing bytes after the record body".to_string());
    }
    Ok((lsn, entry))
}

/// The outcome of scanning a log file (see the module docs for the
/// torn-tail rule).
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Intact records in LSN order, as `(lsn, frame byte offset, entry)`.
    pub records: Vec<(u64, u64, WalEntry)>,
    /// Length in bytes of the valid prefix (everything before the torn
    /// tail, or the whole file when intact).
    pub valid_len: u64,
    /// Whether an incomplete final frame was found (and excluded).
    pub torn: bool,
}

impl WalReplay {
    /// LSN of the last intact record (0 when the log is empty).
    pub fn last_lsn(&self) -> u64 {
        self.records.last().map_or(0, |(lsn, _, _)| *lsn)
    }
}

/// Scans a log file's bytes. Incomplete trailing frames are reported as a
/// torn tail; complete frames failing their CRC / version / LSN-sequence
/// checks yield [`RepairError::WalCorrupt`].
pub fn read_log(bytes: &[u8]) -> Result<WalReplay> {
    let mut replay = WalReplay::default();
    let mut pos = 0usize;
    let mut prev_lsn = 0u64;
    while pos < bytes.len() {
        let corrupt = |detail: String| RepairError::WalCorrupt {
            lsn: prev_lsn,
            offset: pos as u64,
            detail,
        };
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            replay.torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if remaining - 8 < len {
            // The frame's payload never made it to disk: a torn final write.
            replay.torn = true;
            break;
        }
        let expected = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &bytes[pos + 8..pos + 8 + len];
        let found = crc32(payload);
        if expected != found {
            return Err(corrupt(format!(
                "record checksum mismatch (header {expected:#010x}, payload {found:#010x})"
            )));
        }
        let (lsn, entry) = decode_payload(payload).map_err(corrupt)?;
        if prev_lsn != 0 && lsn != prev_lsn + 1 {
            return Err(corrupt(format!(
                "record lsn {lsn} breaks the sequence after {prev_lsn}"
            )));
        }
        prev_lsn = lsn;
        let frame_offset = pos as u64;
        pos += 8 + len;
        replay.valid_len = pos as u64;
        replay.records.push((lsn, frame_offset, entry));
    }
    Ok(replay)
}

// ----- the log writer -----

#[derive(Debug)]
struct WalState {
    /// LSN the next enqueued record receives.
    next_lsn: u64,
    /// Highest LSN whose frame has been appended *and* fsync'd.
    durable_lsn: u64,
    /// Encoded frames enqueued but not yet flushed.
    pending: Vec<u8>,
    /// Highest LSN in `pending`.
    pending_hi: u64,
    /// Whether a leader is currently flushing outside the lock.
    leader: bool,
    /// Set once an append/fsync fails: the log is poisoned (its tail state
    /// on storage is unknown) and every later commit fails fast.
    poisoned: Option<String>,
    syncs: u64,
}

/// The write-ahead log: sequential LSN assignment, leader-based group
/// commit, fsync-before-return (see the module docs).
pub struct Wal {
    fs: Arc<dyn StorageFs>,
    path: String,
    state: Mutex<WalState>,
    flushed: Condvar,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens a log writer over `path`, continuing after `last_lsn` (0 for a
    /// fresh log). The caller is responsible for having scanned/truncated
    /// the existing file first ([`read_log`]).
    pub fn new(fs: Arc<dyn StorageFs>, path: String, last_lsn: u64) -> Self {
        Wal {
            fs,
            path,
            state: Mutex::new(WalState {
                next_lsn: last_lsn + 1,
                durable_lsn: last_lsn,
                pending: Vec::new(),
                pending_hi: last_lsn,
                leader: false,
                poisoned: None,
                syncs: 0,
            }),
            flushed: Condvar::new(),
        }
    }

    /// Commits one record: assigns it the next LSN, enqueues its frame, and
    /// returns once the frame is appended **and fsync'd** — possibly by
    /// another committer's flush (group commit). Returns the record's LSN.
    pub fn commit(&self, record: &WalRecord<'_>) -> Result<u64> {
        let mut state = self.state.lock().expect("wal lock never poisoned");
        if let Some(detail) = &state.poisoned {
            return Err(RepairError::Storage { detail: detail.clone() });
        }
        let lsn = state.next_lsn;
        state.next_lsn += 1;
        let frame = encode_frame(lsn, record);
        state.pending.extend_from_slice(&frame);
        state.pending_hi = lsn;
        loop {
            if state.durable_lsn >= lsn {
                return Ok(lsn);
            }
            if let Some(detail) = &state.poisoned {
                return Err(RepairError::Storage { detail: detail.clone() });
            }
            if state.leader {
                // A flush is in flight; wait for it (it may cover our LSN,
                // or we become the next leader after it).
                state = self.flushed.wait(state).expect("wal lock never poisoned");
                continue;
            }
            // Become the leader: drain everything pending (our frame plus
            // whatever other committers enqueued meanwhile) in one
            // append + one fsync, outside the lock.
            state.leader = true;
            let batch = std::mem::take(&mut state.pending);
            let batch_hi = state.pending_hi;
            drop(state);
            let result = self
                .fs
                .append(&self.path, &batch)
                .and_then(|()| self.fs.sync(&self.path));
            state = self.state.lock().expect("wal lock never poisoned");
            state.leader = false;
            match result {
                Ok(()) => {
                    state.syncs += 1;
                    state.durable_lsn = state.durable_lsn.max(batch_hi);
                }
                Err(e) => {
                    state.poisoned = Some(e.to_string());
                }
            }
            self.flushed.notify_all();
        }
    }

    /// Number of fsyncs performed so far — committers per fsync is the
    /// group-commit coalescing factor.
    pub fn sync_count(&self) -> u64 {
        self.state.lock().expect("wal lock never poisoned").syncs
    }

    /// LSN of the last durably committed record.
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().expect("wal lock never poisoned").durable_lsn
    }

    /// Truncates the log file to zero length — called after a checkpoint
    /// has been atomically written (replay skips `lsn <= checkpoint` even
    /// if this truncation never happens, so it is purely an optimization).
    pub fn truncate(&self) -> Result<()> {
        let state = self.state.lock().expect("wal lock never poisoned");
        if let Some(detail) = &state.poisoned {
            return Err(RepairError::Storage { detail: detail.clone() });
        }
        debug_assert!(state.pending.is_empty(), "truncate with pending frames");
        self.fs.set_len(&self.path, 0)?;
        self.fs.sync(&self.path)
    }

    /// Truncates the log only if it is provably covered by a checkpoint
    /// whose base LSN is `lsn`: the durable LSN must still be exactly
    /// `lsn` with no frames pending or mid-flush. Returns whether the
    /// truncation happened. A fuzzy checkpoint written while writers kept
    /// committing calls this with its base LSN; when writers raced past
    /// it, the log simply survives until the next quiescent checkpoint —
    /// truncation stays an optimization, never a correctness step. The
    /// state lock is held across the truncate so no commit can append
    /// between the check and the `set_len`.
    pub fn truncate_if_at(&self, lsn: u64) -> Result<bool> {
        let state = self.state.lock().expect("wal lock never poisoned");
        if let Some(detail) = &state.poisoned {
            return Err(RepairError::Storage { detail: detail.clone() });
        }
        if state.durable_lsn != lsn || !state.pending.is_empty() || state.leader {
            return Ok(false);
        }
        self.fs.set_len(&self.path, 0)?;
        self.fs.sync(&self.path)?;
        Ok(true)
    }
}

pub mod testing {
    //! Fault injection for the durable layer: an in-memory [`StorageFs`]
    //! that kills the "process" at a configurable point of its I/O stream.
    //!
    //! Fault accounting: appending `n` bytes consumes `n` fault points (and
    //! a kill mid-append leaves the prefix written — exactly a torn write);
    //! `sync`, the rename step of `write_atomic`, and `set_len` consume one
    //! point each (they either happened or didn't). Killing at every point
    //! `k` of a workload's total therefore simulates a crash at every byte
    //! offset and after every sync, which is what the kill-and-recover
    //! differential suite iterates.

    use super::*;
    use std::collections::HashMap;

    #[derive(Debug, Default)]
    struct FailState {
        files: HashMap<String, Vec<u8>>,
        /// Remaining fault points; `None` = no fault armed.
        budget: Option<u64>,
        /// Total points consumed since the last [`FailpointFs::reset_consumed`].
        consumed: u64,
        /// Set once the budget ran out: every later operation fails until
        /// [`FailpointFs::disarm`] (the "process" is dead; the files map is
        /// the disk image the next incarnation recovers from).
        dead: bool,
        syncs: u64,
        /// Artificial latency added to every `sync` — models a slow disk so
        /// group-commit tests can pile committers up behind the leader.
        sync_delay: Option<std::time::Duration>,
    }

    /// An in-memory [`StorageFs`] with an armable kill point (see the
    /// module docs for the accounting).
    #[derive(Debug, Default)]
    pub struct FailpointFs {
        state: Mutex<FailState>,
    }

    impl FailpointFs {
        /// A fresh, empty, unarmed filesystem.
        pub fn new() -> Self {
            Self::default()
        }

        /// Arms the kill: the filesystem dies after `points` further fault
        /// points are consumed.
        pub fn arm(&self, points: u64) {
            let mut st = self.state.lock().expect("failpoint lock");
            st.budget = Some(points);
            st.dead = false;
        }

        /// Disarms the kill and revives the filesystem — the files are the
        /// disk image the crash left behind, ready for recovery.
        pub fn disarm(&self) {
            let mut st = self.state.lock().expect("failpoint lock");
            st.budget = None;
            st.dead = false;
        }

        /// Whether the armed kill has fired.
        pub fn is_dead(&self) -> bool {
            self.state.lock().expect("failpoint lock").dead
        }

        /// Total fault points consumed so far — the size of the kill matrix.
        pub fn consumed(&self) -> u64 {
            self.state.lock().expect("failpoint lock").consumed
        }

        /// Resets the consumed-points counter (not the files).
        pub fn reset_consumed(&self) {
            self.state.lock().expect("failpoint lock").consumed = 0;
        }

        /// Number of successful syncs (for group-commit assertions).
        pub fn sync_count(&self) -> u64 {
            self.state.lock().expect("failpoint lock").syncs
        }

        /// Makes every subsequent `sync` sleep for `delay` first — a slow
        /// fsync, so concurrent committers stack up behind the group-commit
        /// leader and fairness tests can pin the coalescing factor.
        pub fn set_sync_delay(&self, delay: std::time::Duration) {
            self.state.lock().expect("failpoint lock").sync_delay = Some(delay);
        }

        /// Raw content of a file, if present (post-mortem inspection).
        pub fn file(&self, path: &str) -> Option<Vec<u8>> {
            self.state.lock().expect("failpoint lock").files.get(path).cloned()
        }

        /// Overwrites a file's bytes directly — for corruption tests that
        /// flip bits behind the log writer's back.
        pub fn set_file(&self, path: &str, bytes: Vec<u8>) {
            self.state
                .lock()
                .expect("failpoint lock")
                .files
                .insert(path.to_string(), bytes);
        }

        fn dead_err() -> RepairError {
            RepairError::Storage {
                detail: "injected fault: storage is dead".to_string(),
            }
        }

        /// Consumes up to `wanted` points; returns how many were granted.
        /// Granting fewer than `wanted` kills the filesystem.
        fn charge(st: &mut FailState, wanted: u64) -> u64 {
            st.consumed += wanted;
            match st.budget {
                None => wanted,
                Some(left) => {
                    if left >= wanted {
                        st.budget = Some(left - wanted);
                        wanted
                    } else {
                        st.budget = Some(0);
                        st.dead = true;
                        left
                    }
                }
            }
        }
    }

    impl StorageFs for FailpointFs {
        fn append(&self, path: &str, bytes: &[u8]) -> Result<()> {
            let mut st = self.state.lock().expect("failpoint lock");
            if st.dead {
                return Err(Self::dead_err());
            }
            let granted = Self::charge(&mut st, bytes.len() as u64) as usize;
            let dead = st.dead;
            st.files
                .entry(path.to_string())
                .or_default()
                .extend_from_slice(&bytes[..granted]);
            if dead {
                return Err(RepairError::Storage {
                    detail: format!(
                        "injected fault: append died after {granted} of {} bytes",
                        bytes.len()
                    ),
                });
            }
            Ok(())
        }

        fn sync(&self, path: &str) -> Result<()> {
            let delay = self.state.lock().expect("failpoint lock").sync_delay;
            if let Some(delay) = delay {
                // Sleep outside the lock: a slow fsync must not block
                // unrelated file operations, only this sync's caller.
                std::thread::sleep(delay);
            }
            let mut st = self.state.lock().expect("failpoint lock");
            if st.dead {
                return Err(Self::dead_err());
            }
            if Self::charge(&mut st, 1) < 1 {
                return Err(RepairError::Storage {
                    detail: format!("injected fault: sync of `{path}` died"),
                });
            }
            st.syncs += 1;
            Ok(())
        }

        fn read(&self, path: &str) -> Result<Option<Vec<u8>>> {
            let st = self.state.lock().expect("failpoint lock");
            if st.dead {
                return Err(Self::dead_err());
            }
            Ok(st.files.get(path).cloned())
        }

        fn write_atomic(&self, path: &str, bytes: &[u8]) -> Result<()> {
            let mut st = self.state.lock().expect("failpoint lock");
            if st.dead {
                return Err(Self::dead_err());
            }
            // The temp-file write: a kill here loses the (invisible) temp
            // file and leaves the destination untouched.
            let granted = Self::charge(&mut st, bytes.len() as u64);
            if (granted as usize) < bytes.len() {
                return Err(RepairError::Storage {
                    detail: "injected fault: atomic write died in the temp file".to_string(),
                });
            }
            // The rename: one point; a kill here also leaves the old file.
            if Self::charge(&mut st, 1) < 1 {
                return Err(RepairError::Storage {
                    detail: "injected fault: atomic write died before the rename".to_string(),
                });
            }
            st.files.insert(path.to_string(), bytes.to_vec());
            Ok(())
        }

        fn set_len(&self, path: &str, len: u64) -> Result<()> {
            let mut st = self.state.lock().expect("failpoint lock");
            if st.dead {
                return Err(Self::dead_err());
            }
            if Self::charge(&mut st, 1) < 1 {
                return Err(RepairError::Storage {
                    detail: format!("injected fault: truncate of `{path}` died"),
                });
            }
            let file = st.files.entry(path.to_string()).or_default();
            file.truncate(len as usize);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::FailpointFs;
    use super::*;
    use xmltree::parse::parse_xml;

    fn sample_entries() -> Vec<Vec<u8>> {
        let tree = parse_xml("<a><b/><c/></a>").unwrap();
        let doc = DocId::from_parts(0, 1);
        let ops = vec![
            UpdateOp::Rename { target: 1, label: "x".into() },
            UpdateOp::Delete { target: 3 },
        ];
        vec![
            encode_frame(1, &WalRecord::LoadXml { tree: &tree }),
            encode_frame(2, &WalRecord::ApplyBatch { doc, ops: &ops }),
            encode_frame(3, &WalRecord::Remove { doc }),
            encode_frame(
                4,
                &WalRecord::ApplyMany {
                    jobs: &[(doc, ops.clone()), (DocId::from_parts(1, 1), vec![])],
                },
            ),
            encode_frame(5, &WalRecord::LoadGrammar { bytes: b"not really a grammar" }),
        ]
    }

    #[test]
    fn frames_roundtrip_through_read_log() {
        let mut log = Vec::new();
        for frame in sample_entries() {
            log.extend_from_slice(&frame);
        }
        let replay = read_log(&log).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.last_lsn(), 5);
        assert!(!replay.torn);
        assert_eq!(replay.valid_len, log.len() as u64);
        assert!(matches!(replay.records[0].2, WalEntry::LoadXml { .. }));
        assert!(matches!(replay.records[1].2, WalEntry::ApplyBatch { ref ops, .. } if ops.len() == 2));
        assert!(matches!(replay.records[2].2, WalEntry::Remove { .. }));
        assert!(matches!(replay.records[3].2, WalEntry::ApplyMany { ref jobs } if jobs.len() == 2));
        assert!(matches!(replay.records[4].2, WalEntry::LoadGrammar { .. }));
        let offsets: Vec<u64> = replay.records.iter().map(|(_, off, _)| *off).collect();
        let mut expected_offset = 0u64;
        for (frame, &offset) in sample_entries().iter().zip(&offsets) {
            assert_eq!(offset, expected_offset);
            expected_offset += frame.len() as u64;
        }
    }

    #[test]
    fn every_torn_tail_is_detected_and_prefix_kept() {
        let frames = sample_entries();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for frame in &frames {
            log.extend_from_slice(frame);
            boundaries.push(log.len());
        }
        for cut in 0..log.len() {
            let replay = read_log(&log[..cut]).expect("torn tails are not errors");
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(replay.records.len(), complete, "cut at {cut}");
            assert_eq!(replay.torn, !boundaries.contains(&cut), "cut at {cut}");
            assert_eq!(replay.valid_len as usize, boundaries[complete], "cut at {cut}");
        }
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let frames = sample_entries();
        let mut log = Vec::new();
        for frame in &frames {
            log.extend_from_slice(frame);
        }
        // Flip one payload byte of the second frame: its CRC check fires.
        let mut bad = log.clone();
        let offset = frames[0].len() + 10;
        bad[offset] ^= 0x01;
        match read_log(&bad) {
            Err(RepairError::WalCorrupt { lsn, .. }) => assert_eq!(lsn, 1),
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
        // A wrong version byte in a mid-log frame is corruption too.
        let mut bad = log.clone();
        let payload_start = frames[0].len() + 8;
        let payload_len = u32::from_le_bytes(
            log[frames[0].len()..frames[0].len() + 4].try_into().unwrap(),
        ) as usize;
        bad[payload_start] = 99;
        let crc = crc32(&bad[payload_start..payload_start + payload_len]);
        bad[frames[0].len() + 4..frames[0].len() + 8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(read_log(&bad), Err(RepairError::WalCorrupt { .. })));
    }

    #[test]
    fn lsn_gaps_are_corruption() {
        let tree = parse_xml("<a/>").unwrap();
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(1, &WalRecord::LoadXml { tree: &tree }));
        log.extend_from_slice(&encode_frame(3, &WalRecord::LoadXml { tree: &tree }));
        assert!(matches!(read_log(&log), Err(RepairError::WalCorrupt { lsn: 1, .. })));
    }

    #[test]
    fn commit_assigns_sequential_lsns_and_survives_reads() {
        let fs = Arc::new(FailpointFs::new());
        let wal = Wal::new(fs.clone(), "wal.log".into(), 0);
        let tree = parse_xml("<a><b/></a>").unwrap();
        for expected in 1..=5u64 {
            let lsn = wal.commit(&WalRecord::LoadXml { tree: &tree }).unwrap();
            assert_eq!(lsn, expected);
        }
        assert_eq!(wal.durable_lsn(), 5);
        let bytes = fs.read("wal.log").unwrap().unwrap();
        let replay = read_log(&bytes).unwrap();
        assert_eq!(replay.last_lsn(), 5);
        assert!(!replay.torn);
    }

    #[test]
    fn a_failed_flush_poisons_the_log() {
        let fs = Arc::new(FailpointFs::new());
        let wal = Wal::new(fs.clone(), "wal.log".into(), 0);
        let tree = parse_xml("<a/>").unwrap();
        wal.commit(&WalRecord::LoadXml { tree: &tree }).unwrap();
        fs.arm(2); // dies mid-append of the next frame
        assert!(wal.commit(&WalRecord::LoadXml { tree: &tree }).is_err());
        fs.disarm();
        // Poisoned: even with storage revived, the writer refuses.
        assert!(matches!(
            wal.commit(&WalRecord::LoadXml { tree: &tree }),
            Err(RepairError::Storage { .. })
        ));
        // The on-disk image is a valid prefix plus a torn tail.
        let bytes = fs.file("wal.log").unwrap();
        let replay = read_log(&bytes).unwrap();
        assert_eq!(replay.last_lsn(), 1);
        assert!(replay.torn);
    }

    #[test]
    fn concurrent_commits_share_fsyncs() {
        let fs = Arc::new(FailpointFs::new());
        let wal = Arc::new(Wal::new(fs.clone(), "wal.log".into(), 0));
        let tree = parse_xml("<a><b/><c/></a>").unwrap();
        let threads = 8;
        let commits_per_thread = 16;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let wal = wal.clone();
                let tree = &tree;
                scope.spawn(move || {
                    for _ in 0..commits_per_thread {
                        wal.commit(&WalRecord::LoadXml { tree }).unwrap();
                    }
                });
            }
        });
        let total = (threads * commits_per_thread) as u64;
        assert_eq!(wal.durable_lsn(), total);
        // Group commit can never use more fsyncs than commits; the log must
        // replay completely either way.
        assert!(wal.sync_count() <= total);
        let replay = read_log(&fs.read("wal.log").unwrap().unwrap()).unwrap();
        assert_eq!(replay.last_lsn(), total);
        assert!(!replay.torn);
    }

    #[test]
    fn group_commit_fairness_bounds_fsyncs_under_a_slow_disk() {
        // Fairness/regression pin for leader-based group commit: on a disk
        // where every fsync takes 2 ms, concurrent committers must pile up
        // behind the in-flight leader and be drained together — N commits
        // may cost at most ceil(N / batch) fsyncs with an average batch of
        // at least 2 (in practice each flush covers most of the other
        // threads' enqueued frames; batch = 2 is the conservative floor
        // that still fails if the leader ever flushes one frame at a time).
        let fs = Arc::new(FailpointFs::new());
        fs.set_sync_delay(std::time::Duration::from_millis(2));
        let wal = Arc::new(Wal::new(fs.clone(), "wal.log".into(), 0));
        let tree = parse_xml("<a><b/><c/></a>").unwrap();
        let threads = 8;
        let commits_per_thread = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let wal = wal.clone();
                let tree = &tree;
                scope.spawn(move || {
                    for _ in 0..commits_per_thread {
                        wal.commit(&WalRecord::LoadXml { tree }).unwrap();
                    }
                });
            }
        });
        let total = (threads * commits_per_thread) as u64;
        assert_eq!(wal.durable_lsn(), total);
        let syncs = fs.sync_count();
        assert!(syncs >= 1);
        assert!(
            syncs <= total / 2,
            "expected ≤ {} fsyncs for {total} concurrent commits, got {syncs}",
            total / 2
        );
        // Wal- and fs-level accounting agree, and nothing was lost.
        assert_eq!(wal.sync_count(), syncs);
        let replay = read_log(&fs.read("wal.log").unwrap().unwrap()).unwrap();
        assert_eq!(replay.last_lsn(), total);
    }
}
