//! Replacing all occurrences of a digram directly on a grammar
//! (paper Section IV-B/IV-E, Algorithms 5–8).
//!
//! Rules are processed callees-first (anti-straight-line order). For every rule
//! that contains occurrence generators of the chosen digram, three phases run:
//!
//! 1. **Localization** — the minimal inlining steps that make the `a`- and
//!    `b`-nodes of every crossing occurrence explicit within the rule
//!    (Algorithm 5 / the inlining part of Algorithm 7).
//! 2. **Local replacement** — a single preorder (top-down greedy) pass that
//!    replaces every local occurrence by the fresh pattern nonterminal, exactly
//!    as TreeRePair does on trees.
//! 3. **Fragment export** (optimized mode only, Algorithm 8) — connected
//!    fragments that are not needed by callers are moved into new rules, so that
//!    later inlinings of this rule stay small ("lemma generation").

use std::collections::HashSet;

use sltgrammar::{FxHashMap, FxHashSet, Grammar, NodeId, NodeKind, NtId, RhsTree};
use treerepair::Digram;

use crate::occurrences::{is_transparent_nt, tree_child, tree_parent, FrozenSet};

/// Statistics of one digram replacement pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaceStats {
    /// Number of inlining steps performed during localization.
    pub inlinings: usize,
    /// Number of occurrences replaced by the pattern nonterminal.
    pub replacements: usize,
    /// Number of fragment rules exported (optimized mode only).
    pub exported_rules: usize,
}

/// Reference-site counts of every rule, maintained *incrementally* through
/// the splices of one replacement round.
///
/// [`export_fragments`] needs to know whether a rule is referenced more than
/// once; calling [`Grammar::ref_counts`] (a full body walk) per reduced
/// callee per round was the last per-round O(grammar) term on the
/// replacement path. Instead the counts are seeded once per round — from
/// [`crate::occ_index::OccIndex::ref_counts`]'s cached call graph on the
/// incremental path, from one `Grammar::ref_counts` walk on the rebuild
/// oracle path — and kept exact across the round's three mutation kinds:
/// inlining a callee (one reference gone, the callee's body references
/// copied in), replacing occurrences by the pattern rule, and exporting a
/// fragment into a fresh rule.
#[derive(Debug, Clone, Default)]
pub struct RefCounts {
    counts: FxHashMap<NtId, u64>,
}

impl RefCounts {
    /// Seeds the counts with one full-grammar walk (the rebuild oracle path).
    pub fn from_grammar(g: &Grammar) -> Self {
        RefCounts {
            counts: g
                .ref_counts()
                .into_iter()
                .map(|(nt, c)| (nt, c as u64))
                .collect(),
        }
    }

    /// Seeds the counts from an already-maintained call graph (the
    /// [`crate::occ_index::OccIndex`] path — no body walk).
    pub fn from_counts(counts: FxHashMap<NtId, u64>) -> Self {
        RefCounts { counts }
    }

    /// Current number of reference sites of `nt`.
    pub fn count(&self, nt: NtId) -> u64 {
        self.counts.get(&nt).copied().unwrap_or(0)
    }

    /// Adds `delta` references to `nt`.
    fn add(&mut self, nt: NtId, delta: u64) {
        *self.counts.entry(nt).or_insert(0) += delta;
    }

    /// Removes `delta` references from `nt`.
    fn sub(&mut self, nt: NtId, delta: u64) {
        let slot = self.counts.entry(nt).or_insert(0);
        debug_assert!(*slot >= delta, "reference count underflow");
        *slot = slot.saturating_sub(delta);
    }

    /// Accounts the references contributed by `rule`'s current body (used to
    /// fold a freshly added pattern rule into seeded counts).
    pub fn add_rule_body(&mut self, g: &Grammar, rule: NtId) {
        let rhs = &g.rule(rule).rhs;
        for node in rhs.preorder() {
            if let NodeKind::Nt(callee) = rhs.kind(node) {
                self.add(callee, 1);
            }
        }
    }

    /// Accounts one inlining of `callee`: the consumed reference site goes
    /// away and a copy of the callee's body (with its reference sites) is
    /// spliced into the caller. Must be called with the callee body in the
    /// state that is actually inlined (i.e. after any fragment export on it).
    fn note_inline(&mut self, g: &Grammar, callee: NtId) {
        self.sub(callee, 1);
        let rhs = &g.rule(callee).rhs;
        for node in rhs.preorder() {
            if let NodeKind::Nt(inner) = rhs.kind(node) {
                self.add(inner, 1);
            }
        }
    }

    /// Accounts `n` digram replacements by pattern rule `x`: each removes the
    /// occurrence's parent and child nodes (which are reference sites when
    /// the digram end is a frozen nonterminal) and adds one reference to `x`.
    fn note_replacements(&mut self, digram: &Digram, x: NtId, n: u64) {
        if n == 0 {
            return;
        }
        if let NodeKind::Nt(p) = digram.parent {
            self.sub(p, n);
        }
        if let NodeKind::Nt(c) = digram.child {
            self.sub(c, n);
        }
        self.add(x, n);
    }
}

/// Replaces all occurrences of `digram` in the grammar by references to the
/// (already created, frozen) pattern rule `x`.
///
/// `rules_with_generators` is the set of rules containing occurrence
/// generators of the digram — as collected by
/// [`crate::occurrences::retrieve_occs`] or maintained by
/// [`crate::occ_index::OccIndex`]; only those rules are visited, in the given
/// anti-straight-line `order` (callees first). With `optimize` set, fragment
/// export keeps intermediate rules small.
#[allow(clippy::too_many_arguments)]
pub fn replace_all_occurrences(
    g: &mut Grammar,
    digram: &Digram,
    x: NtId,
    rules_with_generators: &FxHashSet<NtId>,
    order: &[NtId],
    frozen: &FrozenSet,
    optimize: bool,
    refs: &mut RefCounts,
) -> ReplaceStats {
    let mut stats = ReplaceStats::default();
    // Rules already reduced by fragment export in this round ("lemma generation"
    // cache): reducing a multiply-referenced rule once benefits every later
    // inlining of it.
    let mut reduced: FxHashSet<NtId> = FxHashSet::default();

    for &rule in order {
        if !rules_with_generators.contains(&rule) || frozen.contains(&rule) {
            continue;
        }
        stats.inlinings += localize(g, rule, digram, frozen, optimize, &mut reduced, &mut stats.exported_rules, refs);
        let replaced = replace_local(g, rule, digram, x);
        refs.note_replacements(digram, x, replaced as u64);
        stats.replacements += replaced;
        if optimize {
            stats.exported_rules += export_fragments(g, rule, refs);
            reduced.insert(rule);
        }
    }
    stats
}

/// Phase 1: inline transparent nonterminals until every occurrence of `digram`
/// whose generator lies in `rule` has both its `a`- and `b`-node inside `rule`.
///
/// In optimized mode, a multiply-referenced callee is first reduced by fragment
/// export (once per round) so that every inlined copy of it stays small — the
/// paper's "lemma generation".
#[allow(clippy::too_many_arguments)]
pub fn localize(
    g: &mut Grammar,
    rule: NtId,
    digram: &Digram,
    frozen: &FrozenSet,
    optimize: bool,
    reduced: &mut FxHashSet<NtId>,
    exported_rules: &mut usize,
    refs: &mut RefCounts,
) -> usize {
    let mut inlinings = 0;
    loop {
        let mut targets: Vec<NodeId> = Vec::new();
        {
            let rhs = &g.rule(rule).rhs;
            let root = rhs.root();
            for node in rhs.preorder() {
                if node == root || rhs.kind(node).is_param() {
                    continue;
                }
                let Some((tp, index)) = tree_parent(g, rule, node, frozen) else {
                    continue;
                };
                if index != digram.child_index {
                    continue;
                }
                let tc = tree_child(g, rule, node, frozen);
                let tp_kind = g.rule(tp.0).rhs.kind(tp.1);
                let tc_kind = g.rule(tc.0).rhs.kind(tc.1);
                if tp_kind != digram.parent || tc_kind != digram.child {
                    continue;
                }
                // Equal-label occurrences crossing a rule root are never replaced.
                if digram.equal_labels() && is_transparent_nt(rhs.kind(node), frozen) {
                    continue;
                }
                let parent = rhs.parent(node).expect("non-root node has a parent");
                if is_transparent_nt(rhs.kind(parent), frozen) {
                    targets.push(parent);
                } else if is_transparent_nt(rhs.kind(node), frozen) {
                    targets.push(node);
                }
            }
        }
        targets.sort();
        targets.dedup();
        if targets.is_empty() {
            return inlinings;
        }
        for node in targets {
            let (attached, kind) = {
                let rhs = &g.rule(rule).rhs;
                (
                    node == rhs.root() || rhs.parent(node).is_some(),
                    rhs.kind(node),
                )
            };
            if !attached || !is_transparent_nt(kind, frozen) {
                continue;
            }
            let callee = kind.as_nt().expect("transparent nonterminal reference");
            if optimize && !reduced.contains(&callee) {
                *exported_rules += export_fragments(g, callee, refs);
                reduced.insert(callee);
            }
            refs.note_inline(g, callee);
            g.inline_at(rule, node);
            inlinings += 1;
        }
    }
}

/// Phase 2: one preorder pass replacing every local occurrence of `digram`
/// inside `rule` by a reference to the pattern rule `x` (top-down greedy,
/// non-overlapping). Returns the number of replacements.
pub fn replace_local(g: &mut Grammar, rule: NtId, digram: &Digram, x: NtId) -> usize {
    let rhs = &mut g.rule_mut(rule).rhs;
    let order = rhs.preorder();
    let mut replacements = 0;
    for node in order {
        // Skip nodes that a previous replacement detached.
        let Some(parent) = rhs.parent(node) else { continue };
        if rhs.kind(parent) != digram.parent
            || rhs.kind(node) != digram.child
            || rhs.child_index(node) != Some(digram.child_index)
        {
            continue;
        }
        let i = digram.child_index;
        let parent_children = rhs.children(parent).to_vec();
        let node_children = rhs.children(node).to_vec();
        for &c in &parent_children {
            rhs.detach(c);
        }
        for &c in &node_children {
            rhs.detach(c);
        }
        let mut new_children =
            Vec::with_capacity(parent_children.len() + node_children.len() - 1);
        new_children.extend_from_slice(&parent_children[..i]);
        new_children.extend_from_slice(&node_children);
        new_children.extend_from_slice(&parent_children[i + 1..]);
        let x_node = rhs.add_node(NodeKind::Nt(x), new_children);
        rhs.replace_subtree(parent, x_node);
        replacements += 1;
    }
    replacements
}

/// Phase 3 (Algorithm 8): exports maximal connected fragments of nodes that are
/// not needed by callers into fresh rules, provided the rule is referenced more
/// than once. The "needed" (marked) nodes are the rule's root and the parents of
/// its parameters — the nodes callers may have to isolate when they inline this
/// rule. Returns the number of exported rules.
///
/// The reference-count check reads the round's maintained [`RefCounts`]
/// (seeded from the occurrence index's call graph) instead of re-walking the
/// grammar per call; exported rules are folded back into the counts.
pub fn export_fragments(g: &mut Grammar, rule: NtId, refs: &mut RefCounts) -> usize {
    debug_assert_eq!(
        refs.count(rule),
        g.ref_counts().get(&rule).copied().unwrap_or(0) as u64,
        "maintained reference counts must match a fresh walk"
    );
    if refs.count(rule) <= 1 {
        return 0;
    }

    // Collect marks and fragment roots on an immutable view first.
    let (fragments, _marks) = {
        let rhs = &g.rule(rule).rhs;
        let mut marks: HashSet<NodeId> = HashSet::new();
        marks.insert(rhs.root());
        for (_, pnode) in rhs.param_nodes() {
            if let Some(parent) = rhs.parent(pnode) {
                marks.insert(parent);
            }
        }
        let mut fragments: Vec<NodeId> = Vec::new();
        for node in rhs.preorder() {
            if marks.contains(&node) || rhs.kind(node).is_param() {
                continue;
            }
            let parent = rhs.parent(node).expect("only the root lacks a parent");
            let parent_in_fragment =
                !marks.contains(&parent) && !rhs.kind(parent).is_param();
            if !parent_in_fragment {
                fragments.push(node);
            }
        }
        (fragments, marks)
    };

    let mut exported = 0;
    for fragment_root in fragments {
        // Re-derive marks: earlier exports in this rule changed the tree, but
        // they never touch other fragments, so the fragment root is still valid
        // unless it was already cut away (defensive check below).
        let (fragment_nodes, cut_points) = {
            let rhs = &g.rule(rule).rhs;
            let attached = fragment_root == rhs.root() || rhs.parent(fragment_root).is_some();
            if !attached {
                continue;
            }
            let mut marks: HashSet<NodeId> = HashSet::new();
            marks.insert(rhs.root());
            for (_, pnode) in rhs.param_nodes() {
                if let Some(parent) = rhs.parent(pnode) {
                    marks.insert(parent);
                }
            }
            if marks.contains(&fragment_root) {
                continue;
            }
            collect_fragment(rhs, fragment_root, &marks)
        };
        if fragment_nodes.len() < 2 {
            continue;
        }

        // Build the exported rule body: a copy of the fragment with each cut
        // subtree replaced by a fresh parameter (in preorder order).
        let new_rhs = {
            let rhs = &g.rule(rule).rhs;
            build_exported_rhs(rhs, fragment_root, &fragment_nodes, &cut_points)
        };
        let rank = cut_points.len();
        let new_rule = g.add_rule_fresh("F", rank, new_rhs);
        // The fragment's own reference sites merely move into the new rule;
        // the call node below is the only net change.
        refs.add(new_rule, 1);

        // Replace the fragment inside the original rule by a reference to the
        // new rule applied to the cut subtrees.
        let rhs = &mut g.rule_mut(rule).rhs;
        for &c in &cut_points {
            rhs.detach(c);
        }
        let call = rhs.add_node(NodeKind::Nt(new_rule), cut_points.clone());
        rhs.replace_subtree(fragment_root, call);
        exported += 1;
    }
    exported
}

/// Collects the connected fragment of non-marked, non-parameter nodes rooted at
/// `root`, together with the cut points (children of fragment nodes that are
/// marked or parameters), both in preorder order.
fn collect_fragment(
    rhs: &RhsTree,
    root: NodeId,
    marks: &HashSet<NodeId>,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut fragment = Vec::new();
    let mut cuts = Vec::new();
    // True preorder walk: both fragment nodes and cut points are pushed, but
    // cut points are never descended into. This keeps the cut points (and thus
    // the exported rule's parameters) in preorder order.
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        let is_cut = marks.contains(&node) || rhs.kind(node).is_param();
        if is_cut {
            cuts.push(node);
            continue;
        }
        fragment.push(node);
        for &c in rhs.children(node).iter().rev() {
            stack.push(c);
        }
    }
    (fragment, cuts)
}

/// Builds the right-hand side of the exported rule: the fragment with cut
/// subtrees replaced by parameters `y1..yk` in preorder order.
fn build_exported_rhs(
    rhs: &RhsTree,
    root: NodeId,
    fragment: &[NodeId],
    cuts: &[NodeId],
) -> RhsTree {
    let fragment_set: FxHashSet<NodeId> = fragment.iter().copied().collect();
    let cut_index: FxHashMap<NodeId, u32> = cuts
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u32))
        .collect();
    let mut out = RhsTree::singleton(NodeKind::Param(u32::MAX));

    // Bottom-up copy: children before parents (reverse preorder of the fragment
    // including cut leaves).
    let mut new_ids: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    let mut order: Vec<NodeId> = Vec::new();
    let mut walk = vec![root];
    while let Some(node) = walk.pop() {
        order.push(node);
        if fragment_set.contains(&node) {
            for &c in rhs.children(node).iter().rev() {
                walk.push(c);
            }
        }
    }
    for &node in order.iter().rev() {
        if let Some(&i) = cut_index.get(&node) {
            let id = out.add_leaf(NodeKind::Param(i));
            new_ids.insert(node, id);
        } else {
            let children: Vec<NodeId> = rhs.children(node).iter().map(|c| new_ids[c]).collect();
            let id = out.add_node(rhs.kind(node), children);
            new_ids.insert(node, id);
        }
    }
    out.set_root(new_ids[&root]);
    out.compact();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occurrences::retrieve_occs;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::text::parse_grammar;
    use treerepair::digram::pattern_rhs;

    fn digram(g: &Grammar, parent: &str, index: usize, child: &str) -> Digram {
        Digram {
            parent: NodeKind::Term(g.symbols.get(parent).unwrap()),
            child_index: index,
            child: NodeKind::Term(g.symbols.get(child).unwrap()),
        }
    }

    /// Runs one replacement round for the given digram and checks the derived
    /// tree is unchanged. Returns the statistics and the fresh pattern rule.
    fn run_round_with_rule(g: &mut Grammar, d: &Digram, optimize: bool) -> (ReplaceStats, NtId) {
        let before = fingerprint(g);
        let frozen = FrozenSet::default();
        let occs = retrieve_occs(g, &frozen);
        let rules: FxHashSet<NtId> = occs
            .get(d)
            .map(|o| o.generators.iter().map(|gen| gen.rule).collect())
            .unwrap_or_default();
        let rank = d.pattern_rank(g);
        let x = g.add_rule_fresh("X", rank, pattern_rhs(g, d));
        let mut frozen_after = frozen;
        frozen_after.insert(x);
        let order = g.anti_sl_order().unwrap();
        let mut refs = RefCounts::from_grammar(g);
        let stats =
            replace_all_occurrences(g, d, x, &rules, &order, &frozen_after, optimize, &mut refs);
        g.gc();
        g.validate().unwrap();
        assert_eq!(fingerprint(g), before, "derived tree must be preserved");
        (stats, x)
    }

    fn run_round(g: &mut Grammar, d: &Digram, optimize: bool) -> ReplaceStats {
        run_round_with_rule(g, d, optimize).0
    }

    #[test]
    fn local_occurrences_are_replaced_within_one_rule() {
        let mut g = parse_grammar("S -> f(a(b(#,#),#), a(b(#,#),#))").unwrap();
        let d = digram(&g, "a", 0, "b");
        let stats = run_round(&mut g, &d, false);
        assert_eq!(stats.replacements, 2);
        assert_eq!(stats.inlinings, 0);
    }

    #[test]
    fn crossing_occurrence_triggers_inlining_of_the_callee() {
        // The b-node is the root of rule B; the a-parents are in S.
        let mut g = parse_grammar("S -> f(a(B,#), a(B,#))\nB -> b(c,#)").unwrap();
        let d = digram(&g, "a", 0, "b");
        let stats = run_round(&mut g, &d, false);
        assert_eq!(stats.replacements, 2);
        assert!(stats.inlinings >= 2);
    }

    #[test]
    fn crossing_occurrence_through_parameters_inlines_the_caller_side() {
        // The a-node is inside rule A (parent of y1); the b-node is the argument
        // supplied by S: occurrences cross the parameter boundary.
        let mut g = parse_grammar("S -> f(A(b(#,#)), A(b(#,#)))\nA -> a(y1,#)").unwrap();
        let d = digram(&g, "a", 0, "b");
        let stats = run_round(&mut g, &d, false);
        assert_eq!(stats.replacements, 2);
        assert!(stats.inlinings >= 2);
    }

    #[test]
    fn concluding_example_of_section_iv() {
        // Grammar 1 of the paper (embedded under a start rule so that A, B, C
        // are all referenced "elsewhere" as the paper assumes).
        let mut g = parse_grammar(
            "S -> r(C, r(C, r(A(c,c), B(c))))\n\
             C -> A(B(#),#)\n\
             A -> a(y1, a(B(#), a(#, y2)))\n\
             B -> b(y1,#)",
        )
        .unwrap();
        let d = digram(&g, "a", 0, "b");
        let (stats, x) = run_round_with_rule(&mut g, &d, true);
        // Two generators: (A,4) and (C,2); both get replaced.
        assert_eq!(stats.replacements, 2);
        // The X rule exists and is used.
        assert!(g.ref_counts()[&x] >= 2);
    }

    #[test]
    fn equal_label_digrams_never_cross_rule_roots() {
        let mut g = parse_grammar("S -> a(#, a(#, A))\nA -> a(#, a(#, #))").unwrap();
        let d = digram(&g, "a", 1, "a");
        let stats = run_round(&mut g, &d, false);
        // One occurrence inside S and one inside A are replaced; the crossing
        // S→A pair is left alone, so no inlining happens at all.
        assert_eq!(stats.replacements, 2);
        assert_eq!(stats.inlinings, 0);
    }

    #[test]
    fn fragment_export_keeps_multiply_referenced_rules_small() {
        // Rule A is called twice and contains a large unneeded middle part.
        let mut g = parse_grammar(
            "S -> f(A(b(#,#)), A(b(#,#)))\n\
             A -> a(y1, c(d(#,#), c(d(#,#), e(#,#))))",
        )
        .unwrap();
        let d = digram(&g, "a", 0, "b");
        let edges_unoptimized = {
            let mut g2 = g.clone();
            run_round(&mut g2, &d, false);
            g2.edge_count()
        };
        let stats = run_round(&mut g, &d, true);
        assert!(stats.exported_rules >= 1, "expected at least one exported fragment");
        assert!(
            g.edge_count() <= edges_unoptimized,
            "optimized replacement must not be larger: {} vs {}",
            g.edge_count(),
            edges_unoptimized
        );
    }

    #[test]
    fn replacement_handles_digrams_with_null_children() {
        let mut g = parse_grammar("S -> f(a(#,#), f(a(#,#), a(#,#)))").unwrap();
        let d = digram(&g, "a", 0, "#");
        let stats = run_round(&mut g, &d, false);
        assert_eq!(stats.replacements, 3);
    }

    #[test]
    fn root_occurrence_of_a_rule_is_replaced_in_place() {
        // The a(b(..)..) occurrence is entirely inside rule R whose root is the
        // a-node: replacement happens locally and all callers benefit.
        let mut g = parse_grammar("S -> f(R, R)\nR -> a(b(#,#),#)").unwrap();
        let d = digram(&g, "a", 0, "b");
        let stats = run_round(&mut g, &d, false);
        assert_eq!(stats.replacements, 1);
        assert_eq!(stats.inlinings, 0);
    }
}
