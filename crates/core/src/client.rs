//! Synchronous, reconnecting, pipelined client for the
//! [`core::server`](crate::server) wire protocol.
//!
//! One [`Client`] owns one socket shared by any number of threads:
//! requests are written under a single writer lock (frames never
//! interleave), replies are dispatched by request id under a
//! reader-leader protocol — whichever waiting thread finds no leader
//! becomes it, reads exactly one frame, posts the reply into a shared
//! map by id, and hands leadership back. This mirrors the WAL's
//! group-commit leadership and is what makes **pipelining** work: N
//! threads (or one thread using [`Client::begin`]) can have N requests
//! in flight on one socket, which is how the server's drain policy gets
//! whole windows of batches to coalesce into one fsync.
//!
//! # Reconnection
//!
//! The client stores its [`Endpoint`], not just a stream. When the
//! connection dies (I/O error, timeout, server restart), every in-flight
//! request fails with a storage error, the socket is dropped, and the
//! **next** request dials a fresh connection. Failed requests are *not*
//! resent automatically: an `ApplyBatch` whose reply was lost may or may
//! not have committed (the classic exactly-once impossibility), so the
//! retry decision belongs to the caller, who knows whether the batch is
//! idempotent.
//!
//! # Error mapping
//!
//! A [`Response::Error`] reply maps onto [`RepairError`] by its
//! [`ErrorCode`]: `Protocol` → [`RepairError::Protocol`], everything
//! else → [`RepairError::Storage`] with the code name prefixed to the
//! message (`timeout: …`, `backpressure: …`), so callers can branch on
//! the prefix without a wire-level enum in their signatures.

use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::query::QueryMatches;
use crate::server::{
    decode_response, encode_request, read_frame, Conn, ErrorCode, FrameOutcome, Request, Response,
    WireBatchStats, WireCheckpoint, WireStats, DEFAULT_MAX_FRAME_LEN,
};
use crate::store::DocId;

/// Where a [`Client`] dials (kept for reconnection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address in `host:port` form.
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Client tuning.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Reject response frames longer than this before allocating.
    pub max_frame_len: u32,
    /// Per-read socket timeout; a reply slower than this poisons the
    /// connection (the server's own reply timeout should be shorter).
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(60),
        }
    }
}

struct WriteState {
    /// The live connection's writing half (`None` between connections).
    conn: Option<Conn>,
    /// Bumped on every reconnect so a stale reader can't poison the
    /// replacement connection.
    epoch: u64,
    next_id: u64,
}

struct ReadState {
    /// Request ids written but not yet answered.
    inflight: HashSet<u64>,
    /// Replies posted by the reader leader, keyed by request id.
    ready: HashMap<u64, Result<Response>>,
    /// A thread is currently reading one frame.
    leader: bool,
}

struct Inner {
    endpoint: Endpoint,
    config: ClientConfig,
    /// Lock order: `write` before `read`, never the reverse.
    write: Mutex<WriteState>,
    read: Mutex<ReadState>,
    cond: Condvar,
}

/// A pipelined request in flight; redeem it with [`Pending::wait`].
#[must_use = "a pipelined request's reply must be waited on"]
pub struct Pending {
    inner: Arc<Inner>,
    id: u64,
    /// Reading half of the connection the request was written to.
    conn: Conn,
    epoch: u64,
}

/// A synchronous wire-protocol client (see the module docs). Cheap to
/// clone; clones share the socket and its pipeline.
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// Creates a client for `endpoint` with default tuning. Dialing is
    /// lazy: the first request connects.
    pub fn connect(endpoint: Endpoint) -> Client {
        Client::with_config(endpoint, ClientConfig::default())
    }

    /// Creates a client with explicit tuning (dialing stays lazy).
    pub fn with_config(endpoint: Endpoint, config: ClientConfig) -> Client {
        Client {
            inner: Arc::new(Inner {
                endpoint,
                config,
                write: Mutex::new(WriteState {
                    conn: None,
                    epoch: 0,
                    next_id: 1,
                }),
                read: Mutex::new(ReadState {
                    inflight: HashSet::new(),
                    ready: HashMap::new(),
                    leader: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Convenience constructor for a TCP endpoint.
    pub fn connect_tcp(addr: impl Into<String>) -> Client {
        Client::connect(Endpoint::Tcp(addr.into()))
    }

    /// Convenience constructor for a unix-socket endpoint.
    #[cfg(unix)]
    pub fn connect_unix(path: impl Into<PathBuf>) -> Client {
        Client::connect(Endpoint::Unix(path.into()))
    }

    fn dial(&self) -> Result<Conn> {
        let conn = match &self.inner.endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(|s| {
                    let _ = s.set_nodelay(true);
                    Conn::Tcp(s)
                })
                .map_err(|e| RepairError::Storage {
                    detail: format!("connecting to {addr}: {e}"),
                })?,
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Conn::Unix)
                .map_err(|e| RepairError::Storage {
                    detail: format!("connecting to {}: {e}", path.display()),
                })?,
        };
        conn.set_read_timeout(Some(self.inner.config.read_timeout))
            .map_err(|e| RepairError::Storage {
                detail: format!("setting read timeout: {e}"),
            })?;
        Ok(conn)
    }

    /// Writes one request without waiting for its reply — the pipelining
    /// primitive. Several `begin`s may be outstanding on one socket;
    /// redeem each with [`Pending::wait`] (any order).
    pub fn begin(&self, request: &Request) -> Result<Pending> {
        use std::io::Write as _;
        let mut ws = self.inner.write.lock().expect("client lock never poisoned");
        if ws.conn.is_none() {
            ws.conn = Some(self.dial()?);
        }
        let id = ws.next_id;
        ws.next_id += 1;
        let epoch = ws.epoch;
        let frame = encode_request(id, request);
        let write_result = {
            let conn = ws.conn.as_mut().expect("connected above");
            conn.write_all(&frame).and_then(|_| conn.flush())
        };
        if let Err(e) = write_result {
            ws.conn = None;
            ws.epoch += 1;
            return Err(RepairError::Storage {
                detail: format!("connection lost writing request: {e}"),
            });
        }
        let reader = ws
            .conn
            .as_ref()
            .expect("connected above")
            .try_clone()
            .map_err(|e| RepairError::Storage {
                detail: format!("cloning socket reader: {e}"),
            })?;
        // write → read lock order.
        self.inner
            .read
            .lock()
            .expect("client lock never poisoned")
            .inflight
            .insert(id);
        drop(ws);
        Ok(Pending {
            inner: Arc::clone(&self.inner),
            id,
            conn: reader,
            epoch,
        })
    }

    /// Sends one request and blocks for its reply.
    pub fn request(&self, request: &Request) -> Result<Response> {
        self.begin(request)?.wait()
    }

    fn expect_ok<T>(
        result: Result<Response>,
        extract: impl FnOnce(Response) -> std::result::Result<T, Response>,
    ) -> Result<T> {
        match result? {
            Response::Error { code, message } => Err(match code {
                ErrorCode::Protocol => RepairError::Protocol { detail: message },
                ErrorCode::Store => RepairError::Storage { detail: message },
                ErrorCode::Timeout => RepairError::Storage {
                    detail: format!("timeout: {message}"),
                },
                ErrorCode::Backpressure => RepairError::Storage {
                    detail: format!("backpressure: {message}"),
                },
            }),
            other => extract(other).map_err(|unexpected| RepairError::Protocol {
                detail: format!("unexpected response variant: {unexpected:?}"),
            }),
        }
    }

    /// Loads a document on the server; the returned id is durable.
    pub fn load_xml(&self, tree: &XmlTree) -> Result<DocId> {
        Self::expect_ok(
            self.request(&Request::LoadXml { tree: tree.clone() }),
            |r| match r {
                Response::Loaded { doc } => Ok(doc),
                other => Err(other),
            },
        )
    }

    /// Applies one batch and blocks until the server acks it as durable.
    pub fn apply_batch(&self, doc: DocId, ops: Vec<UpdateOp>) -> Result<WireBatchStats> {
        self.begin_apply_batch(doc, ops)?.wait_applied()
    }

    /// Pipelined [`apply_batch`](Client::apply_batch): writes the request
    /// and returns immediately; redeem with [`PendingApply::wait_applied`].
    pub fn begin_apply_batch(&self, doc: DocId, ops: Vec<UpdateOp>) -> Result<PendingApply> {
        Ok(PendingApply {
            pending: self.begin(&Request::ApplyBatch { doc, ops })?,
        })
    }

    /// Evaluates a path query against the document's current snapshot.
    pub fn query(&self, doc: DocId, path: &str) -> Result<QueryMatches> {
        Self::expect_ok(
            self.request(&Request::Query {
                doc,
                path: path.into(),
            }),
            |r| match r {
                Response::Matches { matches } => Ok(matches),
                other => Err(other),
            },
        )
    }

    /// Serializes the document's current snapshot to XML text.
    pub fn to_xml(&self, doc: DocId) -> Result<String> {
        Self::expect_ok(self.request(&Request::ToXml { doc }), |r| match r {
            Response::Xml { text } => Ok(text),
            other => Err(other),
        })
    }

    /// Asks the server for a fuzzy paged checkpoint.
    pub fn checkpoint(&self) -> Result<WireCheckpoint> {
        Self::expect_ok(self.request(&Request::Checkpoint), |r| match r {
            Response::CheckpointDone { report } => Ok(report),
            other => Err(other),
        })
    }

    /// Fetches server, store and queue counters.
    pub fn stats(&self) -> Result<WireStats> {
        Self::expect_ok(self.request(&Request::Stats), |r| match r {
            Response::Stats { stats } => Ok(stats),
            other => Err(other),
        })
    }
}

impl Pending {
    /// Blocks until this request's reply arrives (other threads' replies
    /// are dispatched to them, not discarded).
    pub fn wait(self) -> Result<Response> {
        let inner = Arc::clone(&self.inner);
        let Pending {
            id,
            mut conn,
            epoch,
            ..
        } = self;
        let max_len = inner.config.max_frame_len;
        let mut rs = inner.read.lock().expect("client lock never poisoned");
        loop {
            if let Some(reply) = rs.ready.remove(&id) {
                return reply;
            }
            if !rs.inflight.contains(&id) {
                return Err(RepairError::Storage {
                    detail: "reply already consumed".into(),
                });
            }
            if !rs.leader {
                rs.leader = true;
                drop(rs);
                let outcome = read_frame(&mut conn, None, max_len);
                rs = inner.read.lock().expect("client lock never poisoned");
                rs.leader = false;
                match outcome {
                    FrameOutcome::Payload(payload) => match decode_response(&payload) {
                        Ok((rid, response)) => {
                            if rs.inflight.remove(&rid) {
                                rs.ready.insert(rid, Ok(response));
                            }
                        }
                        Err(e) => {
                            // Framing is intact but the payload is not a
                            // response we understand; the stream itself
                            // is still aligned, yet we cannot know whose
                            // reply this was — poison everything.
                            rs = poison(&inner, rs, epoch, e.to_string());
                        }
                    },
                    FrameOutcome::Eof => {
                        rs = poison(&inner, rs, epoch, "server closed the connection".into());
                    }
                    FrameOutcome::Io(e) | FrameOutcome::Corrupt(e) => {
                        rs = poison(&inner, rs, epoch, e);
                    }
                    FrameOutcome::Stopped => unreachable!("client reads pass no stop flag"),
                }
                inner.cond.notify_all();
                continue;
            }
            rs = inner.cond.wait(rs).expect("client lock never poisoned");
        }
    }
}

/// Fails every in-flight request and drops the connection so the next
/// request redials. Releases the read lock before taking the write lock
/// (write → read order is never inverted) and hands back a fresh read
/// guard; the error results are posted before the lock is released, so
/// no waiter can observe a half-poisoned pipeline.
fn poison<'a>(
    inner: &'a Inner,
    mut rs: std::sync::MutexGuard<'a, ReadState>,
    epoch: u64,
    detail: String,
) -> std::sync::MutexGuard<'a, ReadState> {
    let ids: Vec<u64> = rs.inflight.drain().collect();
    for id in ids {
        rs.ready.insert(
            id,
            Err(RepairError::Storage {
                detail: format!("connection lost: {detail}"),
            }),
        );
    }
    drop(rs);
    {
        let mut ws = inner.write.lock().expect("client lock never poisoned");
        // A stale reader (from before a reconnect) must not tear down the
        // replacement connection — the epoch check pins the victim.
        if ws.epoch == epoch {
            if let Some(conn) = ws.conn.take() {
                conn.shutdown();
            }
            ws.epoch += 1;
        }
    }
    inner.read.lock().expect("client lock never poisoned")
}

/// A pipelined [`Client::begin_apply_batch`] in flight.
#[must_use = "a pipelined batch's ack must be waited on"]
pub struct PendingApply {
    pending: Pending,
}

impl PendingApply {
    /// Blocks until the server acks the batch as durable.
    pub fn wait_applied(self) -> Result<WireBatchStats> {
        Client::expect_ok(self.pending.wait(), |r| match r {
            Response::Applied { stats } => Ok(stats),
            other => Err(other),
        })
    }
}
