//! Minimal `std`-only concurrency primitives for the concurrent store.
//!
//! The workspace is offline, so the store cannot lean on `arc-swap`,
//! `crossbeam`, or similar crates. [`ArcSwapCell`] is the one primitive the
//! snapshot machinery needs: an atomically swappable `Arc<T>` whose readers
//! never take a lock. It is the publication point of the store's MVCC
//! red/green split — writers prepare a new snapshot aside and [`store`]
//! it, readers [`load`] whichever snapshot is current and keep using it for
//! as long as they hold the returned `Arc`, even across later swaps.
//!
//! [`store`]: ArcSwapCell::store
//! [`load`]: ArcSwapCell::load

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>` with lock-free readers.
///
/// # How it works
///
/// The cell holds one strong reference through a raw pointer. A reader
/// announces itself on a counter, loads the pointer, bumps the `Arc` strong
/// count, and retires from the counter — three atomic operations and no
/// locks. A writer (serialized through a `Mutex`) swaps the pointer and then
/// waits for the reader counter to drain to zero before releasing the old
/// cell reference, so it can never free an `Arc` a reader is still in the
/// middle of upgrading.
///
/// # Why this is sound
///
/// All atomics are `SeqCst`, so every execution has one total order over
/// them. Consider a reader that loaded the *old* pointer concurrently with a
/// writer's swap. The reader's counter increment precedes its pointer load,
/// which (having returned the old value) precedes the writer's swap, which
/// precedes the writer's first read of the counter in its drain loop. The
/// reader only decrements the counter *after* `Arc::increment_strong_count`
/// completes, so every counter value the writer observes before that decrement
/// is ≥ 1: the drain loop cannot finish, and the old `Arc` cannot be
/// released, until the reader holds its own strong reference. Readers that
/// load the *new* pointer are safe unconditionally — the cell's own
/// reference keeps it alive and subsequent writers drain the counter the
/// same way.
///
/// # Trade-offs
///
/// Writers spin (with `yield_now`) until in-flight readers clear a critical
/// section of three atomic operations — nanoseconds in practice. This
/// optimizes exactly for the store's profile: snapshot loads on every read,
/// swaps only on publication and recompression.
pub struct ArcSwapCell<T> {
    ptr: AtomicPtr<T>,
    readers: AtomicUsize,
    swap: Mutex<()>,
}

impl<T> ArcSwapCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwapCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            swap: Mutex::new(()),
        }
    }

    /// Returns the current value. Lock-free: three atomic operations, no
    /// blocking, regardless of concurrent [`ArcSwapCell::store`]s.
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and is kept alive by the
        // cell's own strong reference; the reader counter (see the type-level
        // soundness argument) keeps any writer from releasing that reference
        // before `increment_strong_count` returns.
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        arc
    }

    /// Atomically replaces the value. In-flight `load`s finish on whichever
    /// value they saw; later `load`s see `value`.
    pub fn store(&self, value: Arc<T>) {
        let _serialize = self.swap.lock().expect("ArcSwapCell writers never panic");
        let old = self.ptr.swap(Arc::into_raw(value).cast_mut(), Ordering::SeqCst);
        // Wait out readers that may have loaded `old` but not yet upgraded it.
        while self.readers.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: the pointer was leaked by `new` or a previous `store`, and
        // no reader can still be mid-upgrade on it after the drain above.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for ArcSwapCell<T> {
    fn drop(&mut self) {
        let ptr = *self.ptr.get_mut();
        // SAFETY: `&mut self` means no concurrent readers; this releases the
        // cell's own strong reference from `new`/`store`.
        unsafe { drop(Arc::from_raw(ptr)) };
    }
}

impl<T> fmt::Debug for ArcSwapCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwapCell").finish_non_exhaustive()
    }
}

// SAFETY: the cell owns an `Arc<T>` and hands out clones of it across
// threads, exactly like `Arc<T>` itself — which requires `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for ArcSwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwapCell<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_the_stored_value_and_old_handles_survive_swaps() {
        let cell = ArcSwapCell::new(Arc::new(1u64));
        let one = cell.load();
        cell.store(Arc::new(2u64));
        assert_eq!(*one, 1, "a held handle must survive the swap");
        assert_eq!(*cell.load(), 2);
        drop(one);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn dropping_the_cell_releases_the_value() {
        let value = Arc::new(vec![1u8, 2, 3]);
        let cell = ArcSwapCell::new(value.clone());
        assert_eq!(Arc::strong_count(&value), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&value), 1);
    }

    /// Readers hammer `load` while a writer swaps self-consistent payloads;
    /// every observed payload must be internally consistent (no torn or
    /// freed values). Runs long enough to get preempted mid-critical-section
    /// even on a single-core host.
    #[test]
    fn concurrent_loads_and_stores_never_observe_a_freed_value() {
        // A payload that checks its own integrity: `sum` must equal the sum
        // of `parts`, which a use-after-free or torn read would break.
        struct Payload {
            parts: Vec<u64>,
            sum: u64,
        }
        fn payload(seed: u64) -> Arc<Payload> {
            let parts: Vec<u64> = (0..8).map(|i| seed.wrapping_mul(31).wrapping_add(i)).collect();
            let sum = parts.iter().sum();
            Arc::new(Payload { parts, sum })
        }

        let cell = ArcSwapCell::new(payload(0));
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let p = cell.load();
                        assert_eq!(p.parts.iter().sum::<u64>(), p.sum);
                    }
                });
            }
            scope.spawn(|| {
                for seed in 1..2_000u64 {
                    cell.store(payload(seed));
                    if seed % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        let last = cell.load();
        assert_eq!(last.parts.iter().sum::<u64>(), last.sum);
    }
}
