//! `DomStore` — a multi-document session with a shared symbol table and
//! cross-document recompression scheduling.
//!
//! The paper's motivating scenario is a long-lived service that keeps many
//! XML documents in memory in compressed form while serving interleaved reads
//! and updates. [`crate::session::CompressedDom`] is the single-document
//! handle; `DomStore` generalizes it to a collection: documents are loaded
//! into the store, addressed by [`DocId`], and served through the same read
//! and update surface the single-document handle offers — cursors, streaming
//! preorder, path queries, point label reads, single and batched updates —
//! each document with its own lazily revalidated [`NavTables`] snapshot.
//!
//! # Shared symbol table
//!
//! Collections of similar documents share most of their label alphabet (the
//! observation behind structural self-indexes over XML collections), so the
//! store owns one **master** [`SymbolTable`] and loads every document
//! against it: the document's labels are interned into the master, the
//! master's tail is sealed into an immutable shared segment
//! ([`SymbolTable::seal`]), and the document's grammar receives a clone that
//! *shares* the segments instead of copying the strings. The invariants:
//!
//! * ids below a table's [`SymbolTable::shared_len`] mean the **same label in
//!   every document** of the store (and in the master) — the property a
//!   cross-document index or query planner needs;
//! * labels interned by later updates (fresh rename labels, fragment labels)
//!   go to the owning document's private local tail and never perturb other
//!   documents — updating document A cannot change document B's
//!   serialization, ids, or cached tables;
//! * one resident copy of the common alphabet serves the whole store: with N
//!   similar documents the per-store label-table footprint is O(alphabet +
//!   Σ private tails) instead of N × O(alphabet) (reported by
//!   [`DomStore::symbol_stats`], quantified by the `store_multidoc` bench).
//!
//! Existing grammars join through [`DomStore::load_grammar`], which re-interns
//! their alphabet into the master ([`SymbolTable::absorb`]) and relabels the
//! rule bodies ([`sltgrammar::Grammar::relabel_terms`]) — a no-op when the id
//! assignment already agrees.
//!
//! # Debt-based recompression scheduling
//!
//! The single-document handle recompresses after a fixed number of updates
//! (`recompress_every`), which generalizes badly to a store: a hot document
//! stalls its readers at fixed intervals regardless of how little its grammar
//! actually grew, while a cold-but-drifted document never reaches its counter
//! and never recompresses. The store replaces the counter with **update
//! debt**: per document, the edge-count growth since its last recompression
//! (`debt = edges_now − edges_at_last_recompress`), i.e. exactly the blow-up
//! GrammarRePair exists to undo. The scheduler
//! ([`DomStore::maintain`]) drains the *worst offenders first* under a
//! configurable budget:
//!
//! * a document becomes **eligible** when its debt reaches
//!   [`SchedulerConfig::debt_threshold`];
//! * one maintenance sweep recompresses eligible documents in decreasing debt
//!   order until [`SchedulerConfig::drain_budget`] (measured in grammar edges
//!   processed, a proxy for recompression work) is exhausted — at least one
//!   eligible document is always drained, so a single oversized document
//!   cannot starve maintenance forever;
//! * with [`SchedulerConfig::auto`] (the default) a sweep runs after every
//!   update or batch, so callers get bounded-pause maintenance for free;
//!   services that prefer explicit maintenance windows set `auto: false` and
//!   call [`DomStore::maintain`] themselves.
//!
//! Batches are the natural ingestion unit (FLUX-style functional update
//! programs emit per-document operation sequences); debt is measured from
//! actual growth, so a 100-op batch that barely grew the grammar schedules no
//! work while a single pathological insert can make a document immediately
//! eligible.
//!
//! # Example
//!
//! ```
//! use grammar_repair::store::DomStore;
//! use xmltree::parse::parse_xml;
//! use xmltree::updates::UpdateOp;
//!
//! let mut store = DomStore::new();
//! let a = store.load_xml(&parse_xml("<log><e/><e/></log>").unwrap()).unwrap();
//! let b = store.load_xml(&parse_xml("<log><e/><e/><e/></log>").unwrap()).unwrap();
//! // One shared alphabet: both documents agree on every load-time id.
//! assert_eq!(
//!     store.grammar(a).unwrap().symbols.get("e"),
//!     store.grammar(b).unwrap().symbols.get("e"),
//! );
//! // Updates address one document and never perturb the others.
//! store.apply(a, &UpdateOp::Rename { target: 1, label: "entry".into() }).unwrap();
//! assert_eq!(store.label_at(a, 1).unwrap(), "entry");
//! assert_eq!(store.query_str(b, "//e").unwrap().len(), 3);
//! ```

use std::sync::Arc;

use sltgrammar::fingerprint::derived_size;
use sltgrammar::{Grammar, SymbolTable};
use xmltree::binary::from_binary;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::navigate::{Cursor, NavTables, PreorderLabels};
use crate::query::{PathQuery, QueryMatches};
use crate::repair::{GrammarRePair, GrammarRePairConfig, RepairStats};
use crate::update::{apply_batch, apply_update, BatchStats, UpdateStats};

/// The distinct terminals occurring in `g`'s rule bodies — a document's own
/// alphabet, as opposed to whatever else its symbol table carries.
fn used_terms(g: &Grammar) -> std::collections::HashSet<sltgrammar::TermId> {
    let mut used = std::collections::HashSet::new();
    for nt in g.nonterminals() {
        let rhs = &g.rule(nt).rhs;
        for node in rhs.preorder() {
            if let sltgrammar::NodeKind::Term(t) = rhs.kind(node) {
                used.insert(t);
            }
        }
    }
    used
}

/// Store-level identifier of a loaded document. Ids are never reused within
/// one store, so a stale id after [`DomStore::remove`] fails cleanly with
/// [`RepairError::NoSuchDocument`] instead of addressing a different document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

impl DocId {
    /// Index into the store's document vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Policy of the store-level recompression scheduler (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// A document becomes eligible for recompression once its update debt
    /// (edge growth since the last recompression) reaches this many edges.
    /// Treated as at least 1 — zero-debt documents are never recompressed.
    pub debt_threshold: usize,
    /// Maximum total work (sum of the drained documents' current edge
    /// counts) per maintenance sweep; `0` means unbounded. At least one
    /// eligible document is drained per sweep regardless of the budget.
    pub drain_budget: usize,
    /// Run a maintenance sweep automatically after every update or batch.
    pub auto: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            debt_threshold: 512,
            drain_budget: 1 << 16,
            auto: true,
        }
    }
}

/// Outcome of one maintenance sweep: which documents were recompressed.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// `(document, recompression stats)` in drain order (worst debt first).
    pub drained: Vec<(DocId, RepairStats)>,
}

impl MaintenanceReport {
    /// Whether the sweep recompressed anything.
    pub fn is_empty(&self) -> bool {
        self.drained.is_empty()
    }
}

/// Resident label-table footprint of a store (estimated heap bytes),
/// separating the shared alphabet from private per-document tails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolStats {
    /// Bytes of the shared segments, each resident allocation counted once
    /// across the master and every document.
    pub shared_bytes: usize,
    /// Bytes of the private local tails (master + all documents).
    pub private_bytes: usize,
    /// What per-document tables would occupy instead: each document
    /// privately interning exactly the labels its grammar uses (what
    /// [`crate::session::CompressedDom::from_xml`]-style loading builds) —
    /// a conservative baseline, since a real private table would also keep
    /// labels that updates have since removed from the document.
    pub unshared_bytes: usize,
    /// Number of symbols in the master table.
    pub master_symbols: usize,
}

impl SymbolStats {
    /// Actual resident total under sharing.
    pub fn resident_bytes(&self) -> usize {
        self.shared_bytes + self.private_bytes
    }
}

/// One document of the store.
#[derive(Debug, Clone)]
struct DocState {
    grammar: Grammar,
    /// Lazily built, version-validated navigation tables (same contract as
    /// the single-document handle's cache).
    nav: Option<Arc<NavTables>>,
    /// Edge count right after the last recompression (or load) — the debt
    /// baseline.
    baseline_edges: usize,
    /// Cached current edge count, maintained from update statistics so debt
    /// checks never walk the grammar.
    current_edges: usize,
    total_updates: usize,
    recompressions: usize,
}

impl DocState {
    fn debt(&self) -> usize {
        self.current_edges.saturating_sub(self.baseline_edges)
    }
}

/// A multi-document session: many compressed documents behind one shared
/// symbol table and one recompression scheduler (see the module docs).
#[derive(Debug, Clone)]
pub struct DomStore {
    /// Master symbol table; every interned load-time label lives in one of
    /// its shared segments.
    symbols: SymbolTable,
    docs: Vec<Option<DocState>>,
    repair: GrammarRePair,
    scheduler: SchedulerConfig,
}

impl Default for DomStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DomStore {
    /// Creates an empty store with the default scheduler.
    pub fn new() -> Self {
        DomStore {
            symbols: SymbolTable::new(),
            docs: Vec::new(),
            repair: GrammarRePair::default(),
            scheduler: SchedulerConfig::default(),
        }
    }

    /// Uses a custom scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Uses a custom recompression configuration for every document.
    pub fn with_config(mut self, config: GrammarRePairConfig) -> Self {
        self.set_config(config);
        self
    }

    /// Replaces the recompression configuration in place.
    pub fn set_config(&mut self, config: GrammarRePairConfig) {
        self.repair = GrammarRePair::new(config);
    }

    /// The current scheduler policy.
    pub fn scheduler(&self) -> SchedulerConfig {
        self.scheduler
    }

    /// Replaces the scheduler policy.
    pub fn set_scheduler(&mut self, scheduler: SchedulerConfig) {
        self.scheduler = scheduler;
    }

    // ----- loading and membership -----

    /// Compresses `xml` against the shared symbol table and adds it to the
    /// store. The document's load-time alphabet is interned into the master
    /// table and sealed, so similar documents share one resident alphabet.
    ///
    /// Fails (without adding the document or touching the master table) when
    /// a label clashes with a different rank already interned in the store.
    pub fn load_xml(&mut self, xml: &XmlTree) -> Result<DocId> {
        // Intern into a scratch clone and commit only on success: a rank
        // conflict partway through the document must not leave its earlier
        // labels behind in the master (the clone shares the sealed segments,
        // so this copies at most the usually-empty local tail).
        let mut master = self.symbols.clone();
        let (grammar, _) = self.repair.compress_xml_shared(xml, &mut master)?;
        self.symbols = master;
        Ok(self.push_doc(grammar))
    }

    /// Adds an already-compressed grammar to the store, rebasing it onto the
    /// shared symbol table: its alphabet is re-interned into the master
    /// ([`SymbolTable::absorb`]), its rule bodies are relabelled when the id
    /// assignment differs, and its table is replaced by a clone of the
    /// master's — after which the invariants of the module docs hold for it
    /// like for any loaded document.
    ///
    /// Only labels the grammar's rule bodies actually use are interned —
    /// stale entries in the foreign table (e.g. labels renamed away before
    /// the grammar left another store) neither join the shared alphabet nor
    /// cause spurious rank conflicts. Fails (without adding the document or
    /// touching the master table) when a *used* label clashes with a
    /// different rank already interned in the store.
    pub fn load_grammar(&mut self, mut grammar: Grammar) -> Result<DocId> {
        let used = used_terms(&grammar);
        // Intern into a scratch clone first: interning keeps the symbols
        // added before a rank conflict, and a half-absorbed foreign alphabet
        // must not poison the master on failure. The clone shares the sealed
        // segments, so this copies at most the (usually empty) local tail.
        let mut master = self.symbols.clone();
        let mut map = Vec::with_capacity(grammar.symbols.len());
        for (id, name, rank) in grammar.symbols.iter() {
            // Unused ids keep themselves as placeholders: they never occur
            // in a body, so `relabel_terms` never reads them, and an
            // all-identity map still short-circuits the relabel walk.
            map.push(if used.contains(&id) {
                master.intern(name, rank)?
            } else {
                id
            });
        }
        master.seal();
        self.symbols = master;
        grammar.relabel_terms(&map);
        grammar.symbols = self.symbols.clone();
        Ok(self.push_doc(grammar))
    }

    fn push_doc(&mut self, grammar: Grammar) -> DocId {
        let edges = grammar.edge_count();
        let id = DocId(self.docs.len() as u32);
        self.docs.push(Some(DocState {
            grammar,
            nav: None,
            baseline_edges: edges,
            current_edges: edges,
            total_updates: 0,
            recompressions: 0,
        }));
        id
    }

    /// Removes a document and returns its grammar (with its private table).
    pub fn remove(&mut self, doc: DocId) -> Result<Grammar> {
        let state = self
            .docs
            .get_mut(doc.index())
            .and_then(Option::take)
            .ok_or(RepairError::NoSuchDocument { id: doc.0 })?;
        Ok(state.grammar)
    }

    /// Whether `doc` names a live document.
    pub fn contains(&self, doc: DocId) -> bool {
        self.docs
            .get(doc.index())
            .map(|d| d.is_some())
            .unwrap_or(false)
    }

    /// Ids of all live documents, in load order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        (0..self.docs.len() as u32)
            .map(DocId)
            .filter(|&id| self.contains(id))
            .collect()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.docs.iter().filter(|d| d.is_some()).count()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn state(&self, doc: DocId) -> Result<&DocState> {
        self.docs
            .get(doc.index())
            .and_then(Option::as_ref)
            .ok_or(RepairError::NoSuchDocument { id: doc.0 })
    }

    fn state_mut(&mut self, doc: DocId) -> Result<&mut DocState> {
        self.docs
            .get_mut(doc.index())
            .and_then(Option::as_mut)
            .ok_or(RepairError::NoSuchDocument { id: doc.0 })
    }

    // ----- shared-table introspection -----

    /// Read-only access to the master symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Resident label-table footprint of the store, deduplicating shared
    /// segments across the master and all documents (see [`SymbolStats`]).
    pub fn symbol_stats(&self) -> SymbolStats {
        let mut seen = std::collections::HashSet::new();
        let mut stats = SymbolStats {
            master_symbols: self.symbols.len(),
            ..SymbolStats::default()
        };
        let mut visit = |table: &SymbolTable, stats: &mut SymbolStats| {
            for (key, bytes) in table.shared_segments() {
                if seen.insert(key) {
                    stats.shared_bytes += bytes;
                }
            }
            stats.private_bytes += table.local_heap_bytes();
        };
        visit(&self.symbols, &mut stats);
        for doc in self.docs.iter().flatten() {
            visit(&doc.grammar.symbols, &mut stats);
            // Per-document baseline: only the labels this grammar uses.
            stats.unshared_bytes += used_terms(&doc.grammar)
                .into_iter()
                .map(|t| doc.grammar.symbols.symbol_heap_bytes(t))
                .sum::<usize>();
        }
        stats
    }

    // ----- per-document read surface -----

    /// Read-only access to a document's grammar.
    pub fn grammar(&self, doc: DocId) -> Result<&Grammar> {
        Ok(&self.state(doc)?.grammar)
    }

    /// Current grammar size in edges (the paper's size measure).
    pub fn edge_count(&self, doc: DocId) -> Result<usize> {
        Ok(self.state(doc)?.current_edges)
    }

    /// Number of nodes of the document's (uncompressed) binary tree.
    pub fn derived_size(&self, doc: DocId) -> Result<u128> {
        Ok(derived_size(&self.state(doc)?.grammar))
    }

    /// Update debt of a document: edge growth since its last recompression.
    pub fn debt(&self, doc: DocId) -> Result<usize> {
        Ok(self.state(doc)?.debt())
    }

    /// Number of updates applied to a document so far.
    pub fn total_updates(&self, doc: DocId) -> Result<usize> {
        Ok(self.state(doc)?.total_updates)
    }

    /// Number of recompressions of a document so far (scheduled or forced).
    pub fn recompressions(&self, doc: DocId) -> Result<usize> {
        Ok(self.state(doc)?.recompressions)
    }

    /// The shared [`NavTables`] snapshot for a document's current grammar
    /// version, revalidated against the rule version counters and rebuilt
    /// lazily after any mutation — the same contract as
    /// [`crate::session::CompressedDom::nav_tables`], held per document.
    pub fn nav_tables(&mut self, doc: DocId) -> Result<Arc<NavTables>> {
        let state = self.state_mut(doc)?;
        if let Some(tables) = &state.nav {
            if tables.is_current(&state.grammar) {
                return Ok(tables.clone());
            }
        }
        let tables = Arc::new(NavTables::build(&state.grammar));
        state.nav = Some(tables.clone());
        Ok(tables)
    }

    /// A navigation cursor at a document's root, backed by its cached tables.
    pub fn cursor(&mut self, doc: DocId) -> Result<Cursor<'_>> {
        let tables = self.nav_tables(doc)?;
        let state = self.state(doc)?;
        Ok(Cursor::with_tables(&state.grammar, tables))
    }

    /// A streaming preorder label iterator over a document.
    pub fn preorder_labels(&mut self, doc: DocId) -> Result<PreorderLabels<'_>> {
        let tables = self.nav_tables(doc)?;
        let state = self.state(doc)?;
        Ok(PreorderLabels::with_tables(&state.grammar, tables))
    }

    /// Label of the node at `preorder_index` of a document's binary tree — a
    /// read-only positional jump through the cached tables (the grammar is
    /// never mutated by reads).
    pub fn label_at(&mut self, doc: DocId, preorder_index: u128) -> Result<String> {
        let mut cursor = self.cursor(doc)?;
        if cursor.node_at_preorder(preorder_index) {
            return Ok(cursor.label().to_string());
        }
        drop(cursor);
        Err(RepairError::TargetOutOfRange {
            index: preorder_index,
            size: derived_size(&self.state(doc)?.grammar),
        })
    }

    /// Materializes a path query against a document through the memoized,
    /// output-sensitive evaluator over its cached tables.
    pub fn query(&mut self, doc: DocId, query: &PathQuery) -> Result<QueryMatches> {
        let tables = self.nav_tables(doc)?;
        let state = self.state(doc)?;
        Ok(query.evaluate_with_tables(&state.grammar, &tables))
    }

    /// Parses and materializes a path query in one call.
    pub fn query_str(&mut self, doc: DocId, query: &str) -> Result<QueryMatches> {
        self.query(doc, &PathQuery::parse(query)?)
    }

    /// Counts the matches of a path query without materializing them.
    pub fn query_count(&self, doc: DocId, query: &PathQuery) -> Result<u128> {
        Ok(query.count(&self.state(doc)?.grammar))
    }

    /// Materializes a document back to an [`XmlTree`]. Only intended for
    /// small documents (tests, exports).
    pub fn to_xml(&self, doc: DocId) -> Result<XmlTree> {
        let grammar = &self.state(doc)?.grammar;
        let bin = sltgrammar::derive::val(grammar)?;
        Ok(from_binary(&bin, &grammar.symbols)?)
    }

    // ----- updates and scheduling -----

    /// Applies one update to a document, then (under [`SchedulerConfig::auto`])
    /// runs a maintenance sweep over the *whole store* — the drained documents
    /// need not include the updated one.
    ///
    /// Error semantics match the single-document handle: out-of-range targets
    /// are rejected before anything mutates; splice-time failures leave the
    /// isolation growth in place (debt measures it, so maintenance still
    /// happens — failing updates cannot starve recompression). Note that a
    /// sweep triggered by a *failing* update has no channel back to the
    /// caller (`Err` carries no report); callers tracking drain events
    /// exactly should observe [`DomStore::recompressions`] instead.
    pub fn apply(&mut self, doc: DocId, op: &UpdateOp) -> Result<(UpdateStats, MaintenanceReport)> {
        let state = self.state_mut(doc)?;
        let result = apply_update(&mut state.grammar, op);
        match &result {
            Err(RepairError::TargetOutOfRange { .. }) => {
                // Rejected before anything mutated: no debt, no maintenance.
                return result.map(|stats| (stats, MaintenanceReport::default()));
            }
            Ok(stats) => {
                state.current_edges = stats.edges_after;
                state.total_updates += 1;
            }
            Err(_) => {
                // Splice-time failure: isolation already grew the grammar.
                state.current_edges = state.grammar.edge_count();
            }
        }
        let report = if self.scheduler.auto {
            self.maintain()
        } else {
            MaintenanceReport::default()
        };
        result.map(|stats| (stats, report))
    }

    /// Applies an operation sequence to a document through the batched
    /// isolation pipeline (shared path prefixes isolated once per chunk),
    /// then (under [`SchedulerConfig::auto`]) runs a maintenance sweep.
    ///
    /// On error the document reflects every fully applied chunk, and the
    /// growth is tracked as debt (see [`crate::update::apply_batch`]).
    pub fn apply_batch(
        &mut self,
        doc: DocId,
        ops: &[UpdateOp],
    ) -> Result<(BatchStats, MaintenanceReport)> {
        let state = self.state_mut(doc)?;
        let result = apply_batch(&mut state.grammar, ops);
        match &result {
            Ok(stats) => {
                state.current_edges = stats.edges_after;
                state.total_updates += ops.len();
            }
            Err(_) => {
                state.current_edges = state.grammar.edge_count();
            }
        }
        let report = if self.scheduler.auto && !ops.is_empty() {
            self.maintain()
        } else {
            MaintenanceReport::default()
        };
        result.map(|stats| (stats, report))
    }

    /// Runs one maintenance sweep: recompresses eligible documents (debt ≥
    /// threshold) in decreasing debt order until the drain budget is spent.
    /// At least one eligible document is drained per sweep. Returns what was
    /// drained (possibly nothing).
    pub fn maintain(&mut self) -> MaintenanceReport {
        let threshold = self.scheduler.debt_threshold.max(1);
        let mut eligible: Vec<(usize, DocId)> = (0..self.docs.len() as u32)
            .map(DocId)
            .filter_map(|id| {
                let state = self.docs[id.index()].as_ref()?;
                (state.debt() >= threshold).then_some((state.debt(), id))
            })
            .collect();
        // Worst offender first; ties broken by id for determinism.
        eligible.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let budget = self.scheduler.drain_budget;
        let mut spent = 0usize;
        let mut report = MaintenanceReport::default();
        for (_, id) in eligible {
            let cost = self.docs[id.index()]
                .as_ref()
                .expect("eligible documents are live")
                .current_edges;
            if !report.drained.is_empty() && budget > 0 && spent.saturating_add(cost) > budget {
                break;
            }
            let stats = self.recompress(id).expect("eligible documents are live");
            spent = spent.saturating_add(cost);
            report.drained.push((id, stats));
            if budget > 0 && spent >= budget {
                break;
            }
        }
        report
    }

    /// Forces a recompression of one document, resetting its debt baseline.
    pub fn recompress(&mut self, doc: DocId) -> Result<RepairStats> {
        let repair = self.repair.clone();
        let state = self.state_mut(doc)?;
        let stats = repair.recompress(&mut state.grammar);
        state.current_edges = stats.output_edges;
        state.baseline_edges = stats.output_edges;
        state.recompressions += 1;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    fn doc(tag: &str, n: usize) -> XmlTree {
        let mut s = format!("<{tag}>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str(&format!("</{tag}>"));
        parse_xml(&s).unwrap()
    }

    /// Preorder indices (in the binary tree) of all element nodes of `xml`.
    fn element_positions(xml: &XmlTree) -> Vec<usize> {
        let mut symbols = SymbolTable::new();
        let bin = xmltree::binary::to_binary(xml, &mut symbols).unwrap();
        bin.preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| {
                matches!(bin.kind(n), sltgrammar::NodeKind::Term(t) if !symbols.is_null(t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn loading_shares_the_alphabet_and_round_trips() {
        let mut store = DomStore::new();
        let a = store.load_xml(&doc("feed", 6)).unwrap();
        let b = store.load_xml(&doc("feed", 9)).unwrap();
        let c = store.load_xml(&doc("blog", 4)).unwrap();
        assert_eq!(store.len(), 3);
        for (id, xml) in [(a, doc("feed", 6)), (b, doc("feed", 9)), (c, doc("blog", 4))] {
            assert_eq!(store.to_xml(id).unwrap().to_xml(), xml.to_xml());
        }
        let stats = store.symbol_stats();
        assert!(
            stats.resident_bytes() < stats.unshared_bytes,
            "sharing must beat per-document tables: {stats:?}"
        );
        // All load-time labels are shared; nothing is private yet.
        assert_eq!(stats.private_bytes, 0);
    }

    #[test]
    fn shared_ids_agree_across_documents() {
        let mut store = DomStore::new();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("feed", 5)).unwrap();
        let ga = store.grammar(a).unwrap();
        let gb = store.grammar(b).unwrap();
        for name in ["feed", "item", "title", "body", "p", "#"] {
            let ia = ga.symbols.get(name).expect("label interned");
            assert_eq!(Some(ia), gb.symbols.get(name), "id of `{name}` must agree");
            assert_eq!(Some(ia), store.symbols().get(name));
        }
    }

    #[test]
    fn reads_resolve_through_cached_tables() {
        let mut store = DomStore::new();
        let a = store.load_xml(&doc("feed", 5)).unwrap();
        let t1 = store.nav_tables(a).unwrap();
        let t2 = store.nav_tables(a).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(store.cursor(a).unwrap().label(), "feed");
        assert_eq!(store.label_at(a, 1).unwrap(), "item");
        assert_eq!(store.query_str(a, "//item").unwrap().len(), 5);
        let q = PathQuery::parse("//item/title").unwrap();
        assert_eq!(
            store.query(a, &q).unwrap().len() as u128,
            store.query_count(a, &q).unwrap()
        );
        let labels: usize = store.preorder_labels(a).unwrap().count();
        assert_eq!(labels as u128, store.derived_size(a).unwrap());
        // Reads never invalidate the snapshot.
        let t3 = store.nav_tables(a).unwrap();
        assert!(Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn updates_accrue_debt_and_the_scheduler_drains_the_worst_offender() {
        let mut store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 10,
            drain_budget: 0,
            auto: false,
        });
        let hot_xml = doc("feed", 10);
        let elements = element_positions(&hot_xml);
        let hot = store.load_xml(&hot_xml).unwrap();
        let cold = store.load_xml(&doc("blog", 10)).unwrap();
        assert_eq!(store.debt(hot).unwrap(), 0);
        for i in 0..6 {
            store
                .apply(
                    hot,
                    &UpdateOp::Rename {
                        target: elements[3 * i + 1],
                        label: format!("hot{i}"),
                    },
                )
                .unwrap();
        }
        assert!(store.debt(hot).unwrap() >= 10, "renames blow the grammar up");
        assert_eq!(store.debt(cold).unwrap(), 0);
        let report = store.maintain();
        assert_eq!(report.drained.len(), 1);
        assert_eq!(report.drained[0].0, hot);
        assert_eq!(store.debt(hot).unwrap(), 0);
        assert_eq!(store.recompressions(hot).unwrap(), 1);
        assert_eq!(store.recompressions(cold).unwrap(), 0, "cold docs are left alone");
        // Nothing eligible → empty sweep.
        assert!(store.maintain().is_empty());
    }

    #[test]
    fn auto_maintenance_runs_after_updates_and_batches() {
        let mut store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 8,
            drain_budget: 0,
            auto: true,
        });
        let xml = doc("feed", 12);
        let elements = element_positions(&xml);
        let a = store.load_xml(&xml).unwrap();
        let mut drained = 0;
        for i in 0..20 {
            let (_, report) = store
                .apply(
                    a,
                    &UpdateOp::Rename {
                        target: elements[2 * (i % 8) + 1],
                        label: format!("x{i}"),
                    },
                )
                .unwrap();
            drained += report.drained.len();
        }
        assert!(drained >= 1, "auto sweeps must fire once debt builds");
        assert_eq!(store.recompressions(a).unwrap(), drained);
        store.grammar(a).unwrap().validate().unwrap();
        // The cached edge count the debt policy runs on stays exact.
        assert_eq!(
            store.edge_count(a).unwrap(),
            store.grammar(a).unwrap().edge_count()
        );
    }

    #[test]
    fn drain_budget_bounds_one_sweep_but_starves_nobody() {
        let mut store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 1,
            drain_budget: 1, // absurdly small: every sweep drains exactly one doc
            auto: false,
        });
        let xml_a = doc("feed", 8);
        let xml_b = doc("blog", 8);
        let ea = element_positions(&xml_a);
        let eb = element_positions(&xml_b);
        let a = store.load_xml(&xml_a).unwrap();
        let b = store.load_xml(&xml_b).unwrap();
        for (i, id, elements) in [(0usize, a, &ea), (1, b, &eb), (2, a, &ea), (3, b, &eb)] {
            store
                .apply(
                    id,
                    &UpdateOp::Rename {
                        target: elements[2 * (i % 4) + 1],
                        label: format!("y{i}"),
                    },
                )
                .unwrap();
        }
        let first = store.maintain();
        assert_eq!(first.drained.len(), 1, "budget restricts the sweep");
        let worst = first.drained[0].0;
        let second = store.maintain();
        assert_eq!(second.drained.len(), 1);
        assert_ne!(second.drained[0].0, worst, "the other doc drains next sweep");
        assert!(store.maintain().is_empty());
    }

    #[test]
    fn removed_documents_fail_cleanly_and_ids_are_not_reused() {
        let mut store = DomStore::new();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let g = store.remove(a).unwrap();
        g.validate().unwrap();
        assert!(!store.contains(a));
        assert!(matches!(
            store.label_at(a, 0),
            Err(RepairError::NoSuchDocument { .. })
        ));
        assert!(matches!(store.remove(a), Err(RepairError::NoSuchDocument { .. })));
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        assert_ne!(a, b, "ids are never reused");
        assert_eq!(store.doc_ids(), vec![b]);
    }

    #[test]
    fn failed_load_grammar_leaves_the_master_table_untouched() {
        use sltgrammar::text::parse_grammar;
        let mut store = DomStore::new();
        store.load_xml(&doc("feed", 3)).unwrap();
        let symbols_before = store.symbols().len();
        // A foreign monadic grammar: `fresh` (rank 1) absorbs fine before
        // `item` conflicts with the store's rank-2 interning — the failed
        // load must not leave `fresh` (or anything else) behind.
        let foreign = parse_grammar("S -> fresh(item(#))").unwrap();
        assert!(store.load_grammar(foreign).is_err());
        assert_eq!(store.len(), 1);
        assert_eq!(store.symbols().len(), symbols_before);
        assert!(store.symbols().get("fresh").is_none(), "no partial absorb");
        // The store still loads ordinary documents using the same labels.
        store.load_xml(&doc("feed", 2)).unwrap();
    }

    #[test]
    fn failed_load_xml_leaves_the_master_table_untouched() {
        use sltgrammar::text::parse_grammar;
        let mut store = DomStore::new();
        // A monadic grammar interns `item` at rank 1 into the store.
        store.load_grammar(parse_grammar("S -> item(#)").unwrap()).unwrap();
        let symbols_before = store.symbols().len();
        // Loading XML that uses <item> (rank 2) fails — and must not leave
        // the document's *other* labels behind in the master.
        let xml = parse_xml("<feed><item/><other/></feed>").unwrap();
        assert!(store.load_xml(&xml).is_err());
        assert_eq!(store.len(), 1);
        assert_eq!(store.symbols().len(), symbols_before);
        assert!(store.symbols().get("feed").is_none(), "no partial intern");
        assert_eq!(store.symbol_stats().private_bytes, 0);
    }

    #[test]
    fn load_grammar_ignores_unused_foreign_labels() {
        // The foreign table carries a stale `item` at rank 1 that no rule
        // body uses; it must neither conflict with the store's rank-2 `item`
        // nor join the shared alphabet.
        let mut store = DomStore::new();
        store.load_xml(&doc("feed", 3)).unwrap();
        let mut foreign_symbols = SymbolTable::new();
        foreign_symbols.intern("item", 1).unwrap();
        let xml = parse_xml("<other><x/></other>").unwrap();
        let bin = xmltree::binary::to_binary(&xml, &mut foreign_symbols).unwrap();
        let foreign = sltgrammar::Grammar::new(foreign_symbols, bin);
        let id = store.load_grammar(foreign).unwrap();
        assert_eq!(store.to_xml(id).unwrap().to_xml(), xml.to_xml());
        assert_eq!(
            store.symbols().rank(store.symbols().get("item").unwrap()),
            2,
            "the store-wide `item` keeps its XML rank"
        );
        assert_eq!(store.query_str(id, "//x").unwrap().len(), 1);
    }

    #[test]
    fn load_grammar_rebases_foreign_alphabets() {
        // A grammar compressed privately (its own table, different id order)
        // joins the store and keeps serializing identically.
        let mut store = DomStore::new();
        store.load_xml(&doc("feed", 4)).unwrap();
        let xml = parse_xml("<other><title/><feed/><zzz/></other>").unwrap();
        let (foreign, _) = GrammarRePair::default().compress_xml(&xml);
        let id = store.load_grammar(foreign).unwrap();
        assert_eq!(store.to_xml(id).unwrap().to_xml(), xml.to_xml());
        // Rebased labels share the store-wide ids.
        let g = store.grammar(id).unwrap();
        assert_eq!(g.symbols.get("title"), store.symbols().get("title"));
        assert_eq!(store.query_str(id, "//zzz").unwrap().len(), 1);
    }
}
