//! `DomStore` — a concurrent multi-document session with a shared symbol
//! table, lock-free snapshot reads, and cross-document recompression
//! scheduling.
//!
//! The paper's motivating scenario is a long-lived service that keeps many
//! XML documents in memory in compressed form while serving interleaved reads
//! and updates. [`crate::session::CompressedDom`] is the single-document
//! handle; `DomStore` generalizes it to a collection: documents are loaded
//! into the store, addressed by [`DocId`], and served through the same read
//! and update surface the single-document handle offers — cursors, streaming
//! preorder, path queries, point label reads, single and batched updates.
//! The store is `Send + Sync`: many threads share one `DomStore` (or clones
//! of an `Arc<DomStore>`), reads proceed without locks, writes to distinct
//! documents proceed in parallel, and a background thread can drain the
//! recompression scheduler off the request path.
//!
//! # Concurrency architecture: shards, snapshots, epochs
//!
//! The store is sharded per document. Each live [`DocId`] resolves (through
//! one lock-free [`crate::sync::ArcSwapCell`] load of the document map) to a
//! `DocShard` holding
//!
//! * the **write state** — the authoritative grammar behind the shard's own
//!   `Mutex`, so writers to *different* documents never contend; and
//! * the **published snapshot** — an `Arc` of (grammar, lazily built
//!   [`NavTables`]) behind an [`crate::sync::ArcSwapCell`], the version
//!   readers see.
//!
//! **Readers take zero locks on the steady-state path.** A read resolves the
//! document map (atomic load), checks the shard's `clean` flag (atomic
//! load), and loads the published snapshot (atomic loads) — then runs
//! entirely on immutable `Arc`-shared state: the snapshot grammar, its
//! `NavTables` (built on first use through a `OnceLock`), and the sealed
//! symbol segments shared with the master table.
//!
//! **Writers copy on write.** An update locks its shard, mutates the grammar
//! through `Arc::make_mut` — deep-cloning at most once per read→write phase
//! transition, since the published snapshot keeps the old `Arc` alive — and
//! marks the shard dirty. The next reader republishes: if the shard lock is
//! free it publishes the current grammar (an `Arc` clone, not a copy); if a
//! writer is mid-flight it serves the previous published snapshot instead of
//! blocking. Readers therefore observe **snapshot semantics**: every read
//! runs on one internally consistent document version, at least as new as
//! the last completed-and-published write, never a torn intermediate state.
//! A thread that writes and then reads with no concurrent writer always sees
//! its own write (the publish path catches up through the uncontended lock).
//!
//! **Recompression swaps atomically.** [`DomStore::recompress`] (forced, or
//! scheduled via [`DomStore::maintain`], or run by the background thread)
//! recompresses **aside** — on a copy-on-write clone under the shard lock,
//! never touching the published snapshot — and then publishes the result
//! with one atomic swap. In-flight readers finish on the old snapshot `Arc`
//! (which stays fully usable for as long as anyone holds it); subsequent
//! reads get the new one. This is an MVCC-flavored red/green split: the red
//! (write) and green (published) versions share all unchanged structure
//! through `Arc`s and diverge only while a writer is active.
//!
//! Lock discipline, for auditing: the **master symbol table lock** is taken
//! only at load/seal time ([`DomStore::load_xml`] / [`DomStore::load_many`] /
//! [`DomStore::load_grammar`]) and by [`DomStore::symbol_stats`] /
//! [`DomStore::symbols`]; the **map write lock** serializes document
//! insertion/removal (readers resolve through the lock-free cell instead);
//! each **shard lock** serializes writes to one document and the publish of
//! its snapshot; locks are never nested except shard-after-map-write in
//! [`DomStore::remove`]. Steady-state reads take none of them.
//!
//! # Shared symbol table
//!
//! Collections of similar documents share most of their label alphabet (the
//! observation behind structural self-indexes over XML collections), so the
//! store owns one **master** [`SymbolTable`] and loads every document
//! against it: the document's labels are interned into the master, the
//! master's tail is sealed into an immutable shared segment
//! ([`SymbolTable::seal`]), and the document's grammar receives a clone that
//! *shares* the segments instead of copying the strings. The invariants:
//!
//! * ids below a table's [`SymbolTable::shared_len`] mean the **same label in
//!   every document** of the store (and in the master) — the property a
//!   cross-document index or query planner needs;
//! * labels interned by later updates (fresh rename labels, fragment labels)
//!   go to the owning document's private local tail and never perturb other
//!   documents — updating document A cannot change document B's
//!   serialization, ids, or cached tables;
//! * one resident copy of the common alphabet serves the whole store: with N
//!   similar documents the per-store label-table footprint is O(alphabet +
//!   Σ private tails) instead of N × O(alphabet) (reported by
//!   [`DomStore::symbol_stats`], which counts each shared segment once no
//!   matter how many write states and published snapshots reference it).
//!
//! Existing grammars join through [`DomStore::load_grammar`], which re-interns
//! their alphabet into the master and relabels the rule bodies
//! ([`sltgrammar::Grammar::relabel_terms`]) — a no-op when the id
//! assignment already agrees.
//!
//! # Generation-tagged document ids
//!
//! Document slots are a slab: [`DomStore::remove`] frees a slot for reuse,
//! and every insertion bumps the slot's generation counter. A [`DocId`]
//! carries both slot and generation, so a stale id held across a
//! remove/insert cycle fails with [`RepairError::NoSuchDocument`] instead of
//! silently addressing whichever document reused the slot (ABA safety —
//! a prerequisite for handing ids to concurrent holders). Maintenance sweeps
//! iterate the live list only, so heavy churn does not grow them.
//!
//! # Debt-based recompression scheduling
//!
//! The single-document handle recompresses after a fixed number of updates
//! (`recompress_every`), which generalizes badly to a store: a hot document
//! stalls its readers at fixed intervals regardless of how little its grammar
//! actually grew, while a cold-but-drifted document never reaches its counter
//! and never recompresses. The store replaces the counter with **update
//! debt**: per document, the edge-count growth since its last recompression
//! (`debt = edges_now − edges_at_last_recompress`), i.e. exactly the blow-up
//! GrammarRePair exists to undo. The scheduler
//! ([`DomStore::maintain`]) drains the *worst offenders first* under a
//! configurable budget:
//!
//! * a document becomes **eligible** when its debt reaches
//!   [`SchedulerConfig::debt_threshold`];
//! * one maintenance sweep recompresses eligible documents in decreasing debt
//!   order until [`SchedulerConfig::drain_budget`] (measured in grammar edges
//!   processed, a proxy for recompression work) is exhausted — at least one
//!   eligible document is always drained, so a single oversized document
//!   cannot starve maintenance forever;
//! * with [`SchedulerConfig::auto`] (the default) a sweep runs after every
//!   update or batch — inline when no background thread is attached, or
//!   signalled to the background thread started by
//!   [`DomStore::start_maintenance`], which drains debt off the request path
//!   and atomically swaps the recompressed snapshots in.
//!
//! # Example
//!
//! ```
//! use grammar_repair::store::DomStore;
//! use xmltree::parse::parse_xml;
//! use xmltree::updates::UpdateOp;
//!
//! let store = DomStore::new();
//! let a = store.load_xml(&parse_xml("<log><e/><e/></log>").unwrap()).unwrap();
//! let b = store.load_xml(&parse_xml("<log><e/><e/><e/></log>").unwrap()).unwrap();
//! // One shared alphabet: both documents agree on every load-time id.
//! assert_eq!(
//!     store.grammar(a).unwrap().symbols.get("e"),
//!     store.grammar(b).unwrap().symbols.get("e"),
//! );
//! // Updates address one document and never perturb the others; reads are
//! // `&self` and can run from any thread.
//! store.apply(a, &UpdateOp::Rename { target: 1, label: "entry".into() }).unwrap();
//! assert_eq!(store.label_at(a, 1).unwrap(), "entry");
//! assert_eq!(store.query_str(b, "//e").unwrap().len(), 3);
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::Duration;

use sltgrammar::crc32::crc32;
use sltgrammar::fingerprint::derived_size;
use sltgrammar::{serialize, Grammar, SymbolTable};
use xmltree::binary::{from_binary, to_binary};
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::navigate::{Cursor, NavTables, PreorderLabels};
use crate::query::{PathQuery, QueryMatches};
use crate::repair::{GrammarRePair, GrammarRePairConfig, RepairStats};
use crate::sync::ArcSwapCell;
use crate::update::{apply_batch, apply_update, BatchStats, UpdateStats};

/// The distinct terminals occurring in `g`'s rule bodies — a document's own
/// alphabet, as opposed to whatever else its symbol table carries.
fn used_terms(g: &Grammar) -> std::collections::HashSet<sltgrammar::TermId> {
    let mut used = std::collections::HashSet::new();
    for nt in g.nonterminals() {
        let rhs = &g.rule(nt).rhs;
        for node in rhs.preorder() {
            if let sltgrammar::NodeKind::Term(t) = rhs.kind(node) {
                used.insert(t);
            }
        }
    }
    used
}

/// Store-level identifier of a loaded document: a slab slot plus its
/// generation. Slots are reused after [`DomStore::remove`], generations never
/// are, so a stale id fails cleanly with [`RepairError::NoSuchDocument`]
/// instead of aliasing whichever document reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId {
    slot: u32,
    generation: u32,
}

impl DocId {
    /// Slab slot of the document (reused across removals; not unique over
    /// the store's lifetime — the `(slot, generation)` pair is).
    #[inline]
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// Generation of the slot this id was minted at.
    #[inline]
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Index into the store's slot vector.
    #[inline]
    pub fn index(self) -> usize {
        self.slot as usize
    }

    /// Reassembles an id from its parts — for the durable layer, which logs
    /// and replays `(slot, generation)` pairs. A reassembled id is only as
    /// valid as the pair it was built from; resolution still checks the
    /// generation.
    #[inline]
    pub(crate) fn from_parts(slot: u32, generation: u32) -> Self {
        DocId { slot, generation }
    }
}

/// Policy of the store-level recompression scheduler (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// A document becomes eligible for recompression once its update debt
    /// (edge growth since the last recompression) reaches this many edges.
    /// Treated as at least 1 — zero-debt documents are never recompressed.
    pub debt_threshold: usize,
    /// Maximum total work (sum of the drained documents' current edge
    /// counts) per maintenance sweep; `0` means unbounded. At least one
    /// eligible document is drained per sweep regardless of the budget.
    pub drain_budget: usize,
    /// Run a maintenance sweep automatically after every update or batch —
    /// inline, or on the background thread when one is attached.
    pub auto: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            debt_threshold: 512,
            drain_budget: 1 << 16,
            auto: true,
        }
    }
}

/// Outcome of one maintenance sweep: which documents were recompressed.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// `(document, recompression stats)` in drain order (worst debt first).
    pub drained: Vec<(DocId, RepairStats)>,
}

impl MaintenanceReport {
    /// Whether the sweep recompressed anything.
    pub fn is_empty(&self) -> bool {
        self.drained.is_empty()
    }
}

/// Resident label-table footprint of a store (estimated heap bytes),
/// separating the shared alphabet from private per-document tails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbolStats {
    /// Bytes of the shared segments, each resident allocation counted once
    /// across the master, every document's write state, and every published
    /// snapshot.
    pub shared_bytes: usize,
    /// Bytes of the private local tails (master + all documents; a published
    /// snapshot lagging behind its write state counts its own tail copy).
    pub private_bytes: usize,
    /// What per-document tables would occupy instead: each document
    /// privately interning exactly the labels its grammar uses (what
    /// [`crate::session::CompressedDom::from_xml`]-style loading builds) —
    /// a conservative baseline, since a real private table would also keep
    /// labels that updates have since removed from the document.
    pub unshared_bytes: usize,
    /// Number of symbols in the master table.
    pub master_symbols: usize,
}

impl SymbolStats {
    /// Actual resident total under sharing.
    pub fn resident_bytes(&self) -> usize {
        self.shared_bytes + self.private_bytes
    }
}

/// The immutable state behind one published document version: the grammar
/// plus its navigation tables, built lazily on first read and shared by
/// every reader of this version from then on.
#[derive(Debug)]
struct SnapshotInner {
    grammar: Arc<Grammar>,
    nav: OnceLock<Arc<NavTables>>,
}

impl SnapshotInner {
    fn of(grammar: Arc<Grammar>) -> Arc<Self> {
        Arc::new(SnapshotInner {
            grammar,
            nav: OnceLock::new(),
        })
    }
}

/// An owned, immutable view of one document version.
///
/// A snapshot is what the store's lock-free read path hands out: it stays
/// fully readable — cursors, preorder streaming, queries, point reads — for
/// as long as the handle lives, unaffected by concurrent updates or
/// recompressions of the document (which publish *new* snapshots instead of
/// touching this one). Cloning is an `Arc` clone.
#[derive(Debug, Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

impl Snapshot {
    /// The snapshot's grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.inner.grammar
    }

    /// The snapshot's grammar as an owned `Arc` (cheap; shares the data).
    pub fn grammar_arc(&self) -> Arc<Grammar> {
        self.inner.grammar.clone()
    }

    /// The snapshot's [`NavTables`], built on first use and shared (same
    /// `Arc`) by every subsequent read of this snapshot.
    pub fn nav_tables(&self) -> Arc<NavTables> {
        self.inner
            .nav
            .get_or_init(|| Arc::new(NavTables::build(&self.inner.grammar)))
            .clone()
    }

    /// A navigation cursor at the document root.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor::with_tables(&self.inner.grammar, self.nav_tables())
    }

    /// A streaming preorder label iterator over the snapshot.
    pub fn preorder_labels(&self) -> PreorderLabels<'_> {
        PreorderLabels::with_tables(&self.inner.grammar, self.nav_tables())
    }

    /// Number of nodes of the snapshot's (uncompressed) binary tree.
    pub fn derived_size(&self) -> u128 {
        derived_size(&self.inner.grammar)
    }

    /// Label of the node at `preorder_index` of the snapshot's binary tree.
    pub fn label_at(&self, preorder_index: u128) -> Result<String> {
        let mut cursor = self.cursor();
        if cursor.node_at_preorder(preorder_index) {
            return Ok(cursor.label().to_string());
        }
        Err(RepairError::TargetOutOfRange {
            index: preorder_index,
            size: self.derived_size(),
        })
    }

    /// Materializes a path query against the snapshot through the memoized,
    /// output-sensitive evaluator.
    pub fn query(&self, query: &PathQuery) -> QueryMatches {
        query.evaluate_with_tables(&self.inner.grammar, &self.nav_tables())
    }

    /// Counts the matches of a path query without materializing them.
    pub fn query_count(&self, query: &PathQuery) -> u128 {
        query.count(&self.inner.grammar)
    }

    /// Materializes the snapshot back to an [`XmlTree`]. Only intended for
    /// small documents (tests, exports).
    pub fn to_xml(&self) -> Result<XmlTree> {
        let bin = sltgrammar::derive::val(&self.inner.grammar)?;
        Ok(from_binary(&bin, &self.inner.grammar.symbols)?)
    }
}

/// One document of the store: write state behind the shard's own lock,
/// published snapshot behind a lock-free cell (see the module docs).
#[derive(Debug)]
struct DocShard {
    /// The authoritative grammar. `Arc::make_mut` gives writers copy-on-write
    /// against the published snapshot: the deep clone happens at most once
    /// per read→write phase transition, in-place mutation otherwise.
    write: Mutex<Arc<Grammar>>,
    published: ArcSwapCell<SnapshotInner>,
    /// Whether `published` reflects the write state. Cleared by writers,
    /// set by the (lazy) publish and by recompression's eager publish.
    clean: AtomicBool,
    /// Edge count right after the last recompression (or load) — the debt
    /// baseline.
    baseline_edges: AtomicUsize,
    /// Cached current edge count, maintained from update statistics so debt
    /// checks never walk the grammar.
    current_edges: AtomicUsize,
    total_updates: AtomicUsize,
    recompressions: AtomicUsize,
}

impl DocShard {
    fn new(grammar: Grammar) -> Self {
        let edges = grammar.edge_count();
        let grammar = Arc::new(grammar);
        DocShard {
            published: ArcSwapCell::new(SnapshotInner::of(grammar.clone())),
            write: Mutex::new(grammar),
            clean: AtomicBool::new(true),
            baseline_edges: AtomicUsize::new(edges),
            current_edges: AtomicUsize::new(edges),
            total_updates: AtomicUsize::new(0),
            recompressions: AtomicUsize::new(0),
        }
    }

    /// A deep-ish copy for [`DomStore::clone`]: shares the grammar `Arc`
    /// (copy-on-write protects both sides), copies the counters.
    fn duplicate(&self) -> Self {
        let grammar = self.write.lock().expect("shard lock never poisoned").clone();
        DocShard {
            published: ArcSwapCell::new(SnapshotInner::of(grammar.clone())),
            write: Mutex::new(grammar),
            clean: AtomicBool::new(true),
            baseline_edges: AtomicUsize::new(self.baseline_edges.load(Ordering::Relaxed)),
            current_edges: AtomicUsize::new(self.current_edges.load(Ordering::Relaxed)),
            total_updates: AtomicUsize::new(self.total_updates.load(Ordering::Relaxed)),
            recompressions: AtomicUsize::new(self.recompressions.load(Ordering::Relaxed)),
        }
    }

    fn debt(&self) -> usize {
        self.current_edges
            .load(Ordering::Relaxed)
            .saturating_sub(self.baseline_edges.load(Ordering::Relaxed))
    }

    /// The read path. Steady state (`clean`): two atomic loads, zero locks.
    /// After a write: republish through the uncontended shard lock, or — if
    /// a writer holds it right now — serve the previous published snapshot
    /// rather than block (snapshot semantics; see the module docs).
    fn snapshot(&self) -> Snapshot {
        if self.clean.load(Ordering::Acquire) {
            return Snapshot {
                inner: self.published.load(),
            };
        }
        match self.write.try_lock() {
            Ok(guard) => {
                let inner = SnapshotInner::of(guard.clone());
                self.published.store(inner.clone());
                self.clean.store(true, Ordering::Release);
                drop(guard);
                Snapshot { inner }
            }
            Err(_) => Snapshot {
                inner: self.published.load(),
            },
        }
    }

    /// Publishes the current write state while already holding the shard
    /// lock — the atomic snapshot swap after a recompression.
    fn publish_locked(&self, grammar: &Arc<Grammar>) {
        self.published.store(SnapshotInner::of(grammar.clone()));
        self.clean.store(true, Ordering::Release);
    }
}

/// A checkpointed document not yet decoded: the raw shared-alphabet payload
/// ([`sltgrammar::serialize::encode_with_shared`]) a lazy restore installs,
/// decoded on first touch. The CRC comes from the checkpoint's extent table
/// and is verified at materialization time, not at open — the trade-off
/// that keeps cold start O(open) (see the layout docs in `core::wal`).
#[derive(Debug)]
struct PendingDoc {
    bytes: Vec<u8>,
    crc: u32,
}

/// One slab slot: its current generation plus the shard, if live — or the
/// undecoded checkpoint payload of a lazily restored document.
#[derive(Debug, Clone, Default)]
struct Slot {
    generation: u32,
    shard: Option<Arc<DocShard>>,
    pending: Option<Arc<PendingDoc>>,
}

/// The copy-on-write document map readers resolve through. Replaced
/// wholesale (via [`ArcSwapCell`]) on insert/remove, never mutated in place.
#[derive(Debug, Clone, Default)]
struct DocMap {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Live ids in insertion order — what `doc_ids` reports and what
    /// maintenance sweeps iterate (dead slots are never scanned).
    live: Vec<DocId>,
}

impl DocMap {
    fn get(&self, doc: DocId) -> Option<&Arc<DocShard>> {
        let slot = self.slots.get(doc.index())?;
        if slot.generation != doc.generation {
            return None;
        }
        slot.shard.as_ref()
    }
}

/// Signals between the request path and the background maintenance thread.
#[derive(Debug, Default)]
struct WorkerSignal {
    pending: bool,
    shutdown: bool,
}

/// The shared interior of a [`DomStore`] (see the module docs for the lock
/// discipline).
#[derive(Debug)]
struct StoreInner {
    symbols: Mutex<SymbolTable>,
    map: ArcSwapCell<DocMap>,
    /// Serializes insert/remove (which copy-on-write-replace `map`).
    map_write: Mutex<()>,
    repair: RwLock<GrammarRePair>,
    scheduler: RwLock<SchedulerConfig>,
    /// Fast check on the update path: is a background thread attached?
    worker_attached: AtomicBool,
    worker: Mutex<WorkerSignal>,
    wake: Condvar,
}

impl StoreInner {
    fn resolve(&self, doc: DocId) -> Result<Arc<DocShard>> {
        let map = self.map.load();
        let slot = map
            .slots
            .get(doc.index())
            .filter(|slot| slot.generation == doc.generation)
            .ok_or(RepairError::NoSuchDocument { id: doc.slot })?;
        if let Some(shard) = &slot.shard {
            return Ok(shard.clone());
        }
        match &slot.pending {
            Some(pending) => {
                let pending = pending.clone();
                drop(map);
                self.materialize(doc, pending)
            }
            None => Err(RepairError::NoSuchDocument { id: doc.slot }),
        }
    }

    /// Decodes a lazily restored document and swaps its shard into the map —
    /// the first-touch half of the O(open) restore. The CRC check and decode
    /// run outside every lock: racing materializers decode the same bytes
    /// against the same frozen shared prefix and agree; one wins the
    /// copy-on-write swap, the rest adopt the winner's shard.
    fn materialize(&self, doc: DocId, pending: Arc<PendingDoc>) -> Result<Arc<DocShard>> {
        let found = crc32(&pending.bytes);
        if found != pending.crc {
            return Err(RepairError::Storage {
                detail: format!(
                    "checkpoint corrupt: document payload (slot {}, generation {}) fails \
                     its CRC (expected {:08x}, found {found:08x})",
                    doc.slot, doc.generation, pending.crc
                ),
            });
        }
        let master = self.symbols.lock().expect("master lock never poisoned").clone();
        let grammar =
            serialize::decode_with_shared(&pending.bytes, &master).map_err(|e| {
                RepairError::Storage {
                    detail: format!(
                        "checkpoint corrupt: document (slot {}, generation {}): {e}",
                        doc.slot, doc.generation
                    ),
                }
            })?;
        let shard = Arc::new(DocShard::new(grammar));
        let _guard = self.map_write.lock().expect("map lock never poisoned");
        let mut map = (*self.map.load()).clone();
        let slot = map
            .slots
            .get_mut(doc.index())
            .filter(|slot| slot.generation == doc.generation)
            .ok_or(RepairError::NoSuchDocument { id: doc.slot })?;
        if let Some(existing) = &slot.shard {
            // Lost the materialization race; the winner's shard is canonical.
            return Ok(existing.clone());
        }
        slot.pending = None;
        slot.shard = Some(shard.clone());
        self.map.store(Arc::new(map));
        Ok(shard)
    }

    /// Interns `xml`'s alphabet into the master under the master lock and
    /// returns a sealed table clone for the document. The expensive
    /// compression runs *outside* the lock on that clone — concurrent loads
    /// only serialize on this (cheap) walk, which also keeps id assignment
    /// identical to fully sequential loads.
    fn intern_labels(&self, xml: &XmlTree) -> Result<SymbolTable> {
        let mut master = self.symbols.lock().expect("master lock never poisoned");
        // Intern into a scratch clone and commit only on success: a rank
        // conflict partway through the document must not leave its earlier
        // labels behind in the master (the clone shares the sealed segments,
        // so this copies at most the usually-empty local tail).
        let mut scratch = master.clone();
        to_binary(xml, &mut scratch)?;
        scratch.seal();
        *master = scratch.clone();
        Ok(scratch)
    }

    /// Re-interns the labels `grammar`'s rule bodies actually use into the
    /// master table (committing only on success), relabels the bodies when
    /// the id assignment differs, and replaces the grammar's table with a
    /// sealed master clone — the shared-alphabet rebase behind
    /// [`DomStore::load_grammar`] and checkpoint restoration.
    fn rebase_onto_master(&self, grammar: &mut Grammar) -> Result<()> {
        let used = used_terms(grammar);
        let mut master = self.symbols.lock().expect("master lock");
        // Intern into a scratch clone first: interning keeps the symbols
        // added before a rank conflict, and a half-absorbed foreign
        // alphabet must not poison the master on failure.
        let mut scratch = master.clone();
        let mut map = Vec::with_capacity(grammar.symbols.len());
        for (id, name, rank) in grammar.symbols.iter() {
            // Unused ids keep themselves as placeholders: they never
            // occur in a body, so `relabel_terms` never reads them, and
            // an all-identity map still short-circuits the relabel walk.
            map.push(if used.contains(&id) {
                scratch.intern(name, rank)?
            } else {
                id
            });
        }
        scratch.seal();
        *master = scratch.clone();
        drop(master);
        grammar.relabel_terms(&map);
        grammar.symbols = scratch;
        Ok(())
    }

    fn insert_doc(&self, grammar: Grammar) -> DocId {
        let shard = Arc::new(DocShard::new(grammar));
        let _guard = self.map_write.lock().expect("map lock never poisoned");
        let mut map = (*self.map.load()).clone();
        let slot = map.free.pop().unwrap_or_else(|| {
            map.slots.push(Slot::default());
            (map.slots.len() - 1) as u32
        });
        let entry = &mut map.slots[slot as usize];
        entry.generation += 1;
        entry.shard = Some(shard);
        let id = DocId {
            slot,
            generation: entry.generation,
        };
        map.live.push(id);
        self.map.store(Arc::new(map));
        id
    }

    /// Applies one mutation under the shard lock; the closure runs on the
    /// copy-on-write grammar and reports `(result, edges_after)` so the
    /// shard's counters stay exact without re-walking the grammar.
    fn apply_one(&self, doc: DocId, op: &UpdateOp) -> Result<UpdateStats> {
        let shard = self.resolve(doc)?;
        let mut guard = shard.write.lock().expect("shard lock never poisoned");
        let grammar = Arc::make_mut(&mut guard);
        let result = apply_update(grammar, op);
        match &result {
            Err(RepairError::TargetOutOfRange { .. }) => {
                // Rejected before anything mutated: the published snapshot
                // still matches the write state.
            }
            Ok(stats) => {
                shard.current_edges.store(stats.edges_after, Ordering::Relaxed);
                shard.total_updates.fetch_add(1, Ordering::Relaxed);
                shard.clean.store(false, Ordering::Release);
            }
            Err(_) => {
                // Splice-time failure: isolation already grew the grammar.
                shard
                    .current_edges
                    .store(grammar.edge_count(), Ordering::Relaxed);
                shard.clean.store(false, Ordering::Release);
            }
        }
        result
    }

    fn apply_batch_one(&self, doc: DocId, ops: &[UpdateOp]) -> Result<BatchStats> {
        let shard = self.resolve(doc)?;
        let mut guard = shard.write.lock().expect("shard lock never poisoned");
        let grammar = Arc::make_mut(&mut guard);
        let result = apply_batch(grammar, ops);
        match &result {
            Ok(stats) => {
                shard.current_edges.store(stats.edges_after, Ordering::Relaxed);
                shard.total_updates.fetch_add(ops.len(), Ordering::Relaxed);
            }
            Err(_) => {
                shard
                    .current_edges
                    .store(grammar.edge_count(), Ordering::Relaxed);
            }
        }
        if !ops.is_empty() {
            shard.clean.store(false, Ordering::Release);
        }
        result
    }

    /// Post-update scheduling: inline sweep, or a signal to the background
    /// thread when one is attached (whose drains then happen off this path).
    fn after_update(&self) -> MaintenanceReport {
        if !self.scheduler.read().expect("scheduler lock").auto {
            return MaintenanceReport::default();
        }
        if self.worker_attached.load(Ordering::Acquire) {
            let mut signal = self.worker.lock().expect("worker lock never poisoned");
            signal.pending = true;
            self.wake.notify_one();
            return MaintenanceReport::default();
        }
        self.maintain()
    }

    fn maintain(&self) -> MaintenanceReport {
        let scheduler = *self.scheduler.read().expect("scheduler lock");
        let threshold = scheduler.debt_threshold.max(1);
        let map = self.map.load();
        let mut eligible: Vec<(usize, DocId)> = map
            .live
            .iter()
            .filter_map(|&id| {
                let shard = map.get(id)?;
                let debt = shard.debt();
                (debt >= threshold).then_some((debt, id))
            })
            .collect();
        // Worst offender first; ties broken by id for determinism.
        eligible.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let budget = scheduler.drain_budget;
        let mut spent = 0usize;
        let mut report = MaintenanceReport::default();
        for (_, id) in eligible {
            // Re-resolve: the document may have been removed since the scan.
            let Ok(shard) = self.resolve(id) else { continue };
            let cost = shard.current_edges.load(Ordering::Relaxed);
            if !report.drained.is_empty() && budget > 0 && spent.saturating_add(cost) > budget {
                break;
            }
            let Ok(stats) = self.recompress(id) else { continue };
            spent = spent.saturating_add(cost);
            report.drained.push((id, stats));
            if budget > 0 && spent >= budget {
                break;
            }
        }
        report
    }

    fn recompress(&self, doc: DocId) -> Result<RepairStats> {
        let shard = self.resolve(doc)?;
        let repair = self.repair.read().expect("repair lock").clone();
        let mut guard = shard.write.lock().expect("shard lock never poisoned");
        // Recompress aside: `make_mut` clones iff a published snapshot (or
        // other reader) still shares this grammar, so in-flight readers keep
        // their version while the recompressor works on the copy.
        let stats = repair.recompress(Arc::make_mut(&mut guard));
        shard.current_edges.store(stats.output_edges, Ordering::Relaxed);
        shard.baseline_edges.store(stats.output_edges, Ordering::Relaxed);
        shard.recompressions.fetch_add(1, Ordering::Relaxed);
        // The atomic swap: publish the recompressed grammar; readers holding
        // the old snapshot finish on it undisturbed.
        shard.publish_locked(&guard);
        Ok(stats)
    }
}

/// How many OS threads a parallel multi-document operation fans out over.
fn pool_size(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    jobs.min(cores).clamp(1, 8)
}

/// Runs `work(i)` for every `i < jobs` on a small scoped worker pool,
/// collecting results in index order. Serial when the pool would be size 1.
fn fan_out<T: Send>(jobs: usize, work: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = pool_size(jobs);
    if workers <= 1 {
        return (0..jobs).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = work(i);
                *results[i].lock().expect("result slot never poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot never poisoned")
                .expect("every job index is visited exactly once")
        })
        .collect()
}

/// A concurrent multi-document session: many compressed documents behind one
/// shared symbol table and one recompression scheduler (see the module docs).
///
/// `DomStore` is `Send + Sync`; share it across threads directly or behind an
/// `Arc`. Reads ([`DomStore::snapshot`] and everything built on it) are
/// `&self` and lock-free in steady state; writes to distinct documents run
/// in parallel.
#[derive(Debug)]
pub struct DomStore {
    inner: Arc<StoreInner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

// Compile-time guarantee: the store and its snapshots cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DomStore>();
    assert_send_sync::<Snapshot>();
};

impl Default for DomStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for DomStore {
    /// Clones the store's *contents*: the copy shares grammar data
    /// structurally (copy-on-write, so writes to either side never show in
    /// the other) but has its own locks, scheduler, and document map, with
    /// every [`DocId`] preserved. The clone starts without a background
    /// maintenance thread.
    fn clone(&self) -> Self {
        let master = self.inner.symbols.lock().expect("master lock").clone();
        let src = self.inner.map.load();
        let slots = src
            .slots
            .iter()
            .map(|slot| Slot {
                generation: slot.generation,
                shard: slot.shard.as_ref().map(|s| Arc::new(s.duplicate())),
                // Undecoded payloads are immutable; the clone shares them.
                pending: slot.pending.clone(),
            })
            .collect();
        let map = DocMap {
            slots,
            free: src.free.clone(),
            live: src.live.clone(),
        };
        DomStore {
            inner: Arc::new(StoreInner {
                symbols: Mutex::new(master),
                map: ArcSwapCell::new(Arc::new(map)),
                map_write: Mutex::new(()),
                repair: RwLock::new(self.inner.repair.read().expect("repair lock").clone()),
                scheduler: RwLock::new(*self.inner.scheduler.read().expect("scheduler lock")),
                worker_attached: AtomicBool::new(false),
                worker: Mutex::new(WorkerSignal::default()),
                wake: Condvar::new(),
            }),
            worker: None,
        }
    }
}

impl Drop for DomStore {
    fn drop(&mut self) {
        self.stop_maintenance();
    }
}

impl DomStore {
    /// Creates an empty store with the default scheduler.
    pub fn new() -> Self {
        DomStore {
            inner: Arc::new(StoreInner {
                symbols: Mutex::new(SymbolTable::new()),
                map: ArcSwapCell::new(Arc::new(DocMap::default())),
                map_write: Mutex::new(()),
                repair: RwLock::new(GrammarRePair::default()),
                scheduler: RwLock::new(SchedulerConfig::default()),
                worker_attached: AtomicBool::new(false),
                worker: Mutex::new(WorkerSignal::default()),
                wake: Condvar::new(),
            }),
            worker: None,
        }
    }

    /// Uses a custom scheduler policy.
    pub fn with_scheduler(self, scheduler: SchedulerConfig) -> Self {
        self.set_scheduler(scheduler);
        self
    }

    /// Uses a custom recompression configuration for every document.
    pub fn with_config(self, config: GrammarRePairConfig) -> Self {
        self.set_config(config);
        self
    }

    /// Replaces the recompression configuration in place.
    pub fn set_config(&self, config: GrammarRePairConfig) {
        *self.inner.repair.write().expect("repair lock") = GrammarRePair::new(config);
    }

    /// The current scheduler policy.
    pub fn scheduler(&self) -> SchedulerConfig {
        *self.inner.scheduler.read().expect("scheduler lock")
    }

    /// Replaces the scheduler policy.
    pub fn set_scheduler(&self, scheduler: SchedulerConfig) {
        *self.inner.scheduler.write().expect("scheduler lock") = scheduler;
    }

    // ----- background maintenance -----

    /// Starts the background maintenance thread: it runs [`DomStore::maintain`]
    /// whenever an update signals debt (under [`SchedulerConfig::auto`]) and
    /// at least every `poll` as a fallback, recompressing aside and swapping
    /// snapshots in atomically — readers never wait on it. With a worker
    /// attached, `apply`/`apply_batch` return empty [`MaintenanceReport`]s;
    /// observe [`DomStore::recompressions`] for drain counts. No-op if a
    /// worker is already running.
    pub fn start_maintenance(&mut self, poll: Duration) {
        if self.worker.is_some() {
            return;
        }
        {
            let mut signal = self.inner.worker.lock().expect("worker lock");
            signal.shutdown = false;
            signal.pending = false;
        }
        self.inner.worker_attached.store(true, Ordering::Release);
        let inner = self.inner.clone();
        self.worker = Some(std::thread::spawn(move || {
            loop {
                {
                    let mut signal = inner.worker.lock().expect("worker lock");
                    while !signal.pending && !signal.shutdown {
                        let (guard, timeout) = inner
                            .wake
                            .wait_timeout(signal, poll)
                            .expect("worker lock never poisoned");
                        signal = guard;
                        if timeout.timed_out() {
                            break; // periodic sweep even without signals
                        }
                    }
                    if signal.shutdown {
                        return;
                    }
                    signal.pending = false;
                }
                inner.maintain();
            }
        }));
    }

    /// Stops and joins the background maintenance thread (no-op without
    /// one). Pending debt stays until the next sweep — inline sweeps resume
    /// on the request path once no worker is attached.
    pub fn stop_maintenance(&mut self) {
        self.inner.worker_attached.store(false, Ordering::Release);
        if let Some(handle) = self.worker.take() {
            {
                let mut signal = self.inner.worker.lock().expect("worker lock");
                signal.shutdown = true;
            }
            self.inner.wake.notify_all();
            let _ = handle.join();
            self.inner.worker.lock().expect("worker lock").shutdown = false;
        }
    }

    /// Whether a background maintenance thread is currently attached.
    pub fn maintenance_running(&self) -> bool {
        self.worker.is_some()
    }

    // ----- loading and membership -----

    /// Compresses `xml` against the shared symbol table and adds it to the
    /// store. The document's load-time alphabet is interned into the master
    /// table and sealed, so similar documents share one resident alphabet.
    /// Only the (cheap) interning holds the master lock; compression runs
    /// on the sealed clone, so concurrent loads overlap.
    ///
    /// Fails (without adding the document or touching the master table) when
    /// a label clashes with a different rank already interned in the store.
    pub fn load_xml(&self, xml: &XmlTree) -> Result<DocId> {
        let mut table = self.inner.intern_labels(xml)?;
        let repair = self.inner.repair.read().expect("repair lock").clone();
        let (grammar, _) = repair.compress_xml_shared(xml, &mut table)?;
        Ok(self.inner.insert_doc(grammar))
    }

    /// Loads many documents, compressing them in parallel on a small worker
    /// pool. Ids, shared-alphabet assignment, and the resulting grammars are
    /// identical to loading the same sequence one [`DomStore::load_xml`] at a
    /// time: alphabets are interned serially (in order) first, then the
    /// per-document compressions — independent by construction — fan out.
    ///
    /// On error no document is added; alphabets of documents interned before
    /// the failing one remain in the master (harmless: unused shared labels).
    pub fn load_many(&self, xmls: &[XmlTree]) -> Result<Vec<DocId>> {
        let mut tables = Vec::with_capacity(xmls.len());
        for xml in xmls {
            tables.push(self.inner.intern_labels(xml)?);
        }
        let repair = self.inner.repair.read().expect("repair lock").clone();
        let grammars = fan_out(xmls.len(), |i| {
            let mut table = tables[i].clone();
            repair
                .compress_xml_shared(&xmls[i], &mut table)
                .map(|(grammar, _)| grammar)
        });
        let mut ids = Vec::with_capacity(xmls.len());
        for grammar in grammars {
            ids.push(self.inner.insert_doc(grammar?));
        }
        Ok(ids)
    }

    /// Adds an already-compressed grammar to the store, rebasing it onto the
    /// shared symbol table: its alphabet is re-interned into the master,
    /// its rule bodies are relabelled when the id assignment differs, and
    /// its table is replaced by a clone of the master's — after which the
    /// invariants of the module docs hold for it like for any loaded
    /// document.
    ///
    /// Only labels the grammar's rule bodies actually use are interned —
    /// stale entries in the foreign table (e.g. labels renamed away before
    /// the grammar left another store) neither join the shared alphabet nor
    /// cause spurious rank conflicts. Fails (without adding the document or
    /// touching the master table) when a *used* label clashes with a
    /// different rank already interned in the store.
    pub fn load_grammar(&self, mut grammar: Grammar) -> Result<DocId> {
        self.inner.rebase_onto_master(&mut grammar)?;
        Ok(self.inner.insert_doc(grammar))
    }

    /// Removes a document and returns its grammar (with its private table).
    /// The slot becomes reusable; the removed [`DocId`] never resolves again
    /// (generation tagging). Operations racing with the removal either
    /// resolve the shard first and complete against the document's final
    /// state (which this call may then return without them) or fail with
    /// [`RepairError::NoSuchDocument`].
    pub fn remove(&self, doc: DocId) -> Result<Grammar> {
        // A lazily restored document is decoded first: the call returns the
        // grammar, and a corrupt payload must surface as the typed decode
        // error here rather than as a bogus `NoSuchDocument`.
        let needs_materialize = {
            let map = self.inner.map.load();
            map.slots
                .get(doc.index())
                .is_some_and(|slot| {
                    slot.generation == doc.generation
                        && slot.shard.is_none()
                        && slot.pending.is_some()
                })
        };
        if needs_materialize {
            self.inner.resolve(doc)?;
        }
        let shard = {
            let _guard = self.inner.map_write.lock().expect("map lock");
            let mut map = (*self.inner.map.load()).clone();
            let entry = map
                .slots
                .get_mut(doc.index())
                .filter(|slot| slot.generation == doc.generation)
                .and_then(|slot| {
                    slot.pending = None;
                    slot.shard.take()
                })
                .ok_or(RepairError::NoSuchDocument { id: doc.slot })?;
            map.free.push(doc.slot);
            map.live.retain(|&id| id != doc);
            self.inner.map.store(Arc::new(map));
            entry
        };
        // Unwrap as far as sharing allows; clone only if snapshots of the
        // final state are still held elsewhere.
        let grammar = match Arc::try_unwrap(shard) {
            Ok(shard) => {
                let grammar = shard.write.into_inner().expect("shard lock never poisoned");
                drop(shard.published); // releases the snapshot's grammar ref
                grammar
            }
            Err(shard) => shard.write.lock().expect("shard lock never poisoned").clone(),
        };
        Ok(Arc::try_unwrap(grammar).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Whether `doc` names a live document (including one still in
    /// undecoded, lazily restored form).
    pub fn contains(&self, doc: DocId) -> bool {
        let map = self.inner.map.load();
        map.slots.get(doc.index()).is_some_and(|slot| {
            slot.generation == doc.generation
                && (slot.shard.is_some() || slot.pending.is_some())
        })
    }

    /// Ids of all live documents, in insertion order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.inner.map.load().live.clone()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.inner.map.load().live.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ----- shared-table introspection -----

    /// The master symbol table (a clone sharing the sealed segments — cheap).
    pub fn symbols(&self) -> SymbolTable {
        self.inner.symbols.lock().expect("master lock").clone()
    }

    /// Resident label-table footprint of the store, deduplicating shared
    /// segments across the master, every document's write state, and every
    /// published snapshot (see [`SymbolStats`]) — a segment referenced from
    /// N snapshots still counts once.
    pub fn symbol_stats(&self) -> SymbolStats {
        let mut seen = std::collections::HashSet::new();
        let mut stats = SymbolStats::default();
        let mut visit = |table: &SymbolTable, stats: &mut SymbolStats| {
            for (key, bytes) in table.shared_segments() {
                if seen.insert(key) {
                    stats.shared_bytes += bytes;
                }
            }
            stats.private_bytes += table.local_heap_bytes();
        };
        {
            let master = self.inner.symbols.lock().expect("master lock");
            stats.master_symbols = master.len();
            visit(&master, &mut stats);
        }
        let map = self.inner.map.load();
        for &id in &map.live {
            let Some(shard) = map.get(id) else { continue };
            let write = shard.write.lock().expect("shard lock never poisoned").clone();
            visit(&write.symbols, &mut stats);
            // Per-document baseline: only the labels this grammar uses.
            stats.unshared_bytes += used_terms(&write)
                .into_iter()
                .map(|t| write.symbols.symbol_heap_bytes(t))
                .sum::<usize>();
            // A published snapshot lagging behind the write state holds its
            // own table object: shared segments dedup through `seen`, a
            // diverged local tail is honestly a second resident copy.
            let published = shard.published.load();
            if !Arc::ptr_eq(&published.grammar, &write) {
                visit(&published.grammar.symbols, &mut stats);
            }
        }
        stats
    }

    // ----- per-document read surface (lock-free in steady state) -----

    /// The current published [`Snapshot`] of a document — the entry point of
    /// the lock-free read path; every other read method is sugar over it.
    /// The snapshot stays valid (and immutable) for as long as it is held,
    /// across concurrent updates, recompressions, and removal.
    pub fn snapshot(&self, doc: DocId) -> Result<Snapshot> {
        Ok(self.inner.resolve(doc)?.snapshot())
    }

    /// A document's current grammar (an `Arc` into the published snapshot).
    pub fn grammar(&self, doc: DocId) -> Result<Arc<Grammar>> {
        Ok(self.snapshot(doc)?.grammar_arc())
    }

    /// Current grammar size in edges (the paper's size measure).
    pub fn edge_count(&self, doc: DocId) -> Result<usize> {
        Ok(self.inner.resolve(doc)?.current_edges.load(Ordering::Relaxed))
    }

    /// Number of nodes of the document's (uncompressed) binary tree.
    pub fn derived_size(&self, doc: DocId) -> Result<u128> {
        Ok(self.snapshot(doc)?.derived_size())
    }

    /// Update debt of a document: edge growth since its last recompression.
    pub fn debt(&self, doc: DocId) -> Result<usize> {
        Ok(self.inner.resolve(doc)?.debt())
    }

    /// Number of updates applied to a document so far.
    pub fn total_updates(&self, doc: DocId) -> Result<usize> {
        Ok(self.inner.resolve(doc)?.total_updates.load(Ordering::Relaxed))
    }

    /// Number of recompressions of a document so far (scheduled or forced).
    pub fn recompressions(&self, doc: DocId) -> Result<usize> {
        Ok(self.inner.resolve(doc)?.recompressions.load(Ordering::Relaxed))
    }

    /// The shared [`NavTables`] of a document's published snapshot — built
    /// on first use, then the same `Arc` for every read until the next
    /// mutation publishes a new snapshot.
    pub fn nav_tables(&self, doc: DocId) -> Result<Arc<NavTables>> {
        Ok(self.snapshot(doc)?.nav_tables())
    }

    /// Label of the node at `preorder_index` of a document's binary tree — a
    /// read-only positional jump through the snapshot tables. (For cursors
    /// and streaming iterators, which borrow their snapshot, take a
    /// [`DomStore::snapshot`] and use [`Snapshot::cursor`] /
    /// [`Snapshot::preorder_labels`].)
    pub fn label_at(&self, doc: DocId, preorder_index: u128) -> Result<String> {
        self.snapshot(doc)?.label_at(preorder_index)
    }

    /// Materializes a path query against a document through the memoized,
    /// output-sensitive evaluator over the snapshot tables.
    pub fn query(&self, doc: DocId, query: &PathQuery) -> Result<QueryMatches> {
        Ok(self.snapshot(doc)?.query(query))
    }

    /// Parses and materializes a path query in one call.
    pub fn query_str(&self, doc: DocId, query: &str) -> Result<QueryMatches> {
        self.query(doc, &PathQuery::parse(query)?)
    }

    /// Counts the matches of a path query without materializing them.
    pub fn query_count(&self, doc: DocId, query: &PathQuery) -> Result<u128> {
        Ok(self.snapshot(doc)?.query_count(query))
    }

    /// Materializes a document back to an [`XmlTree`]. Only intended for
    /// small documents (tests, exports).
    pub fn to_xml(&self, doc: DocId) -> Result<XmlTree> {
        self.snapshot(doc)?.to_xml()
    }

    // ----- updates and scheduling -----

    /// Applies one update to a document, then (under [`SchedulerConfig::auto`])
    /// runs a maintenance sweep over the *whole store* — inline, or signalled
    /// to the background thread when one is attached (empty report then).
    ///
    /// Error semantics match the single-document handle: out-of-range targets
    /// are rejected before anything mutates; splice-time failures leave the
    /// isolation growth in place (debt measures it, so maintenance still
    /// happens — failing updates cannot starve recompression). Note that a
    /// sweep triggered by a *failing* update has no channel back to the
    /// caller (`Err` carries no report); callers tracking drain events
    /// exactly should observe [`DomStore::recompressions`] instead.
    pub fn apply(&self, doc: DocId, op: &UpdateOp) -> Result<(UpdateStats, MaintenanceReport)> {
        let result = self.inner.apply_one(doc, op);
        if matches!(&result, Err(RepairError::TargetOutOfRange { .. })) {
            // Rejected before anything mutated: no debt, no maintenance.
            return result.map(|stats| (stats, MaintenanceReport::default()));
        }
        let report = self.inner.after_update();
        result.map(|stats| (stats, report))
    }

    /// Applies an operation sequence to a document through the batched
    /// isolation pipeline (shared path prefixes isolated once per chunk),
    /// then (under [`SchedulerConfig::auto`]) runs or signals a maintenance
    /// sweep like [`DomStore::apply`].
    ///
    /// On error the document reflects every fully applied chunk, and the
    /// growth is tracked as debt (see [`crate::update::apply_batch`]).
    pub fn apply_batch(
        &self,
        doc: DocId,
        ops: &[UpdateOp],
    ) -> Result<(BatchStats, MaintenanceReport)> {
        let result = self.inner.apply_batch_one(doc, ops);
        let report = if ops.is_empty() {
            MaintenanceReport::default()
        } else {
            self.inner.after_update()
        };
        result.map(|stats| (stats, report))
    }

    /// Applies one batch per document **in parallel** over a small worker
    /// pool — the fan-out counterpart of [`DomStore::apply_batch`] for
    /// cross-document write workloads. Jobs addressing *distinct* documents
    /// run concurrently on their own shards; jobs sharing a document
    /// serialize on its shard lock in unspecified relative order (pass
    /// distinct ids for deterministic results). One maintenance sweep (or
    /// background signal) runs after all jobs, not one per job.
    ///
    /// Returns per-job results in job order plus the sweep's report.
    pub fn apply_batch_many(
        &self,
        jobs: &[(DocId, Vec<UpdateOp>)],
    ) -> (Vec<Result<BatchStats>>, MaintenanceReport) {
        let results = fan_out(jobs.len(), |i| {
            let (doc, ops) = &jobs[i];
            self.inner.apply_batch_one(*doc, ops)
        });
        let report = if jobs.iter().any(|(_, ops)| !ops.is_empty()) {
            self.inner.after_update()
        } else {
            MaintenanceReport::default()
        };
        (results, report)
    }

    /// Runs one maintenance sweep: recompresses eligible documents (debt ≥
    /// threshold) in decreasing debt order until the drain budget is spent.
    /// At least one eligible document is drained per sweep. Returns what was
    /// drained (possibly nothing). Safe to call from any thread; each drain
    /// recompresses aside and swaps the document's snapshot atomically.
    pub fn maintain(&self) -> MaintenanceReport {
        self.inner.maintain()
    }

    /// Forces a recompression of one document, resetting its debt baseline.
    /// The recompression runs aside on the shard (readers stay on the old
    /// snapshot) and publishes with one atomic swap.
    pub fn recompress(&self, doc: DocId) -> Result<RepairStats> {
        self.inner.recompress(doc)
    }

    // ----- slab capture/restore (the durable layer's checkpoint seam) -----

    /// Captures the slab layout — per-slot generations, the free list, the
    /// live list — for checkpointing. Restoring the exact layout (and then
    /// replaying the logged lifecycle events in order) makes [`DocId`]
    /// assignment after recovery identical to the original run.
    pub(crate) fn capture_slab(&self) -> SlabLayout {
        let map = self.inner.map.load();
        SlabLayout {
            generations: map.slots.iter().map(|slot| slot.generation).collect(),
            free: map.free.clone(),
            live: map.live.clone(),
        }
    }

    /// Rebuilds an **empty** store from a captured layout plus the grammars
    /// of the live documents (supplied in live order so master-table
    /// interning is deterministic). Each grammar is rebased onto the shared
    /// symbol table like [`DomStore::load_grammar`] does, but placed at its
    /// recorded `(slot, generation)` instead of through slab allocation.
    pub(crate) fn restore_slab(
        &self,
        layout: SlabLayout,
        docs: Vec<(DocId, Grammar)>,
    ) -> Result<()> {
        let _guard = self.inner.map_write.lock().expect("map lock never poisoned");
        if !self.inner.map.load().live.is_empty() {
            return Err(RepairError::Storage {
                detail: "checkpoint restore requires an empty store".to_string(),
            });
        }
        let mut slots: Vec<Slot> = layout
            .generations
            .iter()
            .map(|&generation| Slot {
                generation,
                shard: None,
                pending: None,
            })
            .collect();
        for (id, mut grammar) in docs {
            self.inner.rebase_onto_master(&mut grammar)?;
            let slot = slots.get_mut(id.index()).ok_or(RepairError::Storage {
                detail: format!("checkpoint document slot {} exceeds the slab", id.slot),
            })?;
            if slot.generation != id.generation || slot.shard.is_some() {
                return Err(RepairError::Storage {
                    detail: format!(
                        "checkpoint document (slot {}, generation {}) conflicts with the slab layout",
                        id.slot, id.generation
                    ),
                });
            }
            slot.shard = Some(Arc::new(DocShard::new(grammar)));
        }
        for &id in &layout.live {
            let ok = slots
                .get(id.index())
                .is_some_and(|slot| slot.generation == id.generation && slot.shard.is_some());
            if !ok {
                return Err(RepairError::Storage {
                    detail: format!("checkpoint live document (slot {}) has no grammar", id.slot),
                });
            }
        }
        self.inner.map.store(Arc::new(DocMap {
            slots,
            free: layout.free,
            live: layout.live,
        }));
        Ok(())
    }

    /// Rebuilds an **empty** store from a checkpoint-v3 image: the master
    /// symbol table is adopted wholesale from its sealed segment runs (no
    /// per-symbol re-intern, segment boundaries intact) and every document
    /// is installed as an undecoded pending payload `(bytes, crc)` at its
    /// recorded `(slot, generation)`, decoded lazily on first touch — so
    /// the restore itself is O(image), not O(decode + rebase) over the
    /// fleet.
    pub(crate) fn restore_slab_lazy(
        &self,
        layout: SlabLayout,
        segments: Vec<(Vec<String>, Vec<usize>)>,
        docs: Vec<(DocId, Vec<u8>, u32)>,
    ) -> Result<()> {
        let _guard = self.inner.map_write.lock().expect("map lock never poisoned");
        if !self.inner.map.load().live.is_empty() {
            return Err(RepairError::Storage {
                detail: "checkpoint restore requires an empty store".to_string(),
            });
        }
        let master =
            SymbolTable::from_sealed_segments(segments).map_err(|e| RepairError::Storage {
                detail: format!("checkpoint corrupt: symbol table image: {e}"),
            })?;
        *self.inner.symbols.lock().expect("master lock never poisoned") = master;
        let mut slots: Vec<Slot> = layout
            .generations
            .iter()
            .map(|&generation| Slot {
                generation,
                shard: None,
                pending: None,
            })
            .collect();
        for (id, bytes, crc) in docs {
            let slot = slots.get_mut(id.index()).ok_or(RepairError::Storage {
                detail: format!("checkpoint document slot {} exceeds the slab", id.slot),
            })?;
            if slot.generation != id.generation || slot.pending.is_some() {
                return Err(RepairError::Storage {
                    detail: format!(
                        "checkpoint document (slot {}, generation {}) conflicts with the slab layout",
                        id.slot, id.generation
                    ),
                });
            }
            slot.pending = Some(Arc::new(PendingDoc { bytes, crc }));
        }
        for &id in &layout.live {
            let ok = slots
                .get(id.index())
                .is_some_and(|slot| slot.generation == id.generation && slot.pending.is_some());
            if !ok {
                return Err(RepairError::Storage {
                    detail: format!("checkpoint live document (slot {}) has no payload", id.slot),
                });
            }
        }
        self.inner.map.store(Arc::new(DocMap {
            slots,
            free: layout.free,
            live: layout.live,
        }));
        Ok(())
    }

    /// The checkpoint-v3 extent payload for one document, with its CRC: a
    /// still-pending document hands back its stored bytes verbatim (never
    /// decoded just to be re-encoded), a live one is serialized from its
    /// authoritative write state. The durable layer calls this under the
    /// document's commit lock, so the payload reflects exactly the records
    /// committed so far for this document.
    pub(crate) fn checkpoint_payload(&self, doc: DocId) -> Result<(Vec<u8>, u32)> {
        let map = self.inner.map.load();
        let slot = map
            .slots
            .get(doc.index())
            .filter(|slot| slot.generation == doc.generation)
            .ok_or(RepairError::NoSuchDocument { id: doc.slot })?;
        if let Some(pending) = &slot.pending {
            return Ok((pending.bytes.clone(), pending.crc));
        }
        if let Some(shard) = &slot.shard {
            // Hold the shard lock only to clone the grammar `Arc`; the
            // serialization runs on the immutable clone.
            let grammar = shard.write.lock().expect("shard lock never poisoned").clone();
            let bytes = serialize::encode_with_shared(&grammar);
            let crc = crc32(&bytes);
            return Ok((bytes, crc));
        }
        Err(RepairError::NoSuchDocument { id: doc.slot })
    }

    /// The master symbol table's sealed segment runs — the checkpoint-v3
    /// symbol image adopted wholesale on restore. The master is always
    /// fully sealed (loads commit sealed scratch tables), so the runs
    /// cover every shared id any document references.
    pub(crate) fn symbol_image(&self) -> Vec<(Vec<String>, Vec<usize>)> {
        let master = self.inner.symbols.lock().expect("master lock never poisoned");
        debug_assert_eq!(master.shared_len(), master.len(), "master is always sealed");
        master
            .sealed_segment_runs()
            .map(|(names, ranks)| (names.to_vec(), ranks.to_vec()))
            .collect()
    }

    /// Number of documents still in undecoded, lazily restored form.
    pub(crate) fn pending_count(&self) -> usize {
        let map = self.inner.map.load();
        map.slots.iter().filter(|slot| slot.pending.is_some()).count()
    }
}

/// Snapshot of the document slab's layout (see [`DomStore::capture_slab`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct SlabLayout {
    /// Per-slot generation counters, in slot order.
    pub generations: Vec<u32>,
    /// Free slots, in stack order (the next insertion pops the last).
    pub free: Vec<u32>,
    /// Live ids, in insertion order.
    pub live: Vec<DocId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    fn doc(tag: &str, n: usize) -> XmlTree {
        let mut s = format!("<{tag}>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str(&format!("</{tag}>"));
        parse_xml(&s).unwrap()
    }

    /// Preorder indices (in the binary tree) of all element nodes of `xml`.
    fn element_positions(xml: &XmlTree) -> Vec<usize> {
        let mut symbols = SymbolTable::new();
        let bin = xmltree::binary::to_binary(xml, &mut symbols).unwrap();
        bin.preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| {
                matches!(bin.kind(n), sltgrammar::NodeKind::Term(t) if !symbols.is_null(t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn loading_shares_the_alphabet_and_round_trips() {
        let store = DomStore::new();
        let a = store.load_xml(&doc("feed", 6)).unwrap();
        let b = store.load_xml(&doc("feed", 9)).unwrap();
        let c = store.load_xml(&doc("blog", 4)).unwrap();
        assert_eq!(store.len(), 3);
        for (id, xml) in [(a, doc("feed", 6)), (b, doc("feed", 9)), (c, doc("blog", 4))] {
            assert_eq!(store.to_xml(id).unwrap().to_xml(), xml.to_xml());
        }
        let stats = store.symbol_stats();
        assert!(
            stats.resident_bytes() < stats.unshared_bytes,
            "sharing must beat per-document tables: {stats:?}"
        );
        // All load-time labels are shared; nothing is private yet.
        assert_eq!(stats.private_bytes, 0);
    }

    #[test]
    fn load_many_matches_sequential_loads_exactly() {
        let xmls = vec![doc("feed", 6), doc("blog", 4), doc("feed", 9), doc("log", 5)];
        let parallel = DomStore::new();
        let par_ids = parallel.load_many(&xmls).unwrap();
        let sequential = DomStore::new();
        let seq_ids: Vec<DocId> = xmls.iter().map(|x| sequential.load_xml(x).unwrap()).collect();
        assert_eq!(par_ids, seq_ids, "id assignment must match sequential loads");
        assert_eq!(parallel.symbols().len(), sequential.symbols().len());
        for (&p, &s) in par_ids.iter().zip(&seq_ids) {
            assert_eq!(
                parallel.to_xml(p).unwrap().to_xml(),
                sequential.to_xml(s).unwrap().to_xml()
            );
            assert_eq!(
                parallel.edge_count(p).unwrap(),
                sequential.edge_count(s).unwrap(),
                "parallel compression must produce the sequential grammar"
            );
        }
        // Shared ids agree between the two stores (same interning order).
        for name in ["feed", "item", "title", "#"] {
            assert_eq!(parallel.symbols().get(name), sequential.symbols().get(name));
        }
    }

    #[test]
    fn shared_ids_agree_across_documents() {
        let store = DomStore::new();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("feed", 5)).unwrap();
        let ga = store.grammar(a).unwrap();
        let gb = store.grammar(b).unwrap();
        for name in ["feed", "item", "title", "body", "p", "#"] {
            let ia = ga.symbols.get(name).expect("label interned");
            assert_eq!(Some(ia), gb.symbols.get(name), "id of `{name}` must agree");
            assert_eq!(Some(ia), store.symbols().get(name));
        }
    }

    #[test]
    fn reads_resolve_through_one_published_snapshot() {
        let store = DomStore::new();
        let a = store.load_xml(&doc("feed", 5)).unwrap();
        let t1 = store.nav_tables(a).unwrap();
        let t2 = store.nav_tables(a).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        let snap = store.snapshot(a).unwrap();
        assert_eq!(snap.cursor().label(), "feed");
        assert_eq!(store.label_at(a, 1).unwrap(), "item");
        assert_eq!(store.query_str(a, "//item").unwrap().len(), 5);
        let q = PathQuery::parse("//item/title").unwrap();
        assert_eq!(
            store.query(a, &q).unwrap().len() as u128,
            store.query_count(a, &q).unwrap()
        );
        let labels: usize = snap.preorder_labels().count();
        assert_eq!(labels as u128, store.derived_size(a).unwrap());
        // Reads never invalidate the snapshot.
        let t3 = store.nav_tables(a).unwrap();
        assert!(Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn held_snapshots_survive_updates_and_recompression() {
        let store = DomStore::new();
        let xml = doc("feed", 6);
        let elements = element_positions(&xml);
        let a = store.load_xml(&xml).unwrap();
        let old = store.snapshot(a).unwrap();
        let old_xml = old.to_xml().unwrap().to_xml();
        let old_tables = old.nav_tables();

        store
            .apply(a, &UpdateOp::Rename { target: elements[1], label: "renamed".into() })
            .unwrap();
        store.recompress(a).unwrap();

        // The held snapshot is bit-for-bit the pre-update document…
        assert_eq!(old.to_xml().unwrap().to_xml(), old_xml);
        assert!(Arc::ptr_eq(&old.nav_tables(), &old_tables));
        // …while fresh reads see the new version through a new snapshot.
        let new = store.snapshot(a).unwrap();
        assert!(!Arc::ptr_eq(&old.grammar_arc(), &new.grammar_arc()));
        assert_eq!(new.label_at(elements[1] as u128).unwrap(), "renamed");
    }

    #[test]
    fn updates_accrue_debt_and_the_scheduler_drains_the_worst_offender() {
        let store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 10,
            drain_budget: 0,
            auto: false,
        });
        let hot_xml = doc("feed", 10);
        let elements = element_positions(&hot_xml);
        let hot = store.load_xml(&hot_xml).unwrap();
        let cold = store.load_xml(&doc("blog", 10)).unwrap();
        assert_eq!(store.debt(hot).unwrap(), 0);
        for i in 0..6 {
            store
                .apply(
                    hot,
                    &UpdateOp::Rename {
                        target: elements[3 * i + 1],
                        label: format!("hot{i}"),
                    },
                )
                .unwrap();
        }
        assert!(store.debt(hot).unwrap() >= 10, "renames blow the grammar up");
        assert_eq!(store.debt(cold).unwrap(), 0);
        let report = store.maintain();
        assert_eq!(report.drained.len(), 1);
        assert_eq!(report.drained[0].0, hot);
        assert_eq!(store.debt(hot).unwrap(), 0);
        assert_eq!(store.recompressions(hot).unwrap(), 1);
        assert_eq!(store.recompressions(cold).unwrap(), 0, "cold docs are left alone");
        // Nothing eligible → empty sweep.
        assert!(store.maintain().is_empty());
    }

    #[test]
    fn auto_maintenance_runs_after_updates_and_batches() {
        let store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 8,
            drain_budget: 0,
            auto: true,
        });
        let xml = doc("feed", 12);
        let elements = element_positions(&xml);
        let a = store.load_xml(&xml).unwrap();
        let mut drained = 0;
        for i in 0..20 {
            let (_, report) = store
                .apply(
                    a,
                    &UpdateOp::Rename {
                        target: elements[2 * (i % 8) + 1],
                        label: format!("x{i}"),
                    },
                )
                .unwrap();
            drained += report.drained.len();
        }
        assert!(drained >= 1, "auto sweeps must fire once debt builds");
        assert_eq!(store.recompressions(a).unwrap(), drained);
        store.grammar(a).unwrap().validate().unwrap();
        // The cached edge count the debt policy runs on stays exact.
        assert_eq!(
            store.edge_count(a).unwrap(),
            store.grammar(a).unwrap().edge_count()
        );
    }

    #[test]
    fn drain_budget_bounds_one_sweep_but_starves_nobody() {
        let store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 1,
            drain_budget: 1, // absurdly small: every sweep drains exactly one doc
            auto: false,
        });
        let xml_a = doc("feed", 8);
        let xml_b = doc("blog", 8);
        let ea = element_positions(&xml_a);
        let eb = element_positions(&xml_b);
        let a = store.load_xml(&xml_a).unwrap();
        let b = store.load_xml(&xml_b).unwrap();
        for (i, id, elements) in [(0usize, a, &ea), (1, b, &eb), (2, a, &ea), (3, b, &eb)] {
            store
                .apply(
                    id,
                    &UpdateOp::Rename {
                        target: elements[2 * (i % 4) + 1],
                        label: format!("y{i}"),
                    },
                )
                .unwrap();
        }
        let first = store.maintain();
        assert_eq!(first.drained.len(), 1, "budget restricts the sweep");
        let worst = first.drained[0].0;
        let second = store.maintain();
        assert_eq!(second.drained.len(), 1);
        assert_ne!(second.drained[0].0, worst, "the other doc drains next sweep");
        assert!(store.maintain().is_empty());
    }

    #[test]
    fn removed_documents_fail_cleanly_and_ids_are_not_reused() {
        let store = DomStore::new();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let g = store.remove(a).unwrap();
        g.validate().unwrap();
        assert!(!store.contains(a));
        assert!(matches!(
            store.label_at(a, 0),
            Err(RepairError::NoSuchDocument { .. })
        ));
        assert!(matches!(store.remove(a), Err(RepairError::NoSuchDocument { .. })));
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        assert_ne!(a, b, "ids are never reused");
        assert_eq!(store.doc_ids(), vec![b]);
    }

    #[test]
    fn generation_tags_make_stale_ids_aba_safe_under_slot_reuse() {
        let store = DomStore::new();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        store.remove(a).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        // The slot is reused, the id is not: the stale id must NOT address b.
        assert_eq!(a.slot(), b.slot(), "the slab must reuse the freed slot");
        assert!(a.generation() < b.generation());
        assert!(matches!(
            store.query_str(a, "//item"),
            Err(RepairError::NoSuchDocument { .. })
        ));
        assert_eq!(store.label_at(b, 0).unwrap(), "blog");
        // Churn: repeated remove/load cycles keep the slot vector bounded
        // and maintenance sweeps only visit live documents.
        for i in 0..10 {
            let id = store.load_xml(&doc("churn", 2 + i % 3)).unwrap();
            store.remove(id).unwrap();
        }
        assert_eq!(store.len(), 1);
        assert_eq!(store.doc_ids(), vec![b]);
        assert!(store.maintain().is_empty());
        assert!(
            self::DomStore::new().inner.map.load().slots.is_empty(),
            "sanity: fresh stores start with no slots"
        );
        assert!(
            store.inner.map.load().slots.len() <= 2,
            "freed slots must be reused, not appended"
        );
    }

    #[test]
    fn published_snapshots_do_not_inflate_resident_bytes() {
        let store = DomStore::new();
        let xml = doc("feed", 6);
        let elements = element_positions(&xml);
        let a = store.load_xml(&xml).unwrap();
        let b = store.load_xml(&doc("blog", 4)).unwrap();
        let baseline = store.symbol_stats();

        // Hold several published snapshots and diverge the write state from
        // the published one: the sealed segments are now referenced from the
        // master, two write grammars, and the held snapshots — and must
        // still count once.
        let snap_a1 = store.snapshot(a).unwrap();
        let snap_b = store.snapshot(b).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: elements[1], label: "zzz_private".into() })
            .unwrap();
        let snap_a2 = store.snapshot(a).unwrap();
        let stats = store.symbol_stats();
        assert_eq!(
            stats.shared_bytes, baseline.shared_bytes,
            "shared segments must count once across all snapshots: {stats:?}"
        );
        // The rename interned a private label: only tail bytes may grow.
        assert!(stats.private_bytes > baseline.private_bytes);
        drop((snap_a1, snap_a2, snap_b));
    }

    #[test]
    fn cloned_stores_are_independent() {
        let store = DomStore::new();
        let xml = doc("feed", 5);
        let elements = element_positions(&xml);
        let a = store.load_xml(&xml).unwrap();
        let before = store.to_xml(a).unwrap().to_xml();
        let copy = store.clone();
        assert_eq!(copy.to_xml(a).unwrap().to_xml(), before, "ids survive cloning");
        copy.apply(a, &UpdateOp::Rename { target: elements[1], label: "only_copy".into() })
            .unwrap();
        assert_eq!(store.to_xml(a).unwrap().to_xml(), before, "copy-on-write isolation");
        assert_ne!(copy.to_xml(a).unwrap().to_xml(), before);
    }

    #[test]
    fn background_maintenance_drains_debt_off_the_request_path() {
        let mut store = DomStore::new().with_scheduler(SchedulerConfig {
            debt_threshold: 8,
            drain_budget: 0,
            auto: true,
        });
        store.start_maintenance(Duration::from_millis(1));
        assert!(store.maintenance_running());
        let xml = doc("feed", 12);
        let elements = element_positions(&xml);
        let a = store.load_xml(&xml).unwrap();
        for i in 0..20 {
            let (_, report) = store
                .apply(
                    a,
                    &UpdateOp::Rename {
                        target: elements[2 * (i % 8) + 1],
                        label: format!("x{i}"),
                    },
                )
                .unwrap();
            assert!(
                report.is_empty(),
                "with a worker attached, drains leave the request path"
            );
        }
        // The worker catches up within its poll interval.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.debt(a).unwrap() >= 8 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(store.debt(a).unwrap() < 8, "the background thread must drain debt");
        assert!(store.recompressions(a).unwrap() >= 1);
        store.stop_maintenance();
        assert!(!store.maintenance_running());
        store.grammar(a).unwrap().validate().unwrap();
        assert!(
            store.to_xml(a).unwrap().to_xml().matches("x19").count() >= 1,
            "updates and background recompression must compose"
        );
    }

    #[test]
    fn failed_load_grammar_leaves_the_master_table_untouched() {
        use sltgrammar::text::parse_grammar;
        let store = DomStore::new();
        store.load_xml(&doc("feed", 3)).unwrap();
        let symbols_before = store.symbols().len();
        // A foreign monadic grammar: `fresh` (rank 1) absorbs fine before
        // `item` conflicts with the store's rank-2 interning — the failed
        // load must not leave `fresh` (or anything else) behind.
        let foreign = parse_grammar("S -> fresh(item(#))").unwrap();
        assert!(store.load_grammar(foreign).is_err());
        assert_eq!(store.len(), 1);
        assert_eq!(store.symbols().len(), symbols_before);
        assert!(store.symbols().get("fresh").is_none(), "no partial absorb");
        // The store still loads ordinary documents using the same labels.
        store.load_xml(&doc("feed", 2)).unwrap();
    }

    #[test]
    fn failed_load_xml_leaves_the_master_table_untouched() {
        use sltgrammar::text::parse_grammar;
        let store = DomStore::new();
        // A monadic grammar interns `item` at rank 1 into the store.
        store.load_grammar(parse_grammar("S -> item(#)").unwrap()).unwrap();
        let symbols_before = store.symbols().len();
        // Loading XML that uses <item> (rank 2) fails — and must not leave
        // the document's *other* labels behind in the master.
        let xml = parse_xml("<feed><item/><other/></feed>").unwrap();
        assert!(store.load_xml(&xml).is_err());
        assert_eq!(store.len(), 1);
        assert_eq!(store.symbols().len(), symbols_before);
        assert!(store.symbols().get("feed").is_none(), "no partial intern");
        assert_eq!(store.symbol_stats().private_bytes, 0);
    }

    #[test]
    fn load_grammar_ignores_unused_foreign_labels() {
        // The foreign table carries a stale `item` at rank 1 that no rule
        // body uses; it must neither conflict with the store's rank-2 `item`
        // nor join the shared alphabet.
        let store = DomStore::new();
        store.load_xml(&doc("feed", 3)).unwrap();
        let mut foreign_symbols = SymbolTable::new();
        foreign_symbols.intern("item", 1).unwrap();
        let xml = parse_xml("<other><x/></other>").unwrap();
        let bin = xmltree::binary::to_binary(&xml, &mut foreign_symbols).unwrap();
        let foreign = sltgrammar::Grammar::new(foreign_symbols, bin);
        let id = store.load_grammar(foreign).unwrap();
        assert_eq!(store.to_xml(id).unwrap().to_xml(), xml.to_xml());
        assert_eq!(
            store.symbols().rank(store.symbols().get("item").unwrap()),
            2,
            "the store-wide `item` keeps its XML rank"
        );
        assert_eq!(store.query_str(id, "//x").unwrap().len(), 1);
    }

    #[test]
    fn load_grammar_rebases_foreign_alphabets() {
        // A grammar compressed privately (its own table, different id order)
        // joins the store and keeps serializing identically.
        let store = DomStore::new();
        store.load_xml(&doc("feed", 4)).unwrap();
        let xml = parse_xml("<other><title/><feed/><zzz/></other>").unwrap();
        let (foreign, _) = GrammarRePair::default().compress_xml(&xml);
        let id = store.load_grammar(foreign).unwrap();
        assert_eq!(store.to_xml(id).unwrap().to_xml(), xml.to_xml());
        // Rebased labels share the store-wide ids.
        let g = store.grammar(id).unwrap();
        assert_eq!(g.symbols.get("title"), store.symbols().get("title"));
        assert_eq!(store.query_str(id, "//zzz").unwrap().len(), 1);
    }
}
