//! Network service edge: a wire-protocol server over the ingestion queue.
//!
//! This module puts a socket in front of a [`DurableStore`]: writes route
//! through an [`IngestQueue`] with a background [`DrainPolicy`] drainer
//! (so every client gets group-committed fsyncs without anyone calling
//! `flush()`), reads route through the store's lock-free snapshots, and
//! both speak one std-only, length-prefixed binary protocol over TCP or
//! unix sockets. The client side lives in [`crate::client`].
//!
//! # Frame layout
//!
//! Every request and response travels as one frame, mirroring the WAL's
//! on-disk format (`core::wal`):
//!
//! ```text
//! frame:   length u32-LE | crc32 u32-LE (of payload) | payload
//! payload: version u8 | request-id varint | kind u8 | body
//! ```
//!
//! Varints are the WAL's LEB128 (`xmltree::wire`), and bodies reuse the
//! wire codecs — trees travel as [`write_tree`] images, op batches as
//! [`write_ops`] sequences, documents as `(slot, generation)` varint
//! pairs. The request id is chosen by the client and echoed verbatim in
//! the response, which is what makes pipelining work: a client may write
//! several requests before reading any reply and match replies by id.
//! Replies are **not** guaranteed to arrive in request order — reads are
//! answered by the connection's reader thread while write acks come from
//! its ack worker as group commits land — so clients must dispatch by id.
//!
//! A frame whose `length` exceeds the configured cap is rejected *before*
//! any allocation, and every decoded count is bounded by the bytes that
//! could possibly back it — arbitrary bytes on the socket can produce a
//! typed error, never an OOM. On any protocol violation (bad CRC, bad
//! version, unknown kind, trailing bytes, oversized frame) the server
//! sends one best-effort [`Response::Error`] with
//! [`ErrorCode::Protocol`] and **closes the connection**: after a framing
//! error the byte stream can no longer be trusted to be frame-aligned.
//! Store-level failures (bad target index, unknown document …) are not
//! protocol errors — they come back as [`ErrorCode::Store`] replies on a
//! connection that stays open.
//!
//! # Ack semantics
//!
//! [`Request::ApplyBatch`] is acknowledged **only after the
//! group-committed fsync**: the reader thread submits to the queue and
//! hands the ticket to the connection's ack worker, which parks in
//! [`IngestQueue::wait_timeout`] and writes the `Applied` reply when the
//! queue posts the ticket's result — which happens only after the drain's
//! WAL record is fsync'd and applied. Decoupling the ack from the reader
//! is what lets a pipelined connection keep feeding the queue while
//! earlier batches await their fsync, so its acked batches share group
//! commits instead of paying one fsync each. A client that has
//! the `Applied` reply in hand therefore holds a durable write — the
//! kill-and-recover suite (`tests/server_durable.rs`) pins exactly this.
//! If no drain lands within the configured reply timeout the client gets
//! [`ErrorCode::Timeout`] instead of a worker thread parked forever.
//! [`Request::LoadXml`] commits its own WAL record (loads are not
//! queued), so its `Loaded` reply carries the same guarantee.
//!
//! # Backpressure rules
//!
//! The queue is built with the server's [`QueueConfig`]. With a
//! high-watermark and [`BackpressurePolicy::Fail`], a submission over the
//! bound is answered with [`ErrorCode::Backpressure`] — the retry is
//! pushed to the client, and the connection stays open. With
//! [`BackpressurePolicy::Block`] (default) the handler thread itself
//! parks in `submit`, which transfers the backpressure to the socket:
//! the client's later requests sit unread in the kernel buffer until the
//! disk catches up. Reads never backpressure — they touch only
//! snapshots.
//!
//! [`BackpressurePolicy::Fail`]: crate::queue::BackpressurePolicy::Fail
//! [`BackpressurePolicy::Block`]: crate::queue::BackpressurePolicy::Block
//! [`write_tree`]: xmltree::wire::write_tree
//! [`write_ops`]: xmltree::wire::write_ops

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sltgrammar::crc32::crc32;
use xmltree::updates::UpdateOp;
use xmltree::wire::{write_ops, write_tree, write_varint, WireReader};
use xmltree::XmlTree;

use crate::durable::DurableStore;
use crate::error::{RepairError, Result};
use crate::query::QueryMatches;
use crate::queue::{DrainPolicy, IngestQueue, QueueConfig, QueueError};
use crate::store::DocId;
use crate::update::BatchStats;

/// Protocol version byte every frame starts its payload with.
pub const PROTOCOL_VERSION: u8 = 1;

/// Frame header size: `length u32-LE | crc32 u32-LE`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Default bound on a single frame's payload (requests *and* responses).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 64 << 20;

/// One request record (see the module docs for the frame layout).
#[derive(Debug, Clone)]
pub enum Request {
    /// Compress and load a document; replied with [`Response::Loaded`]
    /// once the load's WAL record is durable.
    LoadXml {
        /// The document to load.
        tree: XmlTree,
    },
    /// Submit one update batch through the ingestion queue; replied with
    /// [`Response::Applied`] only after the group-committed fsync (see
    /// the module docs' ack semantics).
    ApplyBatch {
        /// Target document.
        doc: DocId,
        /// The batch, applied with the store's non-fatal per-op
        /// semantics.
        ops: Vec<UpdateOp>,
    },
    /// Evaluate a path query against the document's current snapshot.
    Query {
        /// Target document.
        doc: DocId,
        /// Query source, parsed server-side (`PathQuery` syntax).
        path: String,
    },
    /// Serialize the document's current snapshot back to XML text.
    ToXml {
        /// Target document.
        doc: DocId,
    },
    /// Write a fuzzy paged checkpoint and (if possible) truncate the log.
    Checkpoint,
    /// Server, store and queue counters.
    Stats,
}

/// Why a [`Response::Error`] was sent; decides whether the connection
/// survives the reply (only protocol violations close it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or its body failed validation; the connection is closed
    /// after this reply.
    Protocol,
    /// The store rejected the operation (unknown document, bad target,
    /// I/O failure …); the connection stays open.
    Store,
    /// No drain landed within the server's reply timeout; the batch may
    /// still commit later — the client must treat it as *unknown*, not
    /// as failed.
    Timeout,
    /// The queue is at its high-watermark under
    /// [`BackpressurePolicy::Fail`](crate::queue::BackpressurePolicy::Fail);
    /// retry after a drain.
    Backpressure,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Protocol => 0,
            ErrorCode::Store => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::Backpressure => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ErrorCode::Protocol),
            1 => Some(ErrorCode::Store),
            2 => Some(ErrorCode::Timeout),
            3 => Some(ErrorCode::Backpressure),
            _ => None,
        }
    }
}

/// The subset of [`BatchStats`] that crosses the wire with an `Applied`
/// reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireBatchStats {
    /// Ops applied (including no-ops skipped by non-fatal semantics).
    pub ops: u64,
    /// Chunks the batch planner split the ops into.
    pub chunks: u64,
    /// Grammar edges before the batch.
    pub edges_before: u64,
    /// Grammar edges after the batch.
    pub edges_after: u64,
}

impl From<BatchStats> for WireBatchStats {
    fn from(s: BatchStats) -> Self {
        WireBatchStats {
            ops: s.ops as u64,
            chunks: s.chunks as u64,
            edges_before: s.edges_before as u64,
            edges_after: s.edges_after as u64,
        }
    }
}

/// The checkpoint outcome that crosses the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCheckpoint {
    /// Base LSN of the checkpoint.
    pub last_lsn: u64,
    /// Documents serialized.
    pub documents: u64,
    /// Checkpoint file size in bytes.
    pub bytes: u64,
    /// Whether the log could be truncated afterwards.
    pub log_truncated: bool,
}

/// Server, store and queue counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Documents live in the store.
    pub documents: u64,
    /// Highest fsync'd LSN.
    pub durable_lsn: u64,
    /// WAL fsyncs since open — compare against request counts to see the
    /// group-commit win.
    pub wal_syncs: u64,
    /// Batches accepted by the queue over its lifetime.
    pub submitted: u64,
    /// Queue drains that wrote a record.
    pub flushes: u64,
    /// Coalesced per-document jobs across all drains.
    pub coalesced_jobs: u64,
    /// Ops queued right now.
    pub pending_ops: u64,
    /// Age of the oldest queued batch in microseconds (`None` when the
    /// queue is empty).
    pub oldest_pending_age_us: Option<u64>,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Requests answered since the server started.
    pub requests: u64,
}

/// One response record; the request id of the frame echoes the request
/// it answers.
#[derive(Debug, Clone)]
pub enum Response {
    /// The request failed; see [`ErrorCode`] for whether the connection
    /// survives.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// [`Request::LoadXml`] succeeded and is durable.
    Loaded {
        /// Id of the freshly loaded document.
        doc: DocId,
    },
    /// [`Request::ApplyBatch`] is durable and applied.
    Applied {
        /// Outcome of the batch.
        stats: WireBatchStats,
    },
    /// [`Request::Query`] result.
    Matches {
        /// Matches in document order.
        matches: QueryMatches,
    },
    /// [`Request::ToXml`] result.
    Xml {
        /// Serialized document text.
        text: String,
    },
    /// [`Request::Checkpoint`] succeeded.
    CheckpointDone {
        /// What the checkpoint covered.
        report: WireCheckpoint,
    },
    /// [`Request::Stats`] result.
    Stats {
        /// Current counters.
        stats: WireStats,
    },
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_doc(out: &mut Vec<u8>, doc: DocId) {
    write_varint(out, doc.slot() as u64);
    write_varint(out, doc.generation() as u64);
}

fn proto_err(detail: impl Into<String>) -> RepairError {
    RepairError::Protocol {
        detail: detail.into(),
    }
}

fn read_doc(r: &mut WireReader<'_>) -> Result<DocId> {
    let slot = r.varint().map_err(|e| proto_err(e.to_string()))?;
    let generation = r.varint().map_err(|e| proto_err(e.to_string()))?;
    if slot > u32::MAX as u64 || generation > u32::MAX as u64 {
        return Err(proto_err(format!(
            "document id ({slot}, {generation}) out of range"
        )));
    }
    Ok(DocId::from_parts(slot as u32, generation as u32))
}

/// A count that claims more elements than the remaining bytes could back
/// (at `min_bytes` each) is corrupt; reject it before allocating.
fn bounded_count(r: &mut WireReader<'_>, min_bytes: usize, what: &str) -> Result<usize> {
    let n = r.varint().map_err(|e| proto_err(e.to_string()))?;
    let cap = (r.remaining() / min_bytes.max(1)) as u64;
    if n > cap {
        return Err(proto_err(format!(
            "{what} count {n} exceeds what {} remaining bytes could hold",
            r.remaining()
        )));
    }
    Ok(n as usize)
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Encodes one request as a complete frame (header included).
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut p = vec![PROTOCOL_VERSION];
    write_varint(&mut p, id);
    match req {
        Request::LoadXml { tree } => {
            p.push(1);
            write_tree(&mut p, tree);
        }
        Request::ApplyBatch { doc, ops } => {
            p.push(2);
            write_doc(&mut p, *doc);
            write_ops(&mut p, ops);
        }
        Request::Query { doc, path } => {
            p.push(3);
            write_doc(&mut p, *doc);
            write_string(&mut p, path);
        }
        Request::ToXml { doc } => {
            p.push(4);
            write_doc(&mut p, *doc);
        }
        Request::Checkpoint => p.push(5),
        Request::Stats => p.push(6),
    }
    frame(p)
}

/// Decodes a request payload (the bytes *after* the frame header, CRC
/// already verified). Returns the request id alongside the request; every
/// failure is a typed [`RepairError::Protocol`].
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request)> {
    let mut r = WireReader::new(payload);
    let version = r.byte().map_err(|e| proto_err(e.to_string()))?;
    if version != PROTOCOL_VERSION {
        return Err(proto_err(format!(
            "unsupported protocol version {version} (expected {PROTOCOL_VERSION})"
        )));
    }
    let id = r.varint().map_err(|e| proto_err(e.to_string()))?;
    let kind = r.byte().map_err(|e| proto_err(e.to_string()))?;
    let req = match kind {
        1 => Request::LoadXml {
            tree: r.tree().map_err(|e| proto_err(e.to_string()))?,
        },
        2 => {
            let doc = read_doc(&mut r)?;
            let ops = r.ops().map_err(|e| proto_err(e.to_string()))?;
            Request::ApplyBatch { doc, ops }
        }
        3 => {
            let doc = read_doc(&mut r)?;
            let path = r.string().map_err(|e| proto_err(e.to_string()))?;
            Request::Query { doc, path }
        }
        4 => Request::ToXml {
            doc: read_doc(&mut r)?,
        },
        5 => Request::Checkpoint,
        6 => Request::Stats,
        other => return Err(proto_err(format!("unknown request kind {other}"))),
    };
    if !r.finished() {
        return Err(proto_err(format!(
            "{} trailing bytes after request body",
            r.remaining()
        )));
    }
    Ok((id, req))
}

/// Encodes one response as a complete frame (header included).
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut p = vec![PROTOCOL_VERSION];
    write_varint(&mut p, id);
    match resp {
        Response::Error { code, message } => {
            p.push(0);
            p.push(code.to_byte());
            write_string(&mut p, message);
        }
        Response::Loaded { doc } => {
            p.push(1);
            write_doc(&mut p, *doc);
        }
        Response::Applied { stats } => {
            p.push(2);
            for v in [stats.ops, stats.chunks, stats.edges_before, stats.edges_after] {
                write_varint(&mut p, v);
            }
        }
        Response::Matches { matches } => {
            p.push(3);
            write_varint(&mut p, matches.positions.len() as u64);
            for &pos in &matches.positions {
                write_varint(&mut p, pos);
            }
            for label in &matches.labels {
                write_string(&mut p, label);
            }
        }
        Response::Xml { text } => {
            p.push(4);
            write_string(&mut p, text);
        }
        Response::CheckpointDone { report } => {
            p.push(5);
            write_varint(&mut p, report.last_lsn);
            write_varint(&mut p, report.documents);
            write_varint(&mut p, report.bytes);
            p.push(report.log_truncated as u8);
        }
        Response::Stats { stats } => {
            p.push(6);
            for v in [
                stats.documents,
                stats.durable_lsn,
                stats.wal_syncs,
                stats.submitted,
                stats.flushes,
                stats.coalesced_jobs,
                stats.pending_ops,
                stats.connections,
                stats.requests,
            ] {
                write_varint(&mut p, v);
            }
            match stats.oldest_pending_age_us {
                None => p.push(0),
                Some(us) => {
                    p.push(1);
                    write_varint(&mut p, us);
                }
            }
        }
    }
    frame(p)
}

/// Decodes a response payload (CRC already verified); the mirror of
/// [`decode_response`]'s producer, used by [`crate::client`].
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response)> {
    let mut r = WireReader::new(payload);
    let version = r.byte().map_err(|e| proto_err(e.to_string()))?;
    if version != PROTOCOL_VERSION {
        return Err(proto_err(format!(
            "unsupported protocol version {version} (expected {PROTOCOL_VERSION})"
        )));
    }
    let id = r.varint().map_err(|e| proto_err(e.to_string()))?;
    let kind = r.byte().map_err(|e| proto_err(e.to_string()))?;
    let resp = match kind {
        0 => {
            let code = r.byte().map_err(|e| proto_err(e.to_string()))?;
            let code = ErrorCode::from_byte(code)
                .ok_or_else(|| proto_err(format!("unknown error code {code}")))?;
            let message = r.string().map_err(|e| proto_err(e.to_string()))?;
            Response::Error { code, message }
        }
        1 => Response::Loaded {
            doc: read_doc(&mut r)?,
        },
        2 => {
            let mut vals = [0u64; 4];
            for v in vals.iter_mut() {
                *v = r.varint().map_err(|e| proto_err(e.to_string()))?;
            }
            Response::Applied {
                stats: WireBatchStats {
                    ops: vals[0],
                    chunks: vals[1],
                    edges_before: vals[2],
                    edges_after: vals[3],
                },
            }
        }
        3 => {
            let n = bounded_count(&mut r, 1, "match")?;
            let mut positions = Vec::with_capacity(n);
            for _ in 0..n {
                positions.push(r.varint().map_err(|e| proto_err(e.to_string()))?);
            }
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(r.string().map_err(|e| proto_err(e.to_string()))?);
            }
            Response::Matches {
                matches: QueryMatches { positions, labels },
            }
        }
        4 => Response::Xml {
            text: r.string().map_err(|e| proto_err(e.to_string()))?,
        },
        5 => {
            let last_lsn = r.varint().map_err(|e| proto_err(e.to_string()))?;
            let documents = r.varint().map_err(|e| proto_err(e.to_string()))?;
            let bytes = r.varint().map_err(|e| proto_err(e.to_string()))?;
            let log_truncated = match r.byte().map_err(|e| proto_err(e.to_string()))? {
                0 => false,
                1 => true,
                other => return Err(proto_err(format!("bad bool byte {other}"))),
            };
            Response::CheckpointDone {
                report: WireCheckpoint {
                    last_lsn,
                    documents,
                    bytes,
                    log_truncated,
                },
            }
        }
        6 => {
            let mut vals = [0u64; 9];
            for v in vals.iter_mut() {
                *v = r.varint().map_err(|e| proto_err(e.to_string()))?;
            }
            let oldest_pending_age_us = match r.byte().map_err(|e| proto_err(e.to_string()))? {
                0 => None,
                1 => Some(r.varint().map_err(|e| proto_err(e.to_string()))?),
                other => return Err(proto_err(format!("bad option byte {other}"))),
            };
            Response::Stats {
                stats: WireStats {
                    documents: vals[0],
                    durable_lsn: vals[1],
                    wal_syncs: vals[2],
                    submitted: vals[3],
                    flushes: vals[4],
                    coalesced_jobs: vals[5],
                    pending_ops: vals[6],
                    connections: vals[7],
                    requests: vals[8],
                    oldest_pending_age_us,
                },
            }
        }
        other => return Err(proto_err(format!("unknown response kind {other}"))),
    };
    if !r.finished() {
        return Err(proto_err(format!(
            "{} trailing bytes after response body",
            r.remaining()
        )));
    }
    Ok((id, resp))
}

// ---------------------------------------------------------------------------
// Stream plumbing shared by server and client
// ---------------------------------------------------------------------------

/// One connected socket, TCP or unix; the protocol is identical on both.
#[derive(Debug)]
pub(crate) enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

pub(crate) enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean end of stream before the first byte.
    Eof,
    /// The stop flag was raised while polling.
    Stopped,
    /// The stream died (including EOF mid-frame).
    Failed(String),
}

/// Fills `buf` from `stream`, tolerating read-timeout wakeups (the
/// server's shutdown poll) and partial reads. `started` marks whether
/// earlier bytes of the same frame were already consumed — EOF is clean
/// only on a frame boundary.
pub(crate) fn read_full(
    stream: &mut Conn,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
    started: bool,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !started {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Failed("connection closed mid-frame".into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                if let Some(stop) = stop {
                    if stop.load(Ordering::Acquire) {
                        return ReadOutcome::Stopped;
                    }
                } else if e.kind() != io::ErrorKind::Interrupted {
                    // No stop flag to poll (client side): a timeout is a
                    // dead peer.
                    return ReadOutcome::Failed(format!("read timed out: {e}"));
                }
            }
            Err(e) => return ReadOutcome::Failed(e.to_string()),
        }
    }
    ReadOutcome::Full
}

pub(crate) enum FrameOutcome {
    /// A CRC-verified payload.
    Payload(Vec<u8>),
    /// Clean end of stream between frames.
    Eof,
    /// The stop flag was raised.
    Stopped,
    /// The stream died.
    Io(String),
    /// The bytes are not a valid frame (oversized or CRC mismatch); the
    /// stream is no longer frame-aligned.
    Corrupt(String),
}

/// Reads one frame: header, length bound, payload, CRC check.
pub(crate) fn read_frame(stream: &mut Conn, stop: Option<&AtomicBool>, max_len: u32) -> FrameOutcome {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_full(stream, &mut header, stop, false) {
        ReadOutcome::Full => {}
        ReadOutcome::Eof => return FrameOutcome::Eof,
        ReadOutcome::Stopped => return FrameOutcome::Stopped,
        ReadOutcome::Failed(e) => return FrameOutcome::Io(e),
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let want = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        // Reject before allocating: arbitrary bytes must not drive memory.
        return FrameOutcome::Corrupt(format!(
            "frame length {len} exceeds the {max_len}-byte cap"
        ));
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, stop, true) {
        ReadOutcome::Full => {}
        ReadOutcome::Eof => unreachable!("mid-frame EOF reports Failed"),
        ReadOutcome::Stopped => return FrameOutcome::Stopped,
        ReadOutcome::Failed(e) => return FrameOutcome::Io(e),
    }
    let found = crc32(&payload);
    if found != want {
        return FrameOutcome::Corrupt(format!(
            "frame checksum mismatch: stored {want:#010x}, computed {found:#010x}"
        ));
    }
    FrameOutcome::Payload(payload)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Tuning of one [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Watermarks of the background drainer the server installs on its
    /// queue.
    pub drain: DrainPolicy,
    /// Backpressure bounds of the queue (see the module docs).
    pub queue: QueueConfig,
    /// Reject request frames longer than this before allocating.
    pub max_frame_len: u32,
    /// How long an `ApplyBatch` handler waits for its drain before
    /// answering [`ErrorCode::Timeout`].
    pub reply_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            drain: DrainPolicy::default(),
            queue: QueueConfig::default(),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            reply_timeout: Duration::from_secs(30),
        }
    }
}

/// Point-in-time counters of a running [`Server`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (including error replies).
    pub requests: u64,
    /// Frames rejected as protocol violations.
    pub protocol_errors: u64,
}

struct Shared {
    queue: Arc<IngestQueue>,
    config: ServerConfig,
    stop: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    /// Live connection handler threads, joined at shutdown.
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A running wire-protocol server (see the module docs). Dropping the
/// server shuts it down: the acceptor stops, every connection handler is
/// joined, and the queue's drainer runs one final flush.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Serves `store` over TCP on `addr` (e.g. `"127.0.0.1:0"`; the
    /// ephemeral port is readable via [`local_addr`](Server::local_addr)).
    pub fn serve_tcp(store: Arc<DurableStore>, addr: &str, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr).map_err(|e| RepairError::Storage {
            detail: format!("binding tcp listener on {addr}: {e}"),
        })?;
        let tcp_addr = listener.local_addr().ok();
        Self::start(store, Listener::Tcp(listener), tcp_addr, config)
    }

    /// Serves `store` over a unix-domain socket bound at `path` (removed
    /// and re-created if a stale socket file is present).
    #[cfg(unix)]
    pub fn serve_unix(
        store: Arc<DurableStore>,
        path: &Path,
        config: ServerConfig,
    ) -> Result<Server> {
        if path.exists() {
            let _ = std::fs::remove_file(path);
        }
        let listener = UnixListener::bind(path).map_err(|e| RepairError::Storage {
            detail: format!("binding unix listener at {}: {e}", path.display()),
        })?;
        Self::start(store, Listener::Unix(listener), None, config)
    }

    fn start(
        store: Arc<DurableStore>,
        listener: Listener,
        tcp_addr: Option<SocketAddr>,
        config: ServerConfig,
    ) -> Result<Server> {
        let queue = Arc::new(IngestQueue::with_config(store, config.queue));
        queue.start_drainer(config.drain);
        let shared = Arc::new(Shared {
            queue,
            config,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            handlers: Mutex::new(Vec::new()),
        });
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true),
        }
        .map_err(|e| RepairError::Storage {
            detail: format!("setting listener non-blocking: {e}"),
        })?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sltxml-acceptor".into())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| RepairError::Storage {
                    detail: format!("spawning acceptor: {e}"),
                })?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            tcp_addr,
        })
    }

    /// The bound TCP address (`None` for unix-socket servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The ingestion queue the server routes writes through (its store is
    /// reachable via [`IngestQueue::store`]).
    pub fn queue(&self) -> &Arc<IngestQueue> {
        &self.shared.queue
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, joins every connection handler, and stops the
    /// queue's drainer (one final flush — queued acked work is already
    /// durable by definition, this drains the unacked tail). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .expect("handler list lock never poisoned"),
        );
        for h in handlers {
            let _ = h.join();
        }
        self.shared.queue.stop_drainer();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let accepted = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        match accepted {
            Ok(conn) => {
                // The accepted socket inherits non-blocking on some
                // platforms; handlers want blocking reads with a timeout
                // poll for the stop flag.
                let blocking_ok = match &conn {
                    Conn::Tcp(s) => s.set_nonblocking(false).is_ok(),
                    #[cfg(unix)]
                    Conn::Unix(s) => s.set_nonblocking(false).is_ok(),
                };
                if !blocking_ok || conn.set_read_timeout(Some(Duration::from_millis(25))).is_err()
                {
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let shared_conn = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("sltxml-conn".into())
                    .spawn(move || handle_conn(&shared_conn, conn));
                if let Ok(handle) = handle {
                    shared
                        .handlers
                        .lock()
                        .expect("handler list lock never poisoned")
                        .push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Writes one response frame under the connection's writer lock. Returns
/// `false` once the peer is gone (the caller stops serving).
fn send_reply(writer: &Mutex<Conn>, id: u64, response: &Response) -> bool {
    let reply = encode_response(id, response);
    let mut w = writer.lock().expect("reply writer lock never poisoned");
    w.write_all(&reply).is_ok() && w.flush().is_ok()
}

/// The per-connection ack worker: redeems queued tickets in submission
/// order and writes `Applied` replies as group commits land. Runs until
/// the reader drops its channel sender; keeps redeeming (without
/// writing) after the first failed write so no ticket result is left
/// unconsumed in the queue.
fn ack_loop(
    queue: &IngestQueue,
    reply_timeout: Duration,
    writer: &Mutex<Conn>,
    acks: &mpsc::Receiver<(u64, crate::queue::Ticket)>,
) {
    let mut broken = false;
    while let Ok((id, ticket)) = acks.recv() {
        let response = match queue.wait_timeout(ticket, reply_timeout) {
            Ok(stats) => Response::Applied {
                stats: stats.into(),
            },
            Err(e @ QueueError::Timeout { .. }) => Response::Error {
                code: ErrorCode::Timeout,
                message: e.to_string(),
            },
            Err(QueueError::Store(e)) => store_error(e),
            Err(e @ QueueError::WouldBlock { .. }) => Response::Error {
                code: ErrorCode::Backpressure,
                message: e.to_string(),
            },
        };
        if !broken && !send_reply(writer, id, &response) {
            broken = true;
        }
    }
}

fn handle_conn(shared: &Shared, mut conn: Conn) {
    let Ok(writer) = conn.try_clone() else { return };
    let writer = Arc::new(Mutex::new(writer));
    let (ack_tx, ack_rx) = mpsc::channel();
    let acker = {
        let writer = Arc::clone(&writer);
        let queue = Arc::clone(&shared.queue);
        let reply_timeout = shared.config.reply_timeout;
        std::thread::Builder::new()
            .name("sltxml-ack".into())
            .spawn(move || ack_loop(&queue, reply_timeout, &writer, &ack_rx))
    };
    let Ok(acker) = acker else { return };

    loop {
        let payload = match read_frame(&mut conn, Some(&shared.stop), shared.config.max_frame_len)
        {
            FrameOutcome::Payload(p) => p,
            FrameOutcome::Eof | FrameOutcome::Stopped | FrameOutcome::Io(_) => break,
            FrameOutcome::Corrupt(detail) => {
                // The stream is no longer frame-aligned: one typed reply,
                // then close.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                send_reply(
                    &writer,
                    0,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: detail,
                    },
                );
                conn.shutdown();
                break;
            }
        };
        let (id, request) = match decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                shared.requests.fetch_add(1, Ordering::Relaxed);
                send_reply(
                    &writer,
                    0,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                );
                conn.shutdown();
                break;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            // Submit on the reader thread (so Block-mode backpressure
            // stalls frame intake), ack from the worker (so pipelined
            // batches coalesce into shared group commits).
            Request::ApplyBatch { doc, ops } => match shared.queue.submit(doc, ops) {
                Ok(ticket) => {
                    if ack_tx.send((id, ticket)).is_err() {
                        break;
                    }
                }
                Err(e @ QueueError::WouldBlock { .. }) => {
                    let busy = Response::Error {
                        code: ErrorCode::Backpressure,
                        message: e.to_string(),
                    };
                    if !send_reply(&writer, id, &busy) {
                        break;
                    }
                }
                Err(e) => {
                    let failed = Response::Error {
                        code: ErrorCode::Store,
                        message: e.to_string(),
                    };
                    if !send_reply(&writer, id, &failed) {
                        break;
                    }
                }
            },
            other => {
                let response = dispatch(shared, other);
                if !send_reply(&writer, id, &response) {
                    break;
                }
            }
        }
    }
    drop(ack_tx);
    let _ = acker.join();
}

fn store_error(e: RepairError) -> Response {
    Response::Error {
        code: ErrorCode::Store,
        message: e.to_string(),
    }
}

fn dispatch(shared: &Shared, request: Request) -> Response {
    let store = shared.queue.store();
    match request {
        Request::LoadXml { tree } => match store.load_xml(&tree) {
            // load_xml returns with its WAL record committed and fsync'd:
            // this reply is an ack in the same sense as Applied.
            Ok(doc) => Response::Loaded { doc },
            Err(e) => store_error(e),
        },
        // ApplyBatch never reaches dispatch: `handle_conn` intercepts it
        // so the ack can come from the connection's ack worker.
        Request::ApplyBatch { .. } => Response::Error {
            code: ErrorCode::Protocol,
            message: "ApplyBatch is served by the connection's ack worker".into(),
        },
        Request::Query { doc, path } => match store.query_str(doc, &path) {
            Ok(matches) => Response::Matches { matches },
            Err(e) => store_error(e),
        },
        Request::ToXml { doc } => match store.to_xml(doc) {
            Ok(tree) => Response::Xml {
                text: tree.to_xml(),
            },
            Err(e) => store_error(e),
        },
        Request::Checkpoint => match store.checkpoint() {
            Ok(report) => Response::CheckpointDone {
                report: WireCheckpoint {
                    last_lsn: report.last_lsn,
                    documents: report.documents as u64,
                    bytes: report.bytes as u64,
                    log_truncated: report.log_truncated,
                },
            },
            Err(e) => store_error(e),
        },
        Request::Stats => {
            let q = shared.queue.stats();
            Response::Stats {
                stats: WireStats {
                    documents: store.len() as u64,
                    durable_lsn: store.durable_lsn(),
                    wal_syncs: store.wal_sync_count(),
                    submitted: q.submitted,
                    flushes: q.flushes,
                    coalesced_jobs: q.coalesced_jobs,
                    pending_ops: q.pending_ops,
                    oldest_pending_age_us: q
                        .oldest_pending_age
                        .map(|age| age.as_micros().min(u64::MAX as u128) as u64),
                    connections: shared.connections.load(Ordering::Relaxed),
                    requests: shared.requests.load(Ordering::Relaxed),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    fn sample_tree() -> XmlTree {
        parse_xml("<feed><item><title/><body><p/><p/></body></item></feed>").unwrap()
    }

    #[test]
    fn requests_roundtrip_through_the_codec() {
        let doc = DocId::from_parts(3, 7);
        let requests = vec![
            Request::LoadXml { tree: sample_tree() },
            Request::ApplyBatch {
                doc,
                ops: vec![UpdateOp::Rename {
                    target: 1,
                    label: "entry".into(),
                }],
            },
            Request::Query {
                doc,
                path: "//item/title".into(),
            },
            Request::ToXml { doc },
            Request::Checkpoint,
            Request::Stats,
        ];
        for (i, req) in requests.into_iter().enumerate() {
            let frame = encode_request(i as u64 + 10, &req);
            let payload = &frame[FRAME_HEADER_LEN..];
            assert_eq!(
                u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize,
                payload.len()
            );
            assert_eq!(
                u32::from_le_bytes(frame[4..8].try_into().unwrap()),
                crc32(payload)
            );
            let (id, decoded) = decode_request(payload).unwrap();
            assert_eq!(id, i as u64 + 10);
            // Re-encoding the decoded request must reproduce the frame
            // byte for byte (the codec is canonical).
            assert_eq!(encode_request(id, &decoded), frame);
        }
    }

    #[test]
    fn responses_roundtrip_through_the_codec() {
        let responses = vec![
            Response::Error {
                code: ErrorCode::Backpressure,
                message: "full".into(),
            },
            Response::Loaded {
                doc: DocId::from_parts(0, 1),
            },
            Response::Applied {
                stats: WireBatchStats {
                    ops: 4,
                    chunks: 2,
                    edges_before: 100,
                    edges_after: 104,
                },
            },
            Response::Matches {
                matches: QueryMatches {
                    positions: vec![1, 5, 9],
                    labels: vec!["a".into(), "b".into(), "c".into()],
                },
            },
            Response::Xml {
                text: "<feed/>".into(),
            },
            Response::CheckpointDone {
                report: WireCheckpoint {
                    last_lsn: 42,
                    documents: 3,
                    bytes: 1024,
                    log_truncated: true,
                },
            },
            Response::Stats {
                stats: WireStats {
                    documents: 2,
                    durable_lsn: 17,
                    wal_syncs: 5,
                    submitted: 100,
                    flushes: 4,
                    coalesced_jobs: 8,
                    pending_ops: 12,
                    oldest_pending_age_us: Some(1500),
                    connections: 3,
                    requests: 120,
                },
            },
        ];
        for (i, resp) in responses.into_iter().enumerate() {
            let frame = encode_response(i as u64, &resp);
            let (id, decoded) = decode_response(&frame[FRAME_HEADER_LEN..]).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(encode_response(id, &decoded), frame);
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_typed_errors() {
        // Unknown kind.
        let mut p = vec![PROTOCOL_VERSION];
        write_varint(&mut p, 1);
        p.push(200);
        assert!(matches!(
            decode_request(&p),
            Err(RepairError::Protocol { .. })
        ));
        // Bad version.
        assert!(matches!(
            decode_request(&[99, 0, 5]),
            Err(RepairError::Protocol { .. })
        ));
        // Trailing bytes.
        let mut frame = encode_request(1, &Request::Checkpoint);
        frame.push(0xFF);
        assert!(matches!(
            decode_request(&frame[FRAME_HEADER_LEN..]),
            Err(RepairError::Protocol { .. })
        ));
        // Truncated body.
        let frame = encode_request(
            1,
            &Request::Query {
                doc: DocId::from_parts(1, 1),
                path: "//a".into(),
            },
        );
        let payload = &frame[FRAME_HEADER_LEN..];
        assert!(matches!(
            decode_request(&payload[..payload.len() - 2]),
            Err(RepairError::Protocol { .. })
        ));
        // A match count no remaining bytes could back must not allocate.
        let mut p = vec![PROTOCOL_VERSION];
        write_varint(&mut p, 1);
        p.push(3);
        write_varint(&mut p, u64::MAX >> 8);
        assert!(matches!(
            decode_response(&p),
            Err(RepairError::Protocol { .. })
        ));
    }
}
