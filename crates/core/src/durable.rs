//! `DurableStore` — a crash-safe [`DomStore`]: every mutation is written
//! ahead to a [`crate::wal::Wal`], checkpoints serialize the whole store
//! atomically, and [`DurableStore::open`] recovers the exact pre-crash state
//! by restoring the last checkpoint and replaying the log tail.
//!
//! # What is logged, and when
//!
//! Each mutating call commits exactly one record *before* touching the
//! in-memory store (fsync-before-apply — see the [`crate::wal`] module docs
//! for the commit protocol):
//!
//! * [`DurableStore::load_xml`] logs the XML fragment itself; replay re-runs
//!   the same compression against the same shared-alphabet state, so the
//!   recovered grammar and [`DocId`] are bit-identical to the original.
//! * [`DurableStore::load_grammar`] logs the grammar's binary encoding.
//! * [`DurableStore::remove`] logs the removed id; replay reproduces the
//!   slab's free-list state (and therefore all later id assignments).
//! * [`DurableStore::apply`] / [`DurableStore::apply_batch`] log the batch;
//!   [`DurableStore::apply_batch_many`] logs **one** record for the whole
//!   fan-out, so the multi-document batch pays one fsync built-in, and
//!   concurrent single-document writers share fsyncs through the log's
//!   leader-based group commit.
//!
//! Maintenance (recompression) is deliberately **not** logged: it never
//! changes the derived document, so replaying the update log against the
//! checkpoint reproduces the same documents regardless of when
//! recompressions ran.
//!
//! # Ordering discipline
//!
//! Replay applies records strictly in LSN order, so the log order must
//! agree with the in-memory apply order wherever the two operations do not
//! commute: a per-document lock is held across *commit + apply* for
//! updates, a store-level lifecycle lock for loads and removals (which
//! contend on the slab and the shared alphabet). Operations on distinct
//! documents commute, so their records may interleave freely — that is
//! what lets their commits coalesce into shared fsyncs.
//!
//! # Checkpoints and recovery
//!
//! [`DurableStore::checkpoint`] is **fuzzy**: it holds only the lifecycle
//! lock (freezing the slab layout and the shared alphabet — loads and
//! removes wait, updates keep flowing) and serializes each document under
//! that document's own commit lock, recording the durable LSN at that
//! moment as the document's `doc_lsn`. Writers therefore only ever wait on
//! the one document currently being serialized, never on the whole
//! checkpoint. The image is written in the paged checkpoint-v3 layout
//! (documented in [`crate::wal`]) **atomically** (temp + rename); the log
//! is truncated afterwards only if it is provably covered
//! ([`crate::wal::Wal::truncate_if_at`] — when writers raced past the
//! checkpoint, the log survives and replay's per-document filter skips the
//! folded records).
//!
//! Recovery reads the checkpoint (if any), adopts the symbol-table image
//! wholesale and installs every document as an undecoded lazy payload
//! (decoded on first touch — cold start is O(open) + O(touched docs), not
//! O(fleet)), then replays log records with `lsn > checkpoint_lsn`,
//! skipping per-document updates with `lsn <= doc_lsn` (already folded
//! into that document's extent). A torn final record is truncated
//! silently; genuinely corrupt records surface as
//! [`RepairError::WalCorrupt`]. Replayed operations that failed originally
//! (stale ids, out-of-range targets) fail identically on replay — per-op
//! errors are deliberately not fatal to recovery. A `LoadGrammar` payload
//! that fails to decode is *not* such a per-op error: the original commit
//! encoded a real grammar, so an undecodable payload behind a valid frame
//! CRC is inconsistency, and it too surfaces as [`RepairError::WalCorrupt`].
//! Version-1 checkpoints (eager, monolithic) are still decoded by the
//! backward-compatibility shim in [`decode_checkpoint`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sltgrammar::serialize;
use sltgrammar::Grammar;
use xmltree::updates::UpdateOp;
use xmltree::wire::{self, WireReader};
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::navigate::NavTables;
use crate::query::QueryMatches;
use crate::repair::RepairStats;
use crate::store::{DocId, DomStore, MaintenanceReport, SlabLayout, Snapshot};
use crate::update::{BatchStats, UpdateStats};
use crate::wal::{read_log, DiskFs, StorageFs, Wal, WalEntry, WalRecord};

/// Magic bytes of the checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"SLCK";
/// Version byte of the original (eager, monolithic) checkpoint format,
/// still accepted on open.
pub const CHECKPOINT_VERSION: u8 = 1;
/// Version byte of the paged, offset-indexed checkpoint format written by
/// [`DurableStore::checkpoint`] (layout documented in [`crate::wal`]).
pub const CHECKPOINT_VERSION_V3: u8 = 3;

/// What [`DurableStore::open`] found and did, including the open-time
/// breakdown: with a v3 checkpoint, `checkpoint_elapsed` covers reading and
/// validating the image (no grammar decodes — `lazy_docs` counts the
/// documents left undecoded for first touch) and `replay_elapsed` covers
/// the log tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN recorded in the checkpoint (0 when none existed).
    pub checkpoint_lsn: u64,
    /// Documents restored from the checkpoint.
    pub checkpoint_docs: usize,
    /// Log records replayed (those with `lsn > checkpoint_lsn` not already
    /// folded into a document's checkpoint extent).
    pub replayed: u64,
    /// LSN of the last durable record after recovery.
    pub last_lsn: u64,
    /// Whether a torn final record was truncated from the log.
    pub torn_tail: bool,
    /// Bytes the torn-tail truncation removed.
    pub truncated_bytes: u64,
    /// Documents restored as undecoded lazy payloads (v3 checkpoints),
    /// still pending first touch when `open` returned.
    pub lazy_docs: usize,
    /// Time spent reading/validating the checkpoint image.
    pub checkpoint_elapsed: Duration,
    /// Time spent scanning and replaying the log tail.
    pub replay_elapsed: Duration,
    /// Total wall time of `open`.
    pub open_elapsed: Duration,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered to lsn {} (checkpoint: lsn {}, {} docs, {} left lazy; \
             replayed {} records{}; open {:?} = checkpoint {:?} + replay {:?})",
            self.last_lsn,
            self.checkpoint_lsn,
            self.checkpoint_docs,
            self.lazy_docs,
            self.replayed,
            if self.torn_tail {
                format!("; truncated a torn tail of {} bytes", self.truncated_bytes)
            } else {
                String::new()
            },
            self.open_elapsed,
            self.checkpoint_elapsed,
            self.replay_elapsed,
        )
    }
}

/// What [`DurableStore::checkpoint`] wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Base LSN of the checkpoint: every record at or below it is folded
    /// in for every document (per-document extents may fold later records
    /// too — see their `doc_lsn`s).
    pub last_lsn: u64,
    /// Documents serialized into the checkpoint.
    pub documents: usize,
    /// Size of the checkpoint file in bytes.
    pub bytes: usize,
    /// Whether the log could be truncated afterwards (false when writers
    /// committed during the fuzzy checkpoint — replay skips the folded
    /// records either way).
    pub log_truncated: bool,
}

impl std::fmt::Display for CheckpointReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint at lsn {}: {} docs, {} bytes; log {}",
            self.last_lsn,
            self.documents,
            self.bytes,
            if self.log_truncated { "truncated" } else { "kept (writers active)" }
        )
    }
}

/// A crash-safe multi-document store: a [`DomStore`] whose every mutation
/// is write-ahead logged, plus checkpointing and recovery (see the module
/// docs).
pub struct DurableStore {
    store: DomStore,
    wal: Wal,
    fs: Arc<dyn StorageFs>,
    checkpoint_path: String,
    /// Orders lifecycle events (load/remove) among themselves: they contend
    /// on the slab and the shared alphabet, so their log order must match
    /// their apply order. [`DurableStore::checkpoint`] holds it across the
    /// whole serialize (the slab and master alphabet stay frozen) — but
    /// updates never take it, so writers keep flowing during a checkpoint.
    lifecycle: Mutex<()>,
    /// Per-document commit+apply locks: ops on one document must reach the
    /// log in the order they reach the grammar.
    doc_locks: Mutex<HashMap<DocId, Arc<Mutex<()>>>>,
}

fn log_path(dir: &str) -> String {
    format!("{dir}/wal.log")
}

fn checkpoint_path(dir: &str) -> String {
    format!("{dir}/checkpoint.slck")
}

impl DurableStore {
    /// Opens (or creates) a durable store in `dir` on the real filesystem,
    /// recovering whatever a previous incarnation left there. The directory
    /// is created if missing.
    pub fn open(dir: &str) -> Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir).map_err(|e| RepairError::Storage {
            detail: format!("create `{dir}`: {e}"),
        })?;
        Self::open_with(Arc::new(DiskFs), dir)
    }

    /// Opens (or creates) a durable store over an injected storage backend —
    /// the seam the fault-injection suite drives with
    /// [`crate::wal::testing::FailpointFs`].
    pub fn open_with(fs: Arc<dyn StorageFs>, dir: &str) -> Result<(Self, RecoveryReport)> {
        let open_start = Instant::now();
        let log = log_path(dir);
        let ckpt = checkpoint_path(dir);
        let store = DomStore::new();
        let mut report = RecoveryReport::default();
        // Per-document fold horizons of a (fuzzy) v3 checkpoint: replay
        // skips a document's updates at or below its recorded `doc_lsn`.
        let mut doc_lsns: HashMap<DocId, u64> = HashMap::new();

        if let Some(bytes) = fs.read(&ckpt)? {
            match decode_checkpoint_any(&bytes)? {
                CheckpointImage::V1 { last_lsn, layout, docs } => {
                    report.checkpoint_lsn = last_lsn;
                    report.checkpoint_docs = docs.len();
                    store.restore_slab(layout, docs)?;
                }
                CheckpointImage::V3 { base_lsn, layout, segments, docs } => {
                    report.checkpoint_lsn = base_lsn;
                    report.checkpoint_docs = docs.len();
                    let mut lazy = Vec::with_capacity(docs.len());
                    for doc in docs {
                        doc_lsns.insert(doc.id, doc.doc_lsn);
                        lazy.push((doc.id, doc.payload, doc.crc));
                    }
                    store.restore_slab_lazy(layout, segments, lazy)?;
                }
            }
        }
        report.checkpoint_elapsed = open_start.elapsed();

        let replay_start = Instant::now();
        let log_bytes = fs.read(&log)?.unwrap_or_default();
        let replay = read_log(&log_bytes)?;
        if replay.torn {
            report.torn_tail = true;
            report.truncated_bytes = log_bytes.len() as u64 - replay.valid_len;
            fs.set_len(&log, replay.valid_len)?;
            fs.sync(&log)?;
        }
        let mut last_lsn = report.checkpoint_lsn.max(replay.last_lsn());
        for &doc_lsn in doc_lsns.values() {
            last_lsn = last_lsn.max(doc_lsn);
        }
        for (lsn, offset, entry) in replay.records {
            if lsn <= report.checkpoint_lsn {
                continue; // already folded into the checkpoint for every doc
            }
            let Some(entry) = filter_folded(entry, lsn, &doc_lsns) else {
                continue; // folded into every targeted document's extent
            };
            apply_entry(&store, lsn, offset, entry)?;
            report.replayed += 1;
            last_lsn = last_lsn.max(lsn);
        }
        report.last_lsn = last_lsn;
        report.replay_elapsed = replay_start.elapsed();
        report.lazy_docs = store.pending_count();
        report.open_elapsed = open_start.elapsed();

        let wal = Wal::new(fs.clone(), log, report.last_lsn);
        Ok((
            DurableStore {
                store,
                wal,
                fs,
                checkpoint_path: ckpt,
                lifecycle: Mutex::new(()),
                doc_locks: Mutex::new(HashMap::new()),
            },
            report,
        ))
    }

    fn doc_lock(&self, doc: DocId) -> Arc<Mutex<()>> {
        let mut map = self.doc_locks.lock().expect("doc-lock map never poisoned");
        // Stale ids fed to apply/apply_batch/remove create entries too, and
        // only a successful remove() deletes one — so the map would grow by
        // one Arc per distinct id ever touched. Prune dead entries (nobody
        // holds the Arc, document no longer live) whenever the map outgrows
        // the live-document count, keeping it bounded on long-lived stores.
        if map.len() > 2 * self.store.len() + 16 {
            map.retain(|&id, lock| Arc::strong_count(lock) > 1 || self.store.contains(id));
        }
        map.entry(doc).or_default().clone()
    }

    // ----- logged mutations (fsync before apply; see the module docs) -----

    /// Durable [`DomStore::load_xml`]: the fragment is logged and fsync'd,
    /// then compressed into the store.
    pub fn load_xml(&self, xml: &XmlTree) -> Result<DocId> {
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        self.wal.commit(&WalRecord::LoadXml { tree: xml })?;
        self.store.load_xml(xml)
    }

    /// Durable [`DomStore::load_grammar`]: the grammar's binary encoding is
    /// logged, then the grammar joins the store.
    pub fn load_grammar(&self, grammar: Grammar) -> Result<DocId> {
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        let bytes = serialize::encode(&grammar);
        self.wal.commit(&WalRecord::LoadGrammar { bytes: &bytes })?;
        self.store.load_grammar(grammar)
    }

    /// Durable [`DomStore::remove`].
    pub fn remove(&self, doc: DocId) -> Result<Grammar> {
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        let lock = self.doc_lock(doc);
        let _doc = lock.lock().expect("doc lock never poisoned");
        self.wal.commit(&WalRecord::Remove { doc })?;
        let result = self.store.remove(doc);
        if result.is_ok() {
            self.doc_locks
                .lock()
                .expect("doc-lock map never poisoned")
                .remove(&doc);
        }
        result
    }

    /// Durable [`DomStore::apply`] (logged as a batch of one).
    pub fn apply(&self, doc: DocId, op: &UpdateOp) -> Result<(UpdateStats, MaintenanceReport)> {
        let lock = self.doc_lock(doc);
        let _doc = lock.lock().expect("doc lock never poisoned");
        self.wal.commit(&WalRecord::ApplyBatch {
            doc,
            ops: std::slice::from_ref(op),
        })?;
        self.store.apply(doc, op)
    }

    /// Durable [`DomStore::apply_batch`].
    pub fn apply_batch(
        &self,
        doc: DocId,
        ops: &[UpdateOp],
    ) -> Result<(BatchStats, MaintenanceReport)> {
        let lock = self.doc_lock(doc);
        let _doc = lock.lock().expect("doc lock never poisoned");
        self.wal.commit(&WalRecord::ApplyBatch { doc, ops })?;
        self.store.apply_batch(doc, ops)
    }

    /// Durable [`DomStore::apply_batch_many`]: **one** log record (one
    /// fsync) covers the whole multi-document fan-out.
    pub fn apply_batch_many(
        &self,
        jobs: &[(DocId, Vec<UpdateOp>)],
    ) -> (Vec<Result<BatchStats>>, MaintenanceReport) {
        if jobs.is_empty() {
            return (Vec::new(), MaintenanceReport::default());
        }
        // Lock every distinct target in sorted order (no deadlocks with
        // concurrent multi-document batches).
        let mut targets: Vec<DocId> = jobs.iter().map(|(doc, _)| *doc).collect();
        targets.sort();
        targets.dedup();
        let locks: Vec<Arc<Mutex<()>>> = targets.iter().map(|&d| self.doc_lock(d)).collect();
        let _guards: Vec<_> = locks
            .iter()
            .map(|l| l.lock().expect("doc lock never poisoned"))
            .collect();
        if let Err(e) = self.wal.commit(&WalRecord::ApplyMany { jobs }) {
            let results = jobs.iter().map(|_| Err(e.clone())).collect();
            return (results, MaintenanceReport::default());
        }
        self.store.apply_batch_many(jobs)
    }

    // ----- checkpointing -----

    /// Writes a **fuzzy** checkpoint in the paged v3 layout (see
    /// [`crate::wal`]): the lifecycle lock is held across the whole call —
    /// loads and removes wait, so the slab layout and master alphabet stay
    /// frozen — but updates keep flowing; each document is serialized under
    /// its own commit lock from an immutable grammar snapshot, with the
    /// durable LSN at that moment recorded as the document's fold horizon
    /// (`doc_lsn`). The image is written **atomically** (temp + rename) and
    /// the log truncated only if provably covered. After a crash at any
    /// point of this sequence, recovery sees either the old checkpoint plus
    /// the full log or the new checkpoint (plus a log whose folded records
    /// it skips by LSN) — never a half state.
    ///
    /// Reads are never blocked (they take none of these locks), and a
    /// writer to document B proceeds while document A is being serialized.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        let base_lsn = self.wal.durable_lsn();
        let layout = self.store.capture_slab();
        let segments = self.store.symbol_image();
        let mut docs = Vec::with_capacity(layout.live.len());
        for &id in &layout.live {
            let lock = self.doc_lock(id);
            let guard = lock.lock().expect("doc lock never poisoned");
            // Read the horizon while holding the commit lock: every record
            // for this doc with lsn <= doc_lsn was applied before we got
            // the lock (commit+apply happen under it), so it is in the
            // payload; any later record will have lsn > doc_lsn.
            let doc_lsn = self.wal.durable_lsn();
            let (payload, crc) = self.store.checkpoint_payload(id)?;
            drop(guard);
            docs.push(DocExtent { id, doc_lsn, payload, crc });
        }
        let bytes = encode_checkpoint_v3(base_lsn, &layout, &segments, &docs);
        self.fs.write_atomic(&self.checkpoint_path, &bytes)?;
        let log_truncated = self.wal.truncate_if_at(base_lsn)?;
        Ok(CheckpointReport {
            last_lsn: base_lsn,
            documents: docs.len(),
            bytes: bytes.len(),
            log_truncated,
        })
    }

    // ----- read surface (delegated; reads need no logging) -----

    /// The wrapped [`DomStore`], for its full read surface. Mutating the
    /// store through this reference **bypasses the log** — recovered state
    /// will not include such changes; use the logged methods above instead.
    pub fn dom(&self) -> &DomStore {
        &self.store
    }

    /// See [`DomStore::snapshot`].
    pub fn snapshot(&self, doc: DocId) -> Result<Snapshot> {
        self.store.snapshot(doc)
    }

    /// See [`DomStore::grammar`].
    pub fn grammar(&self, doc: DocId) -> Result<Arc<Grammar>> {
        self.store.grammar(doc)
    }

    /// See [`DomStore::to_xml`].
    pub fn to_xml(&self, doc: DocId) -> Result<XmlTree> {
        self.store.to_xml(doc)
    }

    /// See [`DomStore::query_str`].
    pub fn query_str(&self, doc: DocId, query: &str) -> Result<QueryMatches> {
        self.store.query_str(doc, query)
    }

    /// See [`DomStore::label_at`].
    pub fn label_at(&self, doc: DocId, preorder_index: u128) -> Result<String> {
        self.store.label_at(doc, preorder_index)
    }

    /// See [`DomStore::nav_tables`].
    pub fn nav_tables(&self, doc: DocId) -> Result<Arc<NavTables>> {
        self.store.nav_tables(doc)
    }

    /// See [`DomStore::doc_ids`].
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.store.doc_ids()
    }

    /// See [`DomStore::contains`].
    pub fn contains(&self, doc: DocId) -> bool {
        self.store.contains(doc)
    }

    /// See [`DomStore::len`].
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// See [`DomStore::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// See [`DomStore::edge_count`].
    pub fn edge_count(&self, doc: DocId) -> Result<usize> {
        self.store.edge_count(doc)
    }

    /// See [`DomStore::derived_size`].
    pub fn derived_size(&self, doc: DocId) -> Result<u128> {
        self.store.derived_size(doc)
    }

    /// See [`DomStore::maintain`]. Recompression is not logged: it never
    /// changes the derived document, so replay is unaffected by when (or
    /// whether) maintenance ran.
    pub fn maintain(&self) -> MaintenanceReport {
        self.store.maintain()
    }

    /// See [`DomStore::recompress`] (not logged, like [`DurableStore::maintain`]).
    pub fn recompress(&self, doc: DocId) -> Result<RepairStats> {
        self.store.recompress(doc)
    }

    /// LSN of the last durably committed record.
    pub fn durable_lsn(&self) -> u64 {
        self.wal.durable_lsn()
    }

    /// Number of log fsyncs so far (commits ÷ fsyncs = group-commit
    /// coalescing factor).
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.sync_count()
    }
}

/// Replays one decoded record against the store. Per-op failures are
/// expected (they reproduce failures of the original run — stale ids,
/// out-of-range targets) and deliberately non-fatal. A `LoadGrammar`
/// payload that fails to decode is different: its frame passed the CRC, so
/// this is genuine inconsistency, and silently skipping the load would
/// shift every later slab assignment away from the pre-crash state — it
/// surfaces as [`RepairError::WalCorrupt`] instead.
fn apply_entry(store: &DomStore, lsn: u64, offset: u64, entry: WalEntry) -> Result<()> {
    match entry {
        WalEntry::LoadXml { tree } => {
            let _ = store.load_xml(&tree);
        }
        WalEntry::LoadGrammar { bytes } => {
            let grammar = serialize::decode(&bytes).map_err(|e| RepairError::WalCorrupt {
                lsn: lsn - 1,
                offset,
                detail: format!(
                    "record lsn {lsn}: LoadGrammar payload fails to decode despite a valid \
                     record checksum: {e}"
                ),
            })?;
            let _ = store.load_grammar(grammar);
        }
        WalEntry::Remove { doc } => {
            let _ = store.remove(doc);
        }
        WalEntry::ApplyBatch { doc, ops } => {
            let _ = store.apply_batch(doc, &ops);
        }
        WalEntry::ApplyMany { jobs } => {
            let _ = store.apply_batch_many(&jobs);
        }
    }
    Ok(())
}

// ----- checkpoint file format -----

#[cfg(test)] // production writes v3; v1 encoding remains for compat tests
fn encode_checkpoint(last_lsn: u64, layout: &SlabLayout, docs: &[(DocId, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder
    let body_start = out.len();
    wire::write_varint(&mut out, last_lsn);
    wire::write_varint(&mut out, layout.generations.len() as u64);
    for &generation in &layout.generations {
        wire::write_varint(&mut out, generation as u64);
    }
    wire::write_varint(&mut out, layout.free.len() as u64);
    for &slot in &layout.free {
        wire::write_varint(&mut out, slot as u64);
    }
    wire::write_varint(&mut out, layout.live.len() as u64);
    for &id in &layout.live {
        wire::write_varint(&mut out, id.slot() as u64);
        wire::write_varint(&mut out, id.generation() as u64);
    }
    wire::write_varint(&mut out, docs.len() as u64);
    for (id, bytes) in docs {
        wire::write_varint(&mut out, id.slot() as u64);
        wire::write_varint(&mut out, id.generation() as u64);
        wire::write_varint(&mut out, bytes.len() as u64);
        out.extend_from_slice(bytes);
    }
    let crc = sltgrammar::crc32::crc32(&out[body_start..]);
    out[5..9].copy_from_slice(&crc.to_le_bytes());
    out
}

fn ckpt_err(detail: impl Into<String>) -> RepairError {
    RepairError::Storage {
        detail: format!("checkpoint corrupt: {}", detail.into()),
    }
}

#[allow(clippy::type_complexity)]
fn decode_checkpoint(bytes: &[u8]) -> Result<(u64, SlabLayout, Vec<(DocId, Grammar)>)> {
    if bytes.len() < 9 || &bytes[..4] != CHECKPOINT_MAGIC {
        return Err(ckpt_err("bad magic bytes"));
    }
    if bytes[4] != CHECKPOINT_VERSION {
        return Err(ckpt_err(format!("unsupported version {}", bytes[4])));
    }
    let expected = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
    let found = sltgrammar::crc32::crc32(&bytes[9..]);
    if expected != found {
        return Err(ckpt_err(format!(
            "checksum mismatch (header {expected:#010x}, body {found:#010x})"
        )));
    }
    let mut r = WireReader::new(&bytes[9..]);
    let fail = |e: xmltree::XmlError| ckpt_err(e.to_string());
    let last_lsn = r.varint().map_err(fail)?;
    let mut layout = SlabLayout::default();
    let slots = bounded_count(&mut r, 1, "slot")?;
    for _ in 0..slots {
        layout.generations.push(r.varint().map_err(fail)? as u32);
    }
    let free = bounded_count(&mut r, 1, "free-slot")?;
    for _ in 0..free {
        layout.free.push(r.varint().map_err(fail)? as u32);
    }
    let live = bounded_count(&mut r, 2, "live-doc")?;
    for _ in 0..live {
        let slot = r.varint().map_err(fail)? as u32;
        let generation = r.varint().map_err(fail)? as u32;
        layout.live.push(DocId::from_parts(slot, generation));
    }
    let doc_count = bounded_count(&mut r, 3, "document")?;
    let mut docs = Vec::with_capacity(doc_count);
    for _ in 0..doc_count {
        let slot = r.varint().map_err(fail)? as u32;
        let generation = r.varint().map_err(fail)? as u32;
        let len = r.varint().map_err(fail)? as usize;
        let grammar_bytes = r.bytes(len).map_err(fail)?;
        let grammar = serialize::decode(grammar_bytes)
            .map_err(|e| ckpt_err(format!("document grammar: {e}")))?;
        docs.push((DocId::from_parts(slot, generation), grammar));
    }
    if !r.finished() {
        return Err(ckpt_err("trailing bytes"));
    }
    Ok((last_lsn, layout, docs))
}

/// Reads a count bounded by the remaining input (each element needs at
/// least `min_bytes`), so corrupt checkpoints cannot drive allocations.
fn bounded_count(r: &mut WireReader<'_>, min_bytes: usize, what: &str) -> Result<usize> {
    let n = r.varint().map_err(|e| ckpt_err(e.to_string()))? as usize;
    if n > r.remaining() / min_bytes {
        return Err(ckpt_err(format!(
            "{what} count {n} exceeds what the remaining input could hold"
        )));
    }
    Ok(n)
}

// ----- checkpoint v3 (paged, offset-indexed; layout in `crate::wal`) -----

/// One document's extent in a v3 checkpoint: the serialized grammar bytes,
/// the LSN horizon folded into them, and the CRC the lazy materialization
/// path verifies on first touch.
struct DocExtent {
    id: DocId,
    doc_lsn: u64,
    payload: Vec<u8>,
    crc: u32,
}

/// A decoded checkpoint file of either supported version.
enum CheckpointImage {
    /// Legacy eager image: every grammar decoded at open.
    V1 {
        last_lsn: u64,
        layout: SlabLayout,
        docs: Vec<(DocId, Grammar)>,
    },
    /// Paged lazy image: payloads adopted as undecoded bytes.
    V3 {
        base_lsn: u64,
        layout: SlabLayout,
        segments: Vec<(Vec<String>, Vec<usize>)>,
        docs: Vec<DocExtent>,
    },
}

fn decode_checkpoint_any(bytes: &[u8]) -> Result<CheckpointImage> {
    if bytes.len() < 5 || &bytes[..4] != CHECKPOINT_MAGIC {
        return Err(ckpt_err("bad magic bytes"));
    }
    match bytes[4] {
        CHECKPOINT_VERSION => {
            let (last_lsn, layout, docs) = decode_checkpoint(bytes)?;
            Ok(CheckpointImage::V1 { last_lsn, layout, docs })
        }
        CHECKPOINT_VERSION_V3 => decode_checkpoint_v3(bytes),
        v => Err(ckpt_err(format!("unsupported version {v}"))),
    }
}

/// Bytes before the first section: magic, version, nine `u64` header
/// fields, and the header CRC.
const V3_HEADER_LEN: usize = 4 + 1 + 72 + 4;

fn encode_checkpoint_v3(
    base_lsn: u64,
    layout: &SlabLayout,
    segments: &[(Vec<String>, Vec<usize>)],
    docs: &[DocExtent],
) -> Vec<u8> {
    let crc32 = sltgrammar::crc32::crc32;
    // Section bodies first; the header offsets depend on their lengths.
    let mut slab = Vec::new();
    wire::write_varint(&mut slab, layout.generations.len() as u64);
    for &generation in &layout.generations {
        wire::write_varint(&mut slab, generation as u64);
    }
    wire::write_varint(&mut slab, layout.free.len() as u64);
    for &slot in &layout.free {
        wire::write_varint(&mut slab, slot as u64);
    }
    wire::write_varint(&mut slab, layout.live.len() as u64);
    for &id in &layout.live {
        wire::write_varint(&mut slab, id.slot() as u64);
        wire::write_varint(&mut slab, id.generation() as u64);
    }

    let mut symtab = Vec::new();
    wire::write_varint(&mut symtab, segments.len() as u64);
    for (names, ranks) in segments {
        wire::write_varint(&mut symtab, names.len() as u64);
        for (name, &rank) in names.iter().zip(ranks) {
            wire::write_varint(&mut symtab, rank as u64);
            wire::write_varint(&mut symtab, name.len() as u64);
            symtab.extend_from_slice(name.as_bytes());
        }
    }

    let mut extents = Vec::new();
    wire::write_varint(&mut extents, docs.len() as u64);
    let mut payload_off = 0u64;
    for doc in docs {
        wire::write_varint(&mut extents, doc.id.slot() as u64);
        wire::write_varint(&mut extents, doc.id.generation() as u64);
        wire::write_varint(&mut extents, doc.doc_lsn);
        wire::write_varint(&mut extents, payload_off);
        wire::write_varint(&mut extents, doc.payload.len() as u64);
        extents.extend_from_slice(&doc.crc.to_le_bytes());
        payload_off += doc.payload.len() as u64;
    }

    let slab_off = V3_HEADER_LEN as u64;
    let slab_len = (slab.len() + 4) as u64;
    let symtab_off = slab_off + slab_len;
    let symtab_len = (symtab.len() + 4) as u64;
    let extents_off = symtab_off + symtab_len;
    let extents_len = (extents.len() + 4) as u64;
    let docs_off = extents_off + extents_len;
    let docs_len = payload_off;

    let mut out = Vec::with_capacity((docs_off + docs_len) as usize);
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.push(CHECKPOINT_VERSION_V3);
    for field in [
        base_lsn,
        slab_off,
        slab_len,
        symtab_off,
        symtab_len,
        extents_off,
        extents_len,
        docs_off,
        docs_len,
    ] {
        out.extend_from_slice(&field.to_le_bytes());
    }
    let header_crc = crc32(&out[5..77]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for body in [&slab, &symtab, &extents] {
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out.extend_from_slice(body);
    }
    for doc in docs {
        out.extend_from_slice(&doc.payload);
    }
    out
}

fn decode_checkpoint_v3(bytes: &[u8]) -> Result<CheckpointImage> {
    let crc32 = sltgrammar::crc32::crc32;
    if bytes.len() < V3_HEADER_LEN {
        return Err(ckpt_err("v3 header truncated"));
    }
    let expected = u32::from_le_bytes(bytes[77..81].try_into().expect("4 bytes"));
    let found = crc32(&bytes[5..77]);
    if expected != found {
        return Err(ckpt_err(format!(
            "v3 header checksum mismatch (stored {expected:#010x}, found {found:#010x})"
        )));
    }
    let mut fields = [0u64; 9];
    for (i, f) in fields.iter_mut().enumerate() {
        let at = 5 + i * 8;
        *f = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    }
    let [base_lsn, slab_off, slab_len, symtab_off, symtab_len, extents_off, extents_len, docs_off, docs_len] =
        fields;
    // Every byte of the file must be accounted for: header, then the three
    // checksummed sections back to back, then the docs region — no gaps, no
    // overlaps, no tail. (Docs-region bytes are covered by the per-extent
    // payload CRCs, verified at first touch rather than here.)
    let file_len = bytes.len() as u64;
    let mut cursor = V3_HEADER_LEN as u64;
    for (name, off, len, min) in [
        ("slab", slab_off, slab_len, 4u64),
        ("symbol-table", symtab_off, symtab_len, 4),
        ("extents", extents_off, extents_len, 4),
        ("docs", docs_off, docs_len, 0),
    ] {
        if off != cursor {
            return Err(ckpt_err(format!(
                "v3 {name} section at offset {off} does not follow the previous section \
                 (expected offset {cursor})"
            )));
        }
        if len < min {
            return Err(ckpt_err(format!(
                "v3 {name} section length {len} is shorter than its checksum"
            )));
        }
        cursor = off
            .checked_add(len)
            .filter(|&end| end <= file_len)
            .ok_or_else(|| {
                ckpt_err(format!(
                    "v3 {name} section (offset {off}, length {len}) exceeds the file"
                ))
            })?;
    }
    if cursor != file_len {
        return Err(ckpt_err(format!(
            "v3 trailing bytes: sections end at {cursor} but the file is {file_len} bytes"
        )));
    }
    let section = |off: u64, len: u64, name: &str| -> Result<&[u8]> {
        let start = off as usize;
        let body = &bytes[start + 4..start + len as usize];
        let expected = u32::from_le_bytes(bytes[start..start + 4].try_into().expect("4 bytes"));
        let found = crc32(body);
        if expected != found {
            return Err(ckpt_err(format!(
                "v3 {name} section checksum mismatch (stored {expected:#010x}, found {found:#010x})"
            )));
        }
        Ok(body)
    };
    let fail = |e: xmltree::XmlError| ckpt_err(e.to_string());

    let mut r = WireReader::new(section(slab_off, slab_len, "slab")?);
    let mut layout = SlabLayout::default();
    let slots = bounded_count(&mut r, 1, "slot")?;
    for _ in 0..slots {
        layout.generations.push(r.varint().map_err(fail)? as u32);
    }
    let free = bounded_count(&mut r, 1, "free-slot")?;
    for _ in 0..free {
        layout.free.push(r.varint().map_err(fail)? as u32);
    }
    let live = bounded_count(&mut r, 2, "live-doc")?;
    for _ in 0..live {
        let slot = r.varint().map_err(fail)? as u32;
        let generation = r.varint().map_err(fail)? as u32;
        layout.live.push(DocId::from_parts(slot, generation));
    }
    if !r.finished() {
        return Err(ckpt_err("v3 slab section has trailing bytes"));
    }

    let mut r = WireReader::new(section(symtab_off, symtab_len, "symbol-table")?);
    let segment_count = bounded_count(&mut r, 1, "symbol segment")?;
    let mut segments = Vec::with_capacity(segment_count);
    for _ in 0..segment_count {
        let symbol_count = bounded_count(&mut r, 2, "symbol")?;
        let mut names = Vec::with_capacity(symbol_count);
        let mut ranks = Vec::with_capacity(symbol_count);
        for _ in 0..symbol_count {
            ranks.push(r.varint().map_err(fail)? as usize);
            let len = r.varint().map_err(fail)? as usize;
            let name = r.bytes(len).map_err(fail)?;
            names.push(
                std::str::from_utf8(name)
                    .map_err(|_| ckpt_err("v3 symbol name is not valid UTF-8"))?
                    .to_string(),
            );
        }
        segments.push((names, ranks));
    }
    if !r.finished() {
        return Err(ckpt_err("v3 symbol-table section has trailing bytes"));
    }

    let mut r = WireReader::new(section(extents_off, extents_len, "extents")?);
    let doc_count = bounded_count(&mut r, 9, "document extent")?;
    let mut docs = Vec::with_capacity(doc_count);
    for _ in 0..doc_count {
        let slot = r.varint().map_err(fail)? as u32;
        let generation = r.varint().map_err(fail)? as u32;
        let doc_lsn = r.varint().map_err(fail)?;
        let payload_off = r.varint().map_err(fail)?;
        let payload_len = r.varint().map_err(fail)?;
        let crc = u32::from_le_bytes(r.bytes(4).map_err(fail)?.try_into().expect("4 bytes"));
        payload_off
            .checked_add(payload_len)
            .filter(|&end| end <= docs_len)
            .ok_or_else(|| {
                ckpt_err(format!(
                    "v3 document extent (offset {payload_off}, length {payload_len}) exceeds \
                     the docs region of {docs_len} bytes"
                ))
            })?;
        let start = (docs_off + payload_off) as usize;
        let payload = bytes[start..start + payload_len as usize].to_vec();
        docs.push(DocExtent {
            id: DocId::from_parts(slot, generation),
            doc_lsn,
            payload,
            crc,
        });
    }
    if !r.finished() {
        return Err(ckpt_err("v3 extents section has trailing bytes"));
    }
    Ok(CheckpointImage::V3 {
        base_lsn,
        layout,
        segments,
        docs,
    })
}

/// Drops (or trims) a replayed record whose effects the checkpoint already
/// folded into a document extent. A record counts as replayed only when
/// some part of it survives this filter. Lifecycle records (loads, removes)
/// are never filtered: they cannot commit during a checkpoint, so any in
/// the tail postdate every extent.
fn filter_folded(entry: WalEntry, lsn: u64, doc_lsns: &HashMap<DocId, u64>) -> Option<WalEntry> {
    let folded = |doc: &DocId| doc_lsns.get(doc).is_some_and(|&d| lsn <= d);
    match entry {
        WalEntry::ApplyBatch { doc, .. } if folded(&doc) => None,
        WalEntry::ApplyMany { mut jobs } => {
            jobs.retain(|(doc, _)| !folded(doc));
            if jobs.is_empty() {
                None
            } else {
                Some(WalEntry::ApplyMany { jobs })
            }
        }
        other => Some(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::testing::FailpointFs;
    use xmltree::parse::parse_xml;

    fn doc(tag: &str, n: usize) -> XmlTree {
        let mut s = format!("<{tag}>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str(&format!("</{tag}>"));
        parse_xml(&s).unwrap()
    }

    fn mem_store() -> (Arc<FailpointFs>, DurableStore) {
        let fs = Arc::new(FailpointFs::new());
        let (store, report) = DurableStore::open_with(fs.clone(), "db").unwrap();
        // Timings are the only nonzero fields on a fresh open.
        assert_eq!(
            report,
            RecoveryReport {
                checkpoint_elapsed: report.checkpoint_elapsed,
                replay_elapsed: report.replay_elapsed,
                open_elapsed: report.open_elapsed,
                ..RecoveryReport::default()
            }
        );
        (fs, store)
    }

    #[test]
    fn loads_and_updates_replay_to_identical_state() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 4)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "entry".into() })
            .unwrap();
        store
            .apply_batch(b, &[UpdateOp::Delete { target: 1 }])
            .unwrap();
        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        drop(store); // "crash": memory gone, fs survives

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.replayed, 4);
        assert!(!report.torn_tail);
        assert_eq!(recovered.doc_ids(), vec![a, b], "ids survive recovery");
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want_a);
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn mid_chunk_splice_error_replays_to_the_partial_state() {
        // The WAL logs an ApplyBatch record *before* the apply; a splice-time
        // error leaves the chunk's already-spliced prefix applied in memory.
        // Recovery replays the same record through the same non-fatal
        // apply_batch, so the recovered document must equal the in-memory
        // partial state, byte for byte — not the batch-start state.
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        let before_a = store.to_xml(a).unwrap().to_xml();

        // Doc a: rename + insert splice fine, then the delete lands on a null
        // node (preorder 3 is <title/>'s empty child list) and errors.
        let frag = parse_xml("<ad/>").unwrap();
        let ops_a = vec![
            UpdateOp::Rename { target: 1, label: "entry".into() },
            UpdateOp::InsertBefore { target: 5, fragment: frag },
            UpdateOp::Delete { target: 3 },
        ];
        assert!(store.apply_batch(a, &ops_a).is_err());
        // Doc b: the rename to the reserved null label errors after a
        // successful insert in the same chunk.
        let ops_b = vec![
            UpdateOp::InsertBefore {
                target: 1,
                fragment: parse_xml("<promo/>").unwrap(),
            },
            UpdateOp::Rename { target: 3, label: "#".into() },
        ];
        assert!(store.apply_batch(b, &ops_b).is_err());

        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        assert_ne!(want_a, before_a, "the failed batch's prefix must be applied");
        drop(store); // crash with the poisoned records in the log

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.replayed, 4);
        assert_eq!(
            recovered.to_xml(a).unwrap().to_xml(),
            want_a,
            "replay must reproduce the partial state of the failed batch"
        );
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn checkpoint_restores_without_replay_and_truncates_the_log() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 4)).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "entry".into() })
            .unwrap();
        let report = store.checkpoint().unwrap();
        assert_eq!(report.last_lsn, 2);
        assert_eq!(report.documents, 1);
        assert_eq!(fs.file("db/wal.log").unwrap().len(), 0, "log truncated");
        let want = store.to_xml(a).unwrap().to_xml();
        drop(store);

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.checkpoint_lsn, 2);
        assert_eq!(report.replayed, 0);
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want);
    }

    #[test]
    fn removal_and_slot_reuse_replay_identically() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let b = store.load_xml(&doc("blog", 2)).unwrap();
        store.remove(a).unwrap();
        let c = store.load_xml(&doc("log", 2)).unwrap();
        assert_eq!(c.slot(), a.slot(), "slot reused");
        assert_ne!(c.generation(), a.generation());
        drop(store);

        let (recovered, _) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(recovered.doc_ids(), vec![b, c]);
        assert!(!recovered.contains(a), "stale id stays dead after recovery");
    }

    #[test]
    fn checkpoint_then_more_writes_replays_only_the_tail() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 4)).unwrap();
        store.checkpoint().unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "x".into() })
            .unwrap();
        let b = store.load_xml(&doc("blog", 2)).unwrap();
        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        drop(store);

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.checkpoint_lsn, 1);
        assert_eq!(report.replayed, 2);
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want_a);
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn load_grammar_records_replay() {
        let (fs, store) = mem_store();
        let plain = DomStore::new();
        let tmp = plain.load_xml(&doc("feed", 3)).unwrap();
        let grammar = plain.remove(tmp).unwrap();
        let id = store.load_grammar(grammar).unwrap();
        let want = store.to_xml(id).unwrap().to_xml();
        drop(store);
        let (recovered, _) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(recovered.to_xml(id).unwrap().to_xml(), want);
    }

    #[test]
    fn apply_batch_many_is_one_record_one_fsync() {
        let (fs, store) = mem_store();
        let ids: Vec<DocId> = (0..4).map(|i| store.load_xml(&doc("feed", 2 + i)).unwrap()).collect();
        let syncs_before = fs.sync_count();
        let jobs: Vec<(DocId, Vec<UpdateOp>)> = ids
            .iter()
            .map(|&id| (id, vec![UpdateOp::Rename { target: 1, label: "x".into() }]))
            .collect();
        let (results, _) = store.apply_batch_many(&jobs);
        for r in results {
            r.unwrap();
        }
        assert_eq!(fs.sync_count() - syncs_before, 1, "one fsync for the whole fan-out");
        let wants: Vec<String> = ids.iter().map(|&id| store.to_xml(id).unwrap().to_xml()).collect();
        drop(store);
        let (recovered, _) = DurableStore::open_with(fs, "db").unwrap();
        for (&id, want) in ids.iter().zip(&wants) {
            assert_eq!(&recovered.to_xml(id).unwrap().to_xml(), want);
        }
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let pristine = fs.file("db/checkpoint.slck").unwrap();

        // A flip in the indexed part of the file (here: a header field)
        // fails at open.
        let mut bytes = pristine.clone();
        bytes[6] ^= 0x10;
        fs.set_file("db/checkpoint.slck", bytes);
        assert!(matches!(
            DurableStore::open_with(fs.clone(), "db"),
            Err(RepairError::Storage { .. })
        ));

        // A flip in the lazy docs region (the file's tail) passes open —
        // nothing decodes the payload yet — and surfaces as a typed error
        // on first touch.
        let mut bytes = pristine;
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs.set_file("db/checkpoint.slck", bytes);
        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.lazy_docs, 1);
        assert!(matches!(
            recovered.to_xml(a),
            Err(RepairError::Storage { .. })
        ));
    }

    #[test]
    fn v1_checkpoints_still_open() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let b = store.load_xml(&doc("blog", 1)).unwrap();
        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        // Write the legacy eager image by hand, as an old binary would have.
        let layout = store.store.capture_slab();
        let docs = vec![
            (a, serialize::encode(&store.store.grammar(a).unwrap())),
            (b, serialize::encode(&store.store.grammar(b).unwrap())),
        ];
        let bytes = encode_checkpoint(store.wal.durable_lsn(), &layout, &docs);
        fs.write_atomic("db/checkpoint.slck", &bytes).unwrap();
        store.wal.truncate().unwrap();
        drop(store);

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.checkpoint_docs, 2);
        assert_eq!(report.lazy_docs, 0, "v1 images decode eagerly");
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want_a);
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn checkpoint_does_not_block_readers_or_other_doc_writers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let (_fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        let store = Arc::new(store);

        // Stall the checkpoint at its first document by holding that doc's
        // commit lock from this thread. (`live` is slab order: doc a.)
        let first = store.store.capture_slab().live[0];
        assert_eq!(first, a);
        let lock = store.doc_lock(first);
        let guard = lock.lock().unwrap();
        let done = Arc::new(AtomicBool::new(false));
        let ckpt = {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let report = store.checkpoint();
                done.store(true, Ordering::SeqCst);
                report
            })
        };
        // Wait until the checkpoint thread is parked on the held lock: it
        // clones the lock's Arc out of the map (count 2 → 3) before
        // blocking. From then on its base_lsn is already captured.
        while Arc::strong_count(&lock) < 3 {
            std::thread::yield_now();
        }

        // Mid-checkpoint: a writer to another document proceeds (the old
        // implementation gated ALL writers out for the duration) and reads
        // of the stalled document itself stay lock-free.
        assert!(!done.load(Ordering::SeqCst), "checkpoint must be stalled");
        store
            .apply_batch(b, &[UpdateOp::Rename { target: 1, label: "entry".into() }])
            .expect("writer to another doc must not block on a checkpoint");
        store
            .to_xml(first)
            .expect("reads never block on a checkpoint");
        assert!(
            !done.load(Ordering::SeqCst),
            "checkpoint still stalled on the held doc lock"
        );

        drop(guard);
        let report = ckpt.join().unwrap().unwrap();
        assert_eq!(report.documents, 2);
        // Doc b's rename committed after base_lsn, under its doc lock, so
        // its extent folds it: replay skips it either way.
        assert!(!report.log_truncated, "a writer landed mid-checkpoint");
    }

    #[test]
    fn undecodable_load_grammar_record_is_corruption() {
        let fs = Arc::new(FailpointFs::new());
        // A frame whose CRC is valid but whose LoadGrammar payload is not a
        // grammar encoding: replay must fail loudly, not skip the load.
        let frame = crate::wal::encode_frame(
            1,
            &WalRecord::LoadGrammar { bytes: b"not a grammar encoding" },
        );
        fs.set_file("db/wal.log", frame);
        assert!(matches!(
            DurableStore::open_with(fs, "db"),
            Err(RepairError::WalCorrupt { lsn: 0, .. })
        ));
    }

    #[test]
    fn stale_doc_lock_entries_are_pruned() {
        let (_fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 1)).unwrap();
        for slot in 0..200u32 {
            let stale = DocId::from_parts(slot, 999);
            let _ = store.apply(stale, &UpdateOp::Delete { target: 1 });
            let _ = store.remove(stale);
        }
        let size = store.doc_locks.lock().unwrap().len();
        assert!(
            size <= 2 * store.len() + 17,
            "doc-lock map should stay bounded, holds {size} entries"
        );
        assert!(store.contains(a), "live document survives the pruning");
    }

    #[test]
    fn corrupt_mid_log_record_is_a_typed_error() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "x".into() })
            .unwrap();
        drop(store);
        let mut bytes = fs.file("db/wal.log").unwrap();
        bytes[10] ^= 0x20; // inside the first record's payload
        fs.set_file("db/wal.log", bytes);
        assert!(matches!(
            DurableStore::open_with(fs, "db"),
            Err(RepairError::WalCorrupt { .. })
        ));
    }
}
