//! `DurableStore` — a crash-safe [`DomStore`]: every mutation is written
//! ahead to a [`crate::wal::Wal`], checkpoints serialize the whole store
//! atomically, and [`DurableStore::open`] recovers the exact pre-crash state
//! by restoring the last checkpoint and replaying the log tail.
//!
//! # What is logged, and when
//!
//! Each mutating call commits exactly one record *before* touching the
//! in-memory store (fsync-before-apply — see the [`crate::wal`] module docs
//! for the commit protocol):
//!
//! * [`DurableStore::load_xml`] logs the XML fragment itself; replay re-runs
//!   the same compression against the same shared-alphabet state, so the
//!   recovered grammar and [`DocId`] are bit-identical to the original.
//! * [`DurableStore::load_grammar`] logs the grammar's binary encoding.
//! * [`DurableStore::remove`] logs the removed id; replay reproduces the
//!   slab's free-list state (and therefore all later id assignments).
//! * [`DurableStore::apply`] / [`DurableStore::apply_batch`] log the batch;
//!   [`DurableStore::apply_batch_many`] logs **one** record for the whole
//!   fan-out, so the multi-document batch pays one fsync built-in, and
//!   concurrent single-document writers share fsyncs through the log's
//!   leader-based group commit.
//!
//! Maintenance (recompression) is deliberately **not** logged: it never
//! changes the derived document, so replaying the update log against the
//! checkpoint reproduces the same documents regardless of when
//! recompressions ran.
//!
//! # Ordering discipline
//!
//! Replay applies records strictly in LSN order, so the log order must
//! agree with the in-memory apply order wherever the two operations do not
//! commute: a per-document lock is held across *commit + apply* for
//! updates, a store-level lifecycle lock for loads and removals (which
//! contend on the slab and the shared alphabet). Operations on distinct
//! documents commute, so their records may interleave freely — that is
//! what lets their commits coalesce into shared fsyncs.
//!
//! # Checkpoints and recovery
//!
//! [`DurableStore::checkpoint`] quiesces writers (a write-gate every
//! mutator holds for read), captures the slab layout and every document's
//! grammar (via `sltgrammar::serialize`, CRC-framed), writes the checkpoint
//! file atomically (temp + rename), and only then truncates the log.
//! Recovery reads the checkpoint (if any), restores the slab, replays log
//! records with `lsn > checkpoint_lsn`, truncates a torn final record
//! silently, and surfaces genuinely corrupt records as
//! [`RepairError::WalCorrupt`]. Replayed operations that failed originally
//! (stale ids, out-of-range targets) fail identically on replay — per-op
//! errors are deliberately not fatal to recovery. A `LoadGrammar` payload
//! that fails to decode is *not* such a per-op error: the original commit
//! encoded a real grammar, so an undecodable payload behind a valid frame
//! CRC is inconsistency, and it too surfaces as [`RepairError::WalCorrupt`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use sltgrammar::serialize;
use sltgrammar::Grammar;
use xmltree::updates::UpdateOp;
use xmltree::wire::{self, WireReader};
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::navigate::NavTables;
use crate::query::QueryMatches;
use crate::repair::RepairStats;
use crate::store::{DocId, DomStore, MaintenanceReport, SlabLayout, Snapshot};
use crate::update::{BatchStats, UpdateStats};
use crate::wal::{read_log, DiskFs, StorageFs, Wal, WalEntry, WalRecord};

/// Magic bytes of the checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"SLCK";
/// Version byte of the checkpoint format.
pub const CHECKPOINT_VERSION: u8 = 1;

/// What [`DurableStore::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN recorded in the checkpoint (0 when none existed).
    pub checkpoint_lsn: u64,
    /// Documents restored from the checkpoint.
    pub checkpoint_docs: usize,
    /// Log records replayed (those with `lsn > checkpoint_lsn`).
    pub replayed: u64,
    /// LSN of the last durable record after recovery.
    pub last_lsn: u64,
    /// Whether a torn final record was truncated from the log.
    pub torn_tail: bool,
    /// Bytes the torn-tail truncation removed.
    pub truncated_bytes: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered to lsn {} (checkpoint: lsn {}, {} docs; replayed {} records{})",
            self.last_lsn,
            self.checkpoint_lsn,
            self.checkpoint_docs,
            self.replayed,
            if self.torn_tail {
                format!("; truncated a torn tail of {} bytes", self.truncated_bytes)
            } else {
                String::new()
            }
        )
    }
}

/// What [`DurableStore::checkpoint`] wrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// LSN the checkpoint covers: replay skips records at or below it.
    pub last_lsn: u64,
    /// Documents serialized into the checkpoint.
    pub documents: usize,
    /// Size of the checkpoint file in bytes.
    pub bytes: usize,
}

impl std::fmt::Display for CheckpointReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint at lsn {}: {} docs, {} bytes; log truncated",
            self.last_lsn, self.documents, self.bytes
        )
    }
}

/// A crash-safe multi-document store: a [`DomStore`] whose every mutation
/// is write-ahead logged, plus checkpointing and recovery (see the module
/// docs).
pub struct DurableStore {
    store: DomStore,
    wal: Wal,
    fs: Arc<dyn StorageFs>,
    checkpoint_path: String,
    /// Writers hold this for read across commit+apply; [`DurableStore::checkpoint`]
    /// takes it for write to quiesce them all.
    gate: RwLock<()>,
    /// Orders lifecycle events (load/remove) among themselves: they contend
    /// on the slab and the shared alphabet, so their log order must match
    /// their apply order.
    lifecycle: Mutex<()>,
    /// Per-document commit+apply locks: ops on one document must reach the
    /// log in the order they reach the grammar.
    doc_locks: Mutex<HashMap<DocId, Arc<Mutex<()>>>>,
}

fn log_path(dir: &str) -> String {
    format!("{dir}/wal.log")
}

fn checkpoint_path(dir: &str) -> String {
    format!("{dir}/checkpoint.slck")
}

impl DurableStore {
    /// Opens (or creates) a durable store in `dir` on the real filesystem,
    /// recovering whatever a previous incarnation left there. The directory
    /// is created if missing.
    pub fn open(dir: &str) -> Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir).map_err(|e| RepairError::Storage {
            detail: format!("create `{dir}`: {e}"),
        })?;
        Self::open_with(Arc::new(DiskFs), dir)
    }

    /// Opens (or creates) a durable store over an injected storage backend —
    /// the seam the fault-injection suite drives with
    /// [`crate::wal::testing::FailpointFs`].
    pub fn open_with(fs: Arc<dyn StorageFs>, dir: &str) -> Result<(Self, RecoveryReport)> {
        let log = log_path(dir);
        let ckpt = checkpoint_path(dir);
        let store = DomStore::new();
        let mut report = RecoveryReport::default();

        if let Some(bytes) = fs.read(&ckpt)? {
            let (lsn, layout, docs) = decode_checkpoint(&bytes)?;
            report.checkpoint_lsn = lsn;
            report.checkpoint_docs = docs.len();
            store.restore_slab(layout, docs)?;
        }

        let log_bytes = fs.read(&log)?.unwrap_or_default();
        let replay = read_log(&log_bytes)?;
        if replay.torn {
            report.torn_tail = true;
            report.truncated_bytes = log_bytes.len() as u64 - replay.valid_len;
            fs.set_len(&log, replay.valid_len)?;
            fs.sync(&log)?;
        }
        let mut last_lsn = report.checkpoint_lsn.max(replay.last_lsn());
        for (lsn, offset, entry) in replay.records {
            if lsn <= report.checkpoint_lsn {
                continue; // already folded into the checkpoint
            }
            apply_entry(&store, lsn, offset, entry)?;
            report.replayed += 1;
            last_lsn = last_lsn.max(lsn);
        }
        report.last_lsn = last_lsn;

        let wal = Wal::new(fs.clone(), log, report.last_lsn);
        Ok((
            DurableStore {
                store,
                wal,
                fs,
                checkpoint_path: ckpt,
                gate: RwLock::new(()),
                lifecycle: Mutex::new(()),
                doc_locks: Mutex::new(HashMap::new()),
            },
            report,
        ))
    }

    fn doc_lock(&self, doc: DocId) -> Arc<Mutex<()>> {
        let mut map = self.doc_locks.lock().expect("doc-lock map never poisoned");
        // Stale ids fed to apply/apply_batch/remove create entries too, and
        // only a successful remove() deletes one — so the map would grow by
        // one Arc per distinct id ever touched. Prune dead entries (nobody
        // holds the Arc, document no longer live) whenever the map outgrows
        // the live-document count, keeping it bounded on long-lived stores.
        if map.len() > 2 * self.store.len() + 16 {
            map.retain(|&id, lock| Arc::strong_count(lock) > 1 || self.store.contains(id));
        }
        map.entry(doc).or_default().clone()
    }

    // ----- logged mutations (fsync before apply; see the module docs) -----

    /// Durable [`DomStore::load_xml`]: the fragment is logged and fsync'd,
    /// then compressed into the store.
    pub fn load_xml(&self, xml: &XmlTree) -> Result<DocId> {
        let _gate = self.gate.read().expect("gate never poisoned");
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        self.wal.commit(&WalRecord::LoadXml { tree: xml })?;
        self.store.load_xml(xml)
    }

    /// Durable [`DomStore::load_grammar`]: the grammar's binary encoding is
    /// logged, then the grammar joins the store.
    pub fn load_grammar(&self, grammar: Grammar) -> Result<DocId> {
        let _gate = self.gate.read().expect("gate never poisoned");
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        let bytes = serialize::encode(&grammar);
        self.wal.commit(&WalRecord::LoadGrammar { bytes: &bytes })?;
        self.store.load_grammar(grammar)
    }

    /// Durable [`DomStore::remove`].
    pub fn remove(&self, doc: DocId) -> Result<Grammar> {
        let _gate = self.gate.read().expect("gate never poisoned");
        let _order = self.lifecycle.lock().expect("lifecycle lock never poisoned");
        let lock = self.doc_lock(doc);
        let _doc = lock.lock().expect("doc lock never poisoned");
        self.wal.commit(&WalRecord::Remove { doc })?;
        let result = self.store.remove(doc);
        if result.is_ok() {
            self.doc_locks
                .lock()
                .expect("doc-lock map never poisoned")
                .remove(&doc);
        }
        result
    }

    /// Durable [`DomStore::apply`] (logged as a batch of one).
    pub fn apply(&self, doc: DocId, op: &UpdateOp) -> Result<(UpdateStats, MaintenanceReport)> {
        let _gate = self.gate.read().expect("gate never poisoned");
        let lock = self.doc_lock(doc);
        let _doc = lock.lock().expect("doc lock never poisoned");
        self.wal.commit(&WalRecord::ApplyBatch {
            doc,
            ops: std::slice::from_ref(op),
        })?;
        self.store.apply(doc, op)
    }

    /// Durable [`DomStore::apply_batch`].
    pub fn apply_batch(
        &self,
        doc: DocId,
        ops: &[UpdateOp],
    ) -> Result<(BatchStats, MaintenanceReport)> {
        let _gate = self.gate.read().expect("gate never poisoned");
        let lock = self.doc_lock(doc);
        let _doc = lock.lock().expect("doc lock never poisoned");
        self.wal.commit(&WalRecord::ApplyBatch { doc, ops })?;
        self.store.apply_batch(doc, ops)
    }

    /// Durable [`DomStore::apply_batch_many`]: **one** log record (one
    /// fsync) covers the whole multi-document fan-out.
    pub fn apply_batch_many(
        &self,
        jobs: &[(DocId, Vec<UpdateOp>)],
    ) -> (Vec<Result<BatchStats>>, MaintenanceReport) {
        if jobs.is_empty() {
            return (Vec::new(), MaintenanceReport::default());
        }
        let _gate = self.gate.read().expect("gate never poisoned");
        // Lock every distinct target in sorted order (no deadlocks with
        // concurrent multi-document batches).
        let mut targets: Vec<DocId> = jobs.iter().map(|(doc, _)| *doc).collect();
        targets.sort();
        targets.dedup();
        let locks: Vec<Arc<Mutex<()>>> = targets.iter().map(|&d| self.doc_lock(d)).collect();
        let _guards: Vec<_> = locks
            .iter()
            .map(|l| l.lock().expect("doc lock never poisoned"))
            .collect();
        if let Err(e) = self.wal.commit(&WalRecord::ApplyMany { jobs }) {
            let results = jobs.iter().map(|_| Err(e.clone())).collect();
            return (results, MaintenanceReport::default());
        }
        self.store.apply_batch_many(jobs)
    }

    // ----- checkpointing -----

    /// Quiesces writers, serializes the whole store (slab layout plus every
    /// document's grammar) into the checkpoint file **atomically**
    /// (temp + rename), then truncates the log. After a crash at any point
    /// of this sequence, recovery sees either the old checkpoint plus the
    /// full log or the new checkpoint (plus a log whose records it skips
    /// by LSN) — never a half state.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let _gate = self.gate.write().expect("gate never poisoned");
        // Quiesced: no commit or apply is in flight anywhere.
        let last_lsn = self.wal.durable_lsn();
        let layout = self.store.capture_slab();
        let ids = layout.live.clone();
        let mut docs = Vec::with_capacity(ids.len());
        for &id in &ids {
            let grammar = self.store.grammar(id)?;
            docs.push((id, serialize::encode(&grammar)));
        }
        let bytes = encode_checkpoint(last_lsn, &layout, &docs);
        self.fs.write_atomic(&self.checkpoint_path, &bytes)?;
        self.wal.truncate()?;
        Ok(CheckpointReport {
            last_lsn,
            documents: ids.len(),
            bytes: bytes.len(),
        })
    }

    // ----- read surface (delegated; reads need no logging) -----

    /// The wrapped [`DomStore`], for its full read surface. Mutating the
    /// store through this reference **bypasses the log** — recovered state
    /// will not include such changes; use the logged methods above instead.
    pub fn dom(&self) -> &DomStore {
        &self.store
    }

    /// See [`DomStore::snapshot`].
    pub fn snapshot(&self, doc: DocId) -> Result<Snapshot> {
        self.store.snapshot(doc)
    }

    /// See [`DomStore::grammar`].
    pub fn grammar(&self, doc: DocId) -> Result<Arc<Grammar>> {
        self.store.grammar(doc)
    }

    /// See [`DomStore::to_xml`].
    pub fn to_xml(&self, doc: DocId) -> Result<XmlTree> {
        self.store.to_xml(doc)
    }

    /// See [`DomStore::query_str`].
    pub fn query_str(&self, doc: DocId, query: &str) -> Result<QueryMatches> {
        self.store.query_str(doc, query)
    }

    /// See [`DomStore::label_at`].
    pub fn label_at(&self, doc: DocId, preorder_index: u128) -> Result<String> {
        self.store.label_at(doc, preorder_index)
    }

    /// See [`DomStore::nav_tables`].
    pub fn nav_tables(&self, doc: DocId) -> Result<Arc<NavTables>> {
        self.store.nav_tables(doc)
    }

    /// See [`DomStore::doc_ids`].
    pub fn doc_ids(&self) -> Vec<DocId> {
        self.store.doc_ids()
    }

    /// See [`DomStore::contains`].
    pub fn contains(&self, doc: DocId) -> bool {
        self.store.contains(doc)
    }

    /// See [`DomStore::len`].
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// See [`DomStore::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// See [`DomStore::edge_count`].
    pub fn edge_count(&self, doc: DocId) -> Result<usize> {
        self.store.edge_count(doc)
    }

    /// See [`DomStore::derived_size`].
    pub fn derived_size(&self, doc: DocId) -> Result<u128> {
        self.store.derived_size(doc)
    }

    /// See [`DomStore::maintain`]. Recompression is not logged: it never
    /// changes the derived document, so replay is unaffected by when (or
    /// whether) maintenance ran.
    pub fn maintain(&self) -> MaintenanceReport {
        self.store.maintain()
    }

    /// See [`DomStore::recompress`] (not logged, like [`DurableStore::maintain`]).
    pub fn recompress(&self, doc: DocId) -> Result<RepairStats> {
        self.store.recompress(doc)
    }

    /// LSN of the last durably committed record.
    pub fn durable_lsn(&self) -> u64 {
        self.wal.durable_lsn()
    }

    /// Number of log fsyncs so far (commits ÷ fsyncs = group-commit
    /// coalescing factor).
    pub fn wal_sync_count(&self) -> u64 {
        self.wal.sync_count()
    }
}

/// Replays one decoded record against the store. Per-op failures are
/// expected (they reproduce failures of the original run — stale ids,
/// out-of-range targets) and deliberately non-fatal. A `LoadGrammar`
/// payload that fails to decode is different: its frame passed the CRC, so
/// this is genuine inconsistency, and silently skipping the load would
/// shift every later slab assignment away from the pre-crash state — it
/// surfaces as [`RepairError::WalCorrupt`] instead.
fn apply_entry(store: &DomStore, lsn: u64, offset: u64, entry: WalEntry) -> Result<()> {
    match entry {
        WalEntry::LoadXml { tree } => {
            let _ = store.load_xml(&tree);
        }
        WalEntry::LoadGrammar { bytes } => {
            let grammar = serialize::decode(&bytes).map_err(|e| RepairError::WalCorrupt {
                lsn: lsn - 1,
                offset,
                detail: format!(
                    "record lsn {lsn}: LoadGrammar payload fails to decode despite a valid \
                     record checksum: {e}"
                ),
            })?;
            let _ = store.load_grammar(grammar);
        }
        WalEntry::Remove { doc } => {
            let _ = store.remove(doc);
        }
        WalEntry::ApplyBatch { doc, ops } => {
            let _ = store.apply_batch(doc, &ops);
        }
        WalEntry::ApplyMany { jobs } => {
            let _ = store.apply_batch_many(&jobs);
        }
    }
    Ok(())
}

// ----- checkpoint file format -----

fn encode_checkpoint(last_lsn: u64, layout: &SlabLayout, docs: &[(DocId, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder
    let body_start = out.len();
    wire::write_varint(&mut out, last_lsn);
    wire::write_varint(&mut out, layout.generations.len() as u64);
    for &generation in &layout.generations {
        wire::write_varint(&mut out, generation as u64);
    }
    wire::write_varint(&mut out, layout.free.len() as u64);
    for &slot in &layout.free {
        wire::write_varint(&mut out, slot as u64);
    }
    wire::write_varint(&mut out, layout.live.len() as u64);
    for &id in &layout.live {
        wire::write_varint(&mut out, id.slot() as u64);
        wire::write_varint(&mut out, id.generation() as u64);
    }
    wire::write_varint(&mut out, docs.len() as u64);
    for (id, bytes) in docs {
        wire::write_varint(&mut out, id.slot() as u64);
        wire::write_varint(&mut out, id.generation() as u64);
        wire::write_varint(&mut out, bytes.len() as u64);
        out.extend_from_slice(bytes);
    }
    let crc = sltgrammar::crc32::crc32(&out[body_start..]);
    out[5..9].copy_from_slice(&crc.to_le_bytes());
    out
}

fn ckpt_err(detail: impl Into<String>) -> RepairError {
    RepairError::Storage {
        detail: format!("checkpoint corrupt: {}", detail.into()),
    }
}

#[allow(clippy::type_complexity)]
fn decode_checkpoint(bytes: &[u8]) -> Result<(u64, SlabLayout, Vec<(DocId, Grammar)>)> {
    if bytes.len() < 9 || &bytes[..4] != CHECKPOINT_MAGIC {
        return Err(ckpt_err("bad magic bytes"));
    }
    if bytes[4] != CHECKPOINT_VERSION {
        return Err(ckpt_err(format!("unsupported version {}", bytes[4])));
    }
    let expected = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
    let found = sltgrammar::crc32::crc32(&bytes[9..]);
    if expected != found {
        return Err(ckpt_err(format!(
            "checksum mismatch (header {expected:#010x}, body {found:#010x})"
        )));
    }
    let mut r = WireReader::new(&bytes[9..]);
    let fail = |e: xmltree::XmlError| ckpt_err(e.to_string());
    let last_lsn = r.varint().map_err(fail)?;
    let mut layout = SlabLayout::default();
    let slots = bounded_count(&mut r, 1, "slot")?;
    for _ in 0..slots {
        layout.generations.push(r.varint().map_err(fail)? as u32);
    }
    let free = bounded_count(&mut r, 1, "free-slot")?;
    for _ in 0..free {
        layout.free.push(r.varint().map_err(fail)? as u32);
    }
    let live = bounded_count(&mut r, 2, "live-doc")?;
    for _ in 0..live {
        let slot = r.varint().map_err(fail)? as u32;
        let generation = r.varint().map_err(fail)? as u32;
        layout.live.push(DocId::from_parts(slot, generation));
    }
    let doc_count = bounded_count(&mut r, 3, "document")?;
    let mut docs = Vec::with_capacity(doc_count);
    for _ in 0..doc_count {
        let slot = r.varint().map_err(fail)? as u32;
        let generation = r.varint().map_err(fail)? as u32;
        let len = r.varint().map_err(fail)? as usize;
        let grammar_bytes = r.bytes(len).map_err(fail)?;
        let grammar = serialize::decode(grammar_bytes)
            .map_err(|e| ckpt_err(format!("document grammar: {e}")))?;
        docs.push((DocId::from_parts(slot, generation), grammar));
    }
    if !r.finished() {
        return Err(ckpt_err("trailing bytes"));
    }
    Ok((last_lsn, layout, docs))
}

/// Reads a count bounded by the remaining input (each element needs at
/// least `min_bytes`), so corrupt checkpoints cannot drive allocations.
fn bounded_count(r: &mut WireReader<'_>, min_bytes: usize, what: &str) -> Result<usize> {
    let n = r.varint().map_err(|e| ckpt_err(e.to_string()))? as usize;
    if n > r.remaining() / min_bytes {
        return Err(ckpt_err(format!(
            "{what} count {n} exceeds what the remaining input could hold"
        )));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::testing::FailpointFs;
    use xmltree::parse::parse_xml;

    fn doc(tag: &str, n: usize) -> XmlTree {
        let mut s = format!("<{tag}>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str(&format!("</{tag}>"));
        parse_xml(&s).unwrap()
    }

    fn mem_store() -> (Arc<FailpointFs>, DurableStore) {
        let fs = Arc::new(FailpointFs::new());
        let (store, report) = DurableStore::open_with(fs.clone(), "db").unwrap();
        assert_eq!(report, RecoveryReport::default());
        (fs, store)
    }

    #[test]
    fn loads_and_updates_replay_to_identical_state() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 4)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "entry".into() })
            .unwrap();
        store
            .apply_batch(b, &[UpdateOp::Delete { target: 1 }])
            .unwrap();
        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        drop(store); // "crash": memory gone, fs survives

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.replayed, 4);
        assert!(!report.torn_tail);
        assert_eq!(recovered.doc_ids(), vec![a, b], "ids survive recovery");
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want_a);
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn mid_chunk_splice_error_replays_to_the_partial_state() {
        // The WAL logs an ApplyBatch record *before* the apply; a splice-time
        // error leaves the chunk's already-spliced prefix applied in memory.
        // Recovery replays the same record through the same non-fatal
        // apply_batch, so the recovered document must equal the in-memory
        // partial state, byte for byte — not the batch-start state.
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        let before_a = store.to_xml(a).unwrap().to_xml();

        // Doc a: rename + insert splice fine, then the delete lands on a null
        // node (preorder 3 is <title/>'s empty child list) and errors.
        let frag = parse_xml("<ad/>").unwrap();
        let ops_a = vec![
            UpdateOp::Rename { target: 1, label: "entry".into() },
            UpdateOp::InsertBefore { target: 5, fragment: frag },
            UpdateOp::Delete { target: 3 },
        ];
        assert!(store.apply_batch(a, &ops_a).is_err());
        // Doc b: the rename to the reserved null label errors after a
        // successful insert in the same chunk.
        let ops_b = vec![
            UpdateOp::InsertBefore {
                target: 1,
                fragment: parse_xml("<promo/>").unwrap(),
            },
            UpdateOp::Rename { target: 3, label: "#".into() },
        ];
        assert!(store.apply_batch(b, &ops_b).is_err());

        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        assert_ne!(want_a, before_a, "the failed batch's prefix must be applied");
        drop(store); // crash with the poisoned records in the log

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.replayed, 4);
        assert_eq!(
            recovered.to_xml(a).unwrap().to_xml(),
            want_a,
            "replay must reproduce the partial state of the failed batch"
        );
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn checkpoint_restores_without_replay_and_truncates_the_log() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 4)).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "entry".into() })
            .unwrap();
        let report = store.checkpoint().unwrap();
        assert_eq!(report.last_lsn, 2);
        assert_eq!(report.documents, 1);
        assert_eq!(fs.file("db/wal.log").unwrap().len(), 0, "log truncated");
        let want = store.to_xml(a).unwrap().to_xml();
        drop(store);

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.checkpoint_lsn, 2);
        assert_eq!(report.replayed, 0);
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want);
    }

    #[test]
    fn removal_and_slot_reuse_replay_identically() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let b = store.load_xml(&doc("blog", 2)).unwrap();
        store.remove(a).unwrap();
        let c = store.load_xml(&doc("log", 2)).unwrap();
        assert_eq!(c.slot(), a.slot(), "slot reused");
        assert_ne!(c.generation(), a.generation());
        drop(store);

        let (recovered, _) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(recovered.doc_ids(), vec![b, c]);
        assert!(!recovered.contains(a), "stale id stays dead after recovery");
    }

    #[test]
    fn checkpoint_then_more_writes_replays_only_the_tail() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 4)).unwrap();
        store.checkpoint().unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "x".into() })
            .unwrap();
        let b = store.load_xml(&doc("blog", 2)).unwrap();
        let want_a = store.to_xml(a).unwrap().to_xml();
        let want_b = store.to_xml(b).unwrap().to_xml();
        drop(store);

        let (recovered, report) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(report.checkpoint_lsn, 1);
        assert_eq!(report.replayed, 2);
        assert_eq!(recovered.to_xml(a).unwrap().to_xml(), want_a);
        assert_eq!(recovered.to_xml(b).unwrap().to_xml(), want_b);
    }

    #[test]
    fn load_grammar_records_replay() {
        let (fs, store) = mem_store();
        let plain = DomStore::new();
        let tmp = plain.load_xml(&doc("feed", 3)).unwrap();
        let grammar = plain.remove(tmp).unwrap();
        let id = store.load_grammar(grammar).unwrap();
        let want = store.to_xml(id).unwrap().to_xml();
        drop(store);
        let (recovered, _) = DurableStore::open_with(fs, "db").unwrap();
        assert_eq!(recovered.to_xml(id).unwrap().to_xml(), want);
    }

    #[test]
    fn apply_batch_many_is_one_record_one_fsync() {
        let (fs, store) = mem_store();
        let ids: Vec<DocId> = (0..4).map(|i| store.load_xml(&doc("feed", 2 + i)).unwrap()).collect();
        let syncs_before = fs.sync_count();
        let jobs: Vec<(DocId, Vec<UpdateOp>)> = ids
            .iter()
            .map(|&id| (id, vec![UpdateOp::Rename { target: 1, label: "x".into() }]))
            .collect();
        let (results, _) = store.apply_batch_many(&jobs);
        for r in results {
            r.unwrap();
        }
        assert_eq!(fs.sync_count() - syncs_before, 1, "one fsync for the whole fan-out");
        let wants: Vec<String> = ids.iter().map(|&id| store.to_xml(id).unwrap().to_xml()).collect();
        drop(store);
        let (recovered, _) = DurableStore::open_with(fs, "db").unwrap();
        for (&id, want) in ids.iter().zip(&wants) {
            assert_eq!(&recovered.to_xml(id).unwrap().to_xml(), want);
        }
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let (fs, store) = mem_store();
        store.load_xml(&doc("feed", 3)).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let mut bytes = fs.file("db/checkpoint.slck").unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs.set_file("db/checkpoint.slck", bytes);
        assert!(matches!(
            DurableStore::open_with(fs, "db"),
            Err(RepairError::Storage { .. })
        ));
    }

    #[test]
    fn undecodable_load_grammar_record_is_corruption() {
        let fs = Arc::new(FailpointFs::new());
        // A frame whose CRC is valid but whose LoadGrammar payload is not a
        // grammar encoding: replay must fail loudly, not skip the load.
        let frame = crate::wal::encode_frame(
            1,
            &WalRecord::LoadGrammar { bytes: b"not a grammar encoding" },
        );
        fs.set_file("db/wal.log", frame);
        assert!(matches!(
            DurableStore::open_with(fs, "db"),
            Err(RepairError::WalCorrupt { lsn: 0, .. })
        ));
    }

    #[test]
    fn stale_doc_lock_entries_are_pruned() {
        let (_fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 1)).unwrap();
        for slot in 0..200u32 {
            let stale = DocId::from_parts(slot, 999);
            let _ = store.apply(stale, &UpdateOp::Delete { target: 1 });
            let _ = store.remove(stale);
        }
        let size = store.doc_locks.lock().unwrap().len();
        assert!(
            size <= 2 * store.len() + 17,
            "doc-lock map should stay bounded, holds {size} entries"
        );
        assert!(store.contains(a), "live document survives the pruning");
    }

    #[test]
    fn corrupt_mid_log_record_is_a_typed_error() {
        let (fs, store) = mem_store();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        store
            .apply(a, &UpdateOp::Rename { target: 1, label: "x".into() })
            .unwrap();
        drop(store);
        let mut bytes = fs.file("db/wal.log").unwrap();
        bytes[10] ^= 0x20; // inside the first record's payload
        fs.set_file("db/wal.log", bytes);
        assert!(matches!(
            DurableStore::open_with(fs, "db"),
            Err(RepairError::WalCorrupt { .. })
        ));
    }
}
