//! Incrementally maintained grammar-side digram occurrence index.
//!
//! [`crate::occurrences::retrieve_occs`] recomputes the full occurrence table
//! — every chain walk, every overlap check, every usage weight — from scratch.
//! `GrammarRePair` used to call it once per replacement round, which put an
//! O(grammar) term into every round and dominated recompression on the update
//! path. [`OccIndex`] keeps the same information *persistent across rounds*,
//! the way `treerepair::OccTable` already does on trees: it is built once at
//! the start of a recompression run and then [`OccIndex::refresh`]ed after
//! each round, at a cost proportional to what the round actually changed.
//!
//! The index caches, per rule, the chain-resolved digram candidates of its
//! generators plus the set of rules those chain walks entered. A refresh:
//!
//! 1. finds structurally changed rules by comparing cached
//!    [`sltgrammar::RhsTree::version`] counters (splices self-report by
//!    bumping the counter — no manual delta plumbing),
//! 2. closes the set over the inverted chain-dependency index (a chain only
//!    ever walks *down* into callees, so the rules to rescan are exactly the
//!    cached dependents of the changed rules),
//! 3. rescans the dirty rules and applies candidate-count deltas to the
//!    per-digram aggregates,
//! 4. recomputes rule order and usage from the cached call graph (O(rules +
//!    call edges), no node walks) and propagates `count × Δusage` weight
//!    deltas,
//! 5. replays equal-label digrams in canonical anti-straight-line order from
//!    the cached candidate lists (their greedy overlap resolution is
//!    order-sensitive, so deltas alone cannot reproduce the oracle), and
//! 6. forwards every weight change to the embedded
//!    [`FrequencyBucketQueue`].
//!
//! The result is bit-for-bit the table [`crate::occurrences::retrieve_occs`]
//! would build on the current grammar — same weights (saturating semantics
//! included), same generator rule sets, same selection under the queue's
//! deterministic tie-breaking. `tests/recompress_incremental.rs` and the
//! selector-equivalence suite assert byte-identical output grammars against
//! the per-round rebuild oracle.

use sltgrammar::{FxHashMap, FxHashSet, Grammar, NodeKind, NtId};
use treerepair::{Digram, FrequencyBucketQueue};

use crate::occurrences::{
    is_transparent_nt, overlaps, resolved_kind, tree_child_traced, tree_parent_traced, FrozenSet,
    GrammarNode,
};

/// One chain-resolved occurrence candidate of a rule (the pre-overlap view of
/// a generator): its resolved endpoints. The digram it realizes is the
/// `RuleCache::by_digram` key indexing it.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    tree_parent: GrammarNode,
    tree_child: GrammarNode,
    /// Whether the generator node itself is a transparent nonterminal
    /// reference — equal-label digrams never record such candidates (their
    /// tree child is the root of another rule).
    transparent: bool,
}

/// Everything the index knows about one rule, valid for one
/// [`sltgrammar::RhsTree::version`].
#[derive(Debug, Clone, Default)]
struct RuleCache {
    /// Rhs version this cache was built against.
    version: u64,
    /// Frozen rules contribute call-graph edges and size but no candidates.
    frozen: bool,
    /// Edge count of the rule body (for the live grammar-size aggregate).
    edges: usize,
    /// Distinct callees with reference multiplicities (the call graph).
    callees: FxHashMap<NtId, u64>,
    /// Rules entered by this rule's chain walks: if any of them changes
    /// structurally, this rule's candidates are stale.
    deps: FxHashSet<NtId>,
    /// Chain-resolved candidates in preorder of the generator nodes.
    candidates: Vec<Candidate>,
    /// Indices into `candidates` per digram, preserving preorder — the
    /// aggregate delta unit (counts) and the equal-label replay input, so a
    /// replay touches only its own digram's candidates.
    by_digram: FxHashMap<Digram, Vec<u32>>,
}

/// Per-digram aggregate state.
#[derive(Debug, Clone)]
struct Entry {
    /// Equal-label digrams are maintained by replay, not by deltas.
    equal: bool,
    /// Exact usage-weighted occurrence count. `i128` so that delta
    /// application never wraps; clamped to `u64` at the queue boundary, which
    /// reproduces the oracle's saturating additions (a sum of non-negative
    /// saturating adds equals `min(Σ, u64::MAX)`).
    weight: i128,
    /// Candidate counts per contributing rule (pre-overlap).
    cand_rules: FxHashMap<NtId, u64>,
    /// Rules with at least one *accepted* occurrence after equal-label
    /// replay; equals the candidate rules for non-equal digrams.
    accepted_rules: FxHashSet<NtId>,
    /// Weight currently registered in the queue.
    queued: u64,
}

impl Entry {
    fn new(equal: bool) -> Self {
        Entry {
            equal,
            weight: 0,
            cand_rules: FxHashMap::default(),
            accepted_rules: FxHashSet::default(),
            queued: 0,
        }
    }
}

/// The persistent grammar-side occurrence table with its embedded selection
/// queue. See the module docs for the refresh contract.
#[derive(Debug, Clone, Default)]
pub struct OccIndex {
    rules: FxHashMap<NtId, RuleCache>,
    /// Inverted chain-dependency index: `dependents[c]` are the rules whose
    /// cached candidates resolved through rule `c`.
    dependents: FxHashMap<NtId, FxHashSet<NtId>>,
    entries: FxHashMap<Digram, Entry>,
    queue: FrequencyBucketQueue,
    usage: FxHashMap<NtId, u64>,
    /// Current anti-straight-line rule order (callees first), mirrored from
    /// the cached call graph so no per-round body walk is needed.
    order: Vec<NtId>,
    total_edges: usize,
}

impl OccIndex {
    /// Builds the index for the current grammar (equivalent to a refresh from
    /// an empty state).
    pub fn build(g: &Grammar, frozen: &FrozenSet) -> Self {
        let mut index = OccIndex::default();
        index.refresh(g, frozen);
        index
    }

    /// Re-synchronizes the index with the grammar after a replacement round
    /// (or any sequence of rule splices). Cost is proportional to the rules
    /// that changed, their chain dependents, the usage shifts, and the
    /// equal-label candidate lists — never to the whole grammar body.
    pub fn refresh(&mut self, g: &Grammar, frozen: &FrozenSet) {
        let live = g.nonterminals();
        let live_set: FxHashSet<NtId> = live.iter().copied().collect();

        // 1. Structurally changed rules self-report through version counters;
        // removed rules are cache entries without a live rule.
        let mut changed: Vec<NtId> = Vec::new();
        for &nt in &live {
            let is_frozen = frozen.contains(&nt);
            match self.rules.get(&nt) {
                Some(c) if c.version == g.rule(nt).rhs.version() && c.frozen == is_frozen => {}
                _ => changed.push(nt),
            }
        }
        let removed: Vec<NtId> = self
            .rules
            .keys()
            .copied()
            .filter(|nt| !live_set.contains(nt))
            .collect();

        // 2. Dirty closure: a structural change in `c` invalidates exactly the
        // cached rules whose chain walks entered `c`.
        let mut dirty: FxHashSet<NtId> = changed.iter().copied().collect();
        for nt in changed.iter().chain(removed.iter()) {
            if let Some(deps) = self.dependents.get(nt) {
                for &dependent in deps {
                    if live_set.contains(&dependent) {
                        dirty.insert(dependent);
                    }
                }
            }
        }

        let mut touched: FxHashSet<Digram> = FxHashSet::default();

        // 3. Retract the old contributions of dirty and removed rules, valued
        // at the usage they were registered with.
        for &nt in removed.iter().chain(dirty.iter()) {
            self.drop_rule(nt, &mut touched);
        }

        // 4. Rescan dirty (live) rules against the current grammar.
        for &nt in &dirty {
            let cache = scan_rule(g, nt, frozen);
            self.total_edges += cache.edges;
            for &dep in &cache.deps {
                self.dependents.entry(dep).or_default().insert(nt);
            }
            let u_old = self.usage.get(&nt).copied().unwrap_or(0);
            for (&digram, indices) in &cache.by_digram {
                touched.insert(digram);
                let entry = self
                    .entries
                    .entry(digram)
                    .or_insert_with(|| Entry::new(digram.equal_labels()));
                entry.cand_rules.insert(nt, indices.len() as u64);
                if !entry.equal {
                    entry.weight += indices.len() as i128 * u_old as i128;
                }
            }
            self.rules.insert(nt, cache);
        }

        // 5. Order and usage from the cached call graph.
        self.order = compute_order(&live, &self.rules);
        let new_usage = compute_usage(g.start(), &self.order, &self.rules);

        // 6. Usage deltas: every weight factors through usage(rule), so a
        // usage shift is a `count × Δ` adjustment per (rule, digram) pair.
        for &nt in &live {
            let u_new = new_usage.get(&nt).copied().unwrap_or(0);
            let u_old = self.usage.get(&nt).copied().unwrap_or(0);
            if u_new == u_old {
                continue;
            }
            let cache = &self.rules[&nt];
            for (&digram, indices) in &cache.by_digram {
                if let Some(entry) = self.entries.get_mut(&digram) {
                    if !entry.equal {
                        entry.weight +=
                            indices.len() as i128 * (u_new as i128 - u_old as i128);
                        touched.insert(digram);
                    }
                }
            }
        }
        self.usage = new_usage;

        // 7. Equal-label digrams: replay the canonical scan order; the greedy
        // overlap resolution is order-sensitive, and the order itself can
        // shift as rules are added, so every equal-label entry is replayed.
        let order_pos: FxHashMap<NtId, usize> = self
            .order
            .iter()
            .enumerate()
            .map(|(i, &nt)| (nt, i))
            .collect();
        let equal_digrams: Vec<Digram> = self
            .entries
            .iter()
            .filter(|(_, e)| e.equal)
            .map(|(&d, _)| d)
            .collect();
        for digram in equal_digrams {
            let (weight, accepted) = self.replay_equal(&digram, &order_pos);
            let entry = self.entries.get_mut(&digram).expect("entry exists");
            entry.weight = weight;
            entry.accepted_rules = accepted;
            touched.insert(digram);
        }

        // 8. Forward net weight changes to the queue; drop empty entries.
        for digram in touched {
            let Some(entry) = self.entries.get_mut(&digram) else { continue };
            if entry.cand_rules.is_empty() {
                let old = entry.queued;
                self.queue.update(&digram, old, 0);
                self.entries.remove(&digram);
                continue;
            }
            let new_queued = clamp_weight(entry.weight);
            if new_queued != entry.queued {
                self.queue.update(&digram, entry.queued, new_queued);
                entry.queued = new_queued;
            }
        }
    }

    /// Retracts one rule's cached contributions (reverse dependency edges,
    /// digram counts, non-equal weights, size).
    fn drop_rule(&mut self, nt: NtId, touched: &mut FxHashSet<Digram>) {
        let Some(cache) = self.rules.remove(&nt) else { return };
        self.total_edges -= cache.edges;
        for dep in &cache.deps {
            if let Some(set) = self.dependents.get_mut(dep) {
                set.remove(&nt);
            }
        }
        let u_old = self.usage.get(&nt).copied().unwrap_or(0);
        for (&digram, indices) in &cache.by_digram {
            touched.insert(digram);
            if let Some(entry) = self.entries.get_mut(&digram) {
                entry.cand_rules.remove(&nt);
                if !entry.equal {
                    entry.weight -= indices.len() as i128 * u_old as i128;
                }
            }
        }
    }

    /// Replays the canonical greedy scan for one equal-label digram over the
    /// cached candidate lists of its contributing rules.
    fn replay_equal(
        &self,
        digram: &Digram,
        order_pos: &FxHashMap<NtId, usize>,
    ) -> (i128, FxHashSet<NtId>) {
        let entry = &self.entries[digram];
        let mut contributing: Vec<NtId> = entry.cand_rules.keys().copied().collect();
        contributing.sort_unstable_by_key(|nt| order_pos[nt]);
        let mut used_parents: FxHashSet<GrammarNode> = FxHashSet::default();
        let mut used_children: FxHashSet<GrammarNode> = FxHashSet::default();
        let mut weight: i128 = 0;
        let mut accepted: FxHashSet<NtId> = FxHashSet::default();
        for nt in contributing {
            let u = self.usage.get(&nt).copied().unwrap_or(0) as i128;
            let cache = &self.rules[&nt];
            let indices = cache.by_digram.get(digram).map(|v| v.as_slice()).unwrap_or(&[]);
            for cand in indices.iter().map(|&i| &cache.candidates[i as usize]) {
                if cand.transparent {
                    continue;
                }
                if overlaps(&used_parents, &used_children, cand.tree_parent, cand.tree_child) {
                    continue;
                }
                used_parents.insert(cand.tree_parent);
                used_children.insert(cand.tree_child);
                weight += u;
                accepted.insert(nt);
            }
        }
        (weight, accepted)
    }

    /// Most frequent digram with weight ≥ `min_occurrences` whose pattern rank
    /// does not exceed `max_rank`, ties broken by [`Digram::sort_key`] — the
    /// digram the rebuild oracle would select. Rank-ineligible digrams are
    /// excluded permanently (ranks never change).
    pub fn select_best(
        &mut self,
        g: &Grammar,
        min_occurrences: u64,
        max_rank: usize,
    ) -> Option<Digram> {
        self.queue
            .pop_best(min_occurrences, |d| d.pattern_rank(g) <= max_rank)
    }

    /// The rules currently containing occurrence generators of `digram` —
    /// the rule set [`crate::replace::replace_all_occurrences`] must visit.
    pub fn generator_rules(&self, digram: &Digram) -> FxHashSet<NtId> {
        match self.entries.get(digram) {
            None => FxHashSet::default(),
            Some(e) if e.equal => e.accepted_rules.clone(),
            Some(e) => e.cand_rules.keys().copied().collect(),
        }
    }

    /// Permanently bans a digram from selection (its replacement produced
    /// nothing; retrying would never terminate).
    pub fn exclude(&mut self, digram: &Digram) {
        let queued = self.entries.get(digram).map(|e| e.queued).unwrap_or(0);
        self.queue.exclude(digram, queued);
        if let Some(entry) = self.entries.get_mut(digram) {
            entry.queued = 0;
        }
    }

    /// Current anti-straight-line rule order (callees first, start rule last),
    /// identical to [`Grammar::anti_sl_order`] but derived from the cached
    /// call graph without walking rule bodies.
    pub fn order(&self) -> &[NtId] {
        &self.order
    }

    /// Reference-site counts of every live rule, summed from the cached
    /// call-graph multiplicities — the same numbers [`Grammar::ref_counts`]
    /// produces with a full body walk. O(call edges), no node walks; rules
    /// without references are simply absent.
    pub fn ref_counts(&self) -> FxHashMap<NtId, u64> {
        let mut out: FxHashMap<NtId, u64> = FxHashMap::default();
        for cache in self.rules.values() {
            for (&callee, &count) in &cache.callees {
                *out.entry(callee).or_insert(0) += count;
            }
        }
        out
    }

    /// Live grammar edge count, maintained arithmetically alongside the rule
    /// caches (mirrors [`Grammar::edge_count`] without the walk).
    pub fn edge_count(&self) -> usize {
        self.total_edges
    }

    /// Current usage-weighted occurrence count of a digram (0 if untracked).
    pub fn weight(&self, digram: &Digram) -> u64 {
        self.entries
            .get(digram)
            .map(|e| clamp_weight(e.weight))
            .unwrap_or(0)
    }

    /// Number of digrams currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no digram is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Oracle-equivalent clamp: a sequence of saturating additions of
/// non-negative values equals the exact sum clamped to `u64::MAX`.
fn clamp_weight(weight: i128) -> u64 {
    weight.clamp(0, u64::MAX as i128) as u64
}

/// Scans one rule into its cache: call-graph edges, size, and (for
/// transparent rules) the chain-resolved candidate list with dependency
/// tracking. Mirrors the per-rule loop of
/// [`crate::occurrences::retrieve_occs`] exactly.
fn scan_rule(g: &Grammar, rule: NtId, frozen: &FrozenSet) -> RuleCache {
    let rhs = &g.rule(rule).rhs;
    let pre = rhs.preorder();
    let mut cache = RuleCache {
        version: rhs.version(),
        frozen: frozen.contains(&rule),
        edges: pre.len().saturating_sub(1),
        ..RuleCache::default()
    };
    for &node in &pre {
        if let NodeKind::Nt(callee) = rhs.kind(node) {
            *cache.callees.entry(callee).or_insert(0) += 1;
        }
    }
    if cache.frozen {
        return cache;
    }
    let root = rhs.root();
    let mut deps: FxHashSet<NtId> = FxHashSet::default();
    for &node in &pre {
        if node == root || rhs.kind(node).is_param() {
            continue;
        }
        let Some((tp, index)) =
            tree_parent_traced(g, rule, node, frozen, &mut |entered| {
                deps.insert(entered);
            })
        else {
            continue;
        };
        let tc = tree_child_traced(g, rule, node, frozen, &mut |entered| {
            deps.insert(entered);
        });
        let digram = Digram {
            parent: resolved_kind(g, tp),
            child_index: index,
            child: resolved_kind(g, tc),
        };
        cache
            .by_digram
            .entry(digram)
            .or_default()
            .push(cache.candidates.len() as u32);
        cache.candidates.push(Candidate {
            tree_parent: tp,
            tree_child: tc,
            transparent: is_transparent_nt(rhs.kind(node), frozen),
        });
    }
    cache.deps = deps;
    cache
}

/// Kahn's algorithm over the cached call graph, byte-for-byte mirroring
/// [`Grammar::anti_sl_order`]'s tie-breaking (sorted seeds, sorted release
/// batches): callees first, start rule last.
fn compute_order(live: &[NtId], rules: &FxHashMap<NtId, RuleCache>) -> Vec<NtId> {
    let mut callers: FxHashMap<NtId, Vec<NtId>> = FxHashMap::default();
    let mut remaining_out: FxHashMap<NtId, usize> = FxHashMap::default();
    for &nt in live {
        let callees = &rules[&nt].callees;
        remaining_out.insert(nt, callees.len());
        for &callee in callees.keys() {
            callers.entry(callee).or_default().push(nt);
        }
    }
    // `live` is ascending by id, so the seed queue is already sorted.
    let mut queue: Vec<NtId> = live
        .iter()
        .copied()
        .filter(|nt| remaining_out[nt] == 0)
        .collect();
    let mut order = Vec::with_capacity(live.len());
    let mut qi = 0;
    while qi < queue.len() {
        let nt = queue[qi];
        qi += 1;
        order.push(nt);
        let mut released: Vec<NtId> = Vec::new();
        for &caller in callers.get(&nt).map(|v| v.as_slice()).unwrap_or(&[]) {
            let count = remaining_out.get_mut(&caller).expect("caller is live");
            *count -= 1;
            if *count == 0 {
                released.push(caller);
            }
        }
        released.sort_unstable();
        queue.extend(released);
    }
    debug_assert_eq!(order.len(), live.len(), "call graph must be acyclic");
    order
}

/// Usage from the cached call graph: `usage(start) = 1`, every reference site
/// contributes its caller's usage (saturating), processed callers-first —
/// the same fixpoint [`Grammar::usage`] computes by walking rule bodies.
fn compute_usage(
    start: NtId,
    order: &[NtId],
    rules: &FxHashMap<NtId, RuleCache>,
) -> FxHashMap<NtId, u64> {
    let mut usage: FxHashMap<NtId, u64> = order.iter().map(|&nt| (nt, 0)).collect();
    usage.insert(start, 1);
    for &caller in order.iter().rev() {
        let u = usage[&caller];
        if u == 0 {
            continue;
        }
        for (&callee, &count) in &rules[&caller].callees {
            let add = (u as u128)
                .saturating_mul(count as u128)
                .min(u64::MAX as u128) as u64;
            let slot = usage.get_mut(&callee).expect("callee is live");
            *slot = slot.saturating_add(add);
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occurrences::retrieve_occs;
    use crate::replace::replace_all_occurrences;
    use sltgrammar::text::parse_grammar;
    use treerepair::digram::pattern_rhs;

    /// Asserts the index agrees with a fresh [`retrieve_occs`] rebuild on the
    /// current grammar: same digrams with non-zero candidates, same clamped
    /// weights, same generator rule sets, same order and edge count.
    fn assert_matches_oracle(index: &OccIndex, g: &Grammar, frozen: &FrozenSet) {
        assert_eq!(index.order(), g.anti_sl_order().unwrap().as_slice(), "order");
        assert_eq!(index.edge_count(), g.edge_count(), "edge count");
        let walked: FxHashMap<NtId, u64> = g
            .ref_counts()
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(nt, c)| (nt, c as u64))
            .collect();
        assert_eq!(index.ref_counts(), walked, "call-graph reference counts");
        let oracle = retrieve_occs(g, frozen);
        for (digram, occs) in &oracle {
            assert_eq!(
                index.weight(digram),
                occs.weight,
                "weight mismatch for {digram:?}"
            );
            let expect: FxHashSet<NtId> = occs.generators.iter().map(|gen| gen.rule).collect();
            assert_eq!(
                index.generator_rules(digram),
                expect,
                "generator rules mismatch for {digram:?}"
            );
        }
        // The index may track entries whose accepted set is empty (all
        // candidates overlapped); they must carry weight 0 like the oracle.
        for (digram, entry) in &index.entries {
            if !oracle.contains_key(digram) {
                assert_eq!(clamp_weight(entry.weight), 0, "ghost entry {digram:?}");
            }
        }
    }

    fn digram(g: &Grammar, parent: &str, index: usize, child: &str) -> Digram {
        Digram {
            parent: NodeKind::Term(g.symbols.get(parent).unwrap()),
            child_index: index,
            child: NodeKind::Term(g.symbols.get(child).unwrap()),
        }
    }

    use sltgrammar::NodeKind;

    #[test]
    fn initial_build_matches_retrieve_occs() {
        let g = parse_grammar(
            "S -> r(C, r(C, r(C, r(A(#,#), A(#,#)))))\n\
             C -> A(B(#),#)\n\
             A -> a(y1, a(B(#), a(#, y2)))\n\
             B -> b(y1,#)",
        )
        .unwrap();
        let frozen = FrozenSet::default();
        let index = OccIndex::build(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);
        assert!(!index.is_empty());
        assert!(index.len() >= 4);
    }

    #[test]
    fn refresh_tracks_a_replacement_round() {
        let mut g = parse_grammar(
            "S -> f(a(b(#,#),#), f(a(b(#,#),#), a(b(#,#),#)))",
        )
        .unwrap();
        let mut frozen = FrozenSet::default();
        let mut index = OccIndex::build(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);

        let d = digram(&g, "a", 0, "b");
        assert_eq!(index.weight(&d), 3);
        let rules = index.generator_rules(&d);
        let rank = d.pattern_rank(&g);
        let x = g.add_rule_fresh("X", rank, pattern_rhs(&g, &d));
        frozen.insert(x);
        let order = g.anti_sl_order().unwrap();
        let mut refs = crate::replace::RefCounts::from_counts(index.ref_counts());
        refs.add_rule_body(&g, x);
        let stats =
            replace_all_occurrences(&mut g, &d, x, &rules, &order, &frozen, true, &mut refs);
        assert_eq!(stats.replacements, 3);

        index.refresh(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);
        assert_eq!(index.weight(&d), 0, "replaced digram must vanish");
    }

    #[test]
    fn refresh_follows_chain_dependencies_into_changed_callees() {
        // The (a,1,b) occurrences in S resolve through C and B; mutating B's
        // body must dirty the cached candidates of its dependents.
        let mut g = parse_grammar(
            "S -> f(a(B,#), a(B,#))\n\
             B -> b(c,#)",
        )
        .unwrap();
        let frozen = FrozenSet::default();
        let mut index = OccIndex::build(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);

        // Relabel B's root: every chain through B now resolves differently.
        let b = g.nt_by_name("B").unwrap();
        let d_term = g.symbols.intern("d", 2).unwrap();
        let root = g.rule(b).rhs.root();
        g.rule_mut(b).rhs.set_kind(root, NodeKind::Term(d_term));
        index.refresh(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);
        assert_eq!(index.weight(&digram(&g, "a", 0, "b")), 0);
        assert_eq!(index.weight(&digram(&g, "a", 0, "d")), 2);
    }

    #[test]
    fn equal_label_digrams_replay_the_canonical_overlap_resolution() {
        let g = parse_grammar("S -> a(#, a(#, A))\nA -> a(#, a(#, #))").unwrap();
        let frozen = FrozenSet::default();
        let index = OccIndex::build(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);
        let a = NodeKind::Term(g.symbols.get("a").unwrap());
        let d = Digram {
            parent: a,
            child_index: 1,
            child: a,
        };
        // One occurrence in S, one in A (the crossing S→A pair is skipped).
        assert_eq!(index.weight(&d), 2);
        assert_eq!(index.generator_rules(&d).len(), 2);
    }

    #[test]
    fn excluded_digrams_never_come_back() {
        let g = parse_grammar("S -> f(a(b(#,#),#), a(b(#,#),#))").unwrap();
        let frozen = FrozenSet::default();
        let mut index = OccIndex::build(&g, &frozen);
        let d = digram(&g, "a", 0, "b");
        index.exclude(&d);
        assert_ne!(index.select_best(&g, 2, 4), Some(d));
        index.refresh(&g, &frozen);
        assert_ne!(index.select_best(&g, 2, 4), Some(d));
    }

    #[test]
    fn usage_shifts_propagate_as_weight_deltas() {
        // Deleting one reference to A halves usage(A); the weights of the
        // digrams generated inside A must follow without a rescan of A.
        let mut g = parse_grammar(
            "S -> f(A, A)\n\
             A -> g(a(b(#,#),#))",
        )
        .unwrap();
        let frozen = FrozenSet::default();
        let mut index = OccIndex::build(&g, &frozen);
        let d = digram(&g, "a", 0, "b");
        assert_eq!(index.weight(&d), 2);
        // Replace the second A reference in S by a null leaf.
        let s = g.start();
        let site = {
            let rhs = &g.rule(s).rhs;
            rhs.preorder()
                .into_iter()
                .filter(|&n| rhs.kind(n).is_nt())
                .nth(1)
                .unwrap()
        };
        let null = g.symbols.null();
        let rhs = &mut g.rule_mut(s).rhs;
        let leaf = rhs.add_leaf(NodeKind::Term(null));
        rhs.replace_subtree(site, leaf);
        index.refresh(&g, &frozen);
        assert_matches_oracle(&index, &g, &frozen);
        assert_eq!(index.weight(&d), 1);
    }
}
