//! Path isolation (paper Section III-A), single-target and batched.
//!
//! To update a node `u` of the derived tree `val(G)` we first make `u` appear
//! as an explicit terminal node in the start rule: starting from the start
//! rule's root we navigate towards `u` using the precomputed segment sizes
//! `size(A, 0..k)` and inline exactly the nonterminal references on the path
//! that produce `u`. Lemma 1 of the paper bounds the growth caused by a single
//! isolation by a factor of two, because every rule is inlined at most once.
//!
//! A *sequence* of k updates pays k of those walks, and — worse — the
//! single-target [`isolate`] recomputes `own_sizes`/`segment_sizes` over the
//! whole grammar per call and the start rule's subtree sizes per inlining.
//! [`isolate_many`] amortizes all of that across a batch: the per-rule size
//! tables are computed once, the start rule is walked once with the (sorted)
//! targets distributed down the tree, subtree sizes are patched incrementally
//! after each inlining instead of recomputed, and every nonterminal reference
//! on any target path is inlined at most once — shared path prefixes are
//! isolated once for the whole batch, so the Lemma-1 factor-two growth bound
//! holds per *distinct* root-to-target path, not per target.

use std::collections::HashMap;

use sltgrammar::derive::{own_sizes, segment_sizes, subtree_derived_sizes};
use sltgrammar::fingerprint::derived_size;
use sltgrammar::{Grammar, NodeId, NodeKind, NtId};

use crate::error::{RepairError, Result};

/// Statistics of one path isolation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsolationStats {
    /// Number of rules inlined into the start rule.
    pub inlinings: usize,
}

/// Makes the node with 0-based preorder index `target` of the derived tree
/// `val(G)` explicit in the start rule and returns its node id there — the
/// paper's `iso(G, u)`.
pub fn isolate(g: &mut Grammar, target: u128) -> Result<(NodeId, IsolationStats)> {
    let total = derived_size(g);
    if target >= total {
        return Err(RepairError::TargetOutOfRange {
            index: target,
            size: total,
        });
    }
    let mut stats = IsolationStats::default();
    let own = own_sizes(g);
    let segments: HashMap<NtId, Vec<u128>> = segment_sizes(g);
    let start = g.start();

    let mut sizes = subtree_derived_sizes(&g.rule(start).rhs, &own);
    let mut node = g.rule(start).rhs.root();
    let mut remaining = target;

    loop {
        let kind = g.rule(start).rhs.kind(node);
        match kind {
            NodeKind::Term(_) => {
                if remaining == 0 {
                    return Ok((node, stats));
                }
                remaining -= 1;
                let children = g.rule(start).rhs.children(node).to_vec();
                let mut descended = false;
                for c in children {
                    let s = sizes[&c];
                    if remaining < s {
                        node = c;
                        descended = true;
                        break;
                    }
                    remaining -= s;
                }
                if !descended {
                    return Err(RepairError::TargetOutOfRange {
                        index: target,
                        size: total,
                    });
                }
            }
            NodeKind::Nt(callee) => {
                // Decide whether the target is produced by the callee itself or
                // by one of its argument subtrees; in the former case inline the
                // callee and continue inside the copy with the same offset.
                let segs = &segments[&callee];
                let args = g.rule(start).rhs.children(node).to_vec();
                let mut offset: u128 = 0;
                let mut decided: Option<NodeId> = None;
                let mut produced_by_callee = false;
                for (j, seg) in segs.iter().enumerate() {
                    if remaining < offset + seg {
                        produced_by_callee = true;
                        break;
                    }
                    offset += seg;
                    if j < args.len() {
                        let arg = args[j];
                        let s = sizes[&arg];
                        if remaining < offset + s {
                            decided = Some(arg);
                            break;
                        }
                        offset += s;
                    }
                }
                if produced_by_callee {
                    let new_root = {
                        let callee_rhs = g.rule(callee).rhs.clone();
                        g.rule_mut(start).rhs.inline_at(node, &callee_rhs)
                    };
                    stats.inlinings += 1;
                    // Sizes of the freshly inlined nodes are missing; recompute.
                    sizes = subtree_derived_sizes(&g.rule(start).rhs, &own);
                    node = new_root;
                } else if let Some(arg) = decided {
                    remaining -= offset;
                    node = arg;
                } else {
                    return Err(RepairError::TargetOutOfRange {
                        index: target,
                        size: total,
                    });
                }
            }
            NodeKind::Param(_) => {
                unreachable!("the start rule has rank 0 and contains no parameters")
            }
        }
    }
}

/// A batch path-isolation session.
///
/// Construction computes `own_sizes`, `segment_sizes` and the start rule's
/// subtree sizes **once**; every subsequent isolation through the same session
/// reuses them, patching the subtree-size table incrementally after each
/// inlining (arena node ids are never reused, so entries of surviving nodes
/// stay valid). The session is only coherent as long as the grammar is mutated
/// exclusively through it: callers that splice the start rule (updates) must
/// finish all isolations of a chunk before splicing, and must report every
/// splice through [`note_inserted`](Self::note_inserted) /
/// [`note_removed`](Self::note_removed) so the size table and the cached
/// derived size follow the document. Splices only ever edit the start rule, so
/// `own_sizes`/`segment_sizes` stay valid across them (and across
/// [`Grammar::gc`], which never renumbers surviving rules) — one session can
/// therefore span a whole multi-chunk [`crate::update::apply_batch`] call,
/// keeping the Lemma-1 factor-two growth bound per *distinct* isolated path
/// for the entire batch.
#[derive(Debug)]
pub struct IsolationBatch {
    own: HashMap<NtId, u128>,
    segments: HashMap<NtId, Vec<u128>>,
    sizes: HashMap<NodeId, u128>,
    total: u128,
    stats: IsolationStats,
}

impl IsolationBatch {
    /// Prepares a batch session for the current grammar (one O(grammar) pass).
    pub fn new(g: &Grammar) -> Self {
        let own = own_sizes(g);
        let sizes = subtree_derived_sizes(&g.rule(g.start()).rhs, &own);
        IsolationBatch {
            segments: segment_sizes(g),
            total: derived_size(g),
            own,
            sizes,
            stats: IsolationStats::default(),
        }
    }

    /// Inlinings performed through this session so far.
    pub fn stats(&self) -> IsolationStats {
        self.stats
    }

    /// Number of nodes of the derived tree (cached at session start and
    /// maintained across splices reported through
    /// [`note_inserted`](Self::note_inserted) /
    /// [`note_removed`](Self::note_removed)).
    pub fn derived_size(&self) -> u128 {
        self.total
    }

    /// Derived subtree size of an explicit start-rule node, per the session's
    /// size table.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a start-rule node the session has sized (every
    /// node reachable at session start or touched by an isolation is).
    pub fn subtree_size(&self, node: NodeId) -> u128 {
        self.sizes[&node]
    }

    /// Records an insert splice: the fragment rooted at the fresh start-rule
    /// node `frag_root` was grafted in, growing the derived tree by `grown`
    /// nodes. Sizes of the fresh fragment nodes are filled in (the grafted old
    /// subtree keeps its entries — arena ids are never recycled) and every
    /// ancestor of the graft point grows by `grown`.
    pub fn note_inserted(&mut self, g: &Grammar, frag_root: NodeId, grown: u128) {
        self.fill_sizes(g, frag_root);
        let rhs = &g.rule(g.start()).rhs;
        let mut cur = rhs.parent(frag_root);
        while let Some(p) = cur {
            *self
                .sizes
                .get_mut(&p)
                .expect("ancestors of a splice point are sized") += grown;
            cur = rhs.parent(p);
        }
        self.total += grown;
    }

    /// Records a delete splice: a subtree of `removed` derived nodes was
    /// spliced out from under `parent` (`None` when the start rule's root
    /// itself was replaced). Entries of the detached nodes are left behind;
    /// they are never re-attached, so the stale entries are unreachable.
    pub fn note_removed(&mut self, g: &Grammar, parent: Option<NodeId>, removed: u128) {
        let rhs = &g.rule(g.start()).rhs;
        let mut cur = parent;
        while let Some(p) = cur {
            let s = self
                .sizes
                .get_mut(&p)
                .expect("ancestors of a splice point are sized");
            *s -= removed;
            cur = rhs.parent(p);
        }
        self.total -= removed;
    }

    /// Isolates a single target through the session (sizes are reused and
    /// patched, shared prefixes with earlier isolations are already explicit).
    pub fn isolate_one(&mut self, g: &mut Grammar, target: u128) -> Result<NodeId> {
        Ok(self.isolate_sorted(g, &[target])?[0])
    }

    /// Isolates every target of the strictly increasing list `targets` in one
    /// walk of the start rule, returning their start-rule node ids in order.
    ///
    /// Each nonterminal reference on any target path is inlined at most once;
    /// targets sharing a path prefix share its isolation cost.
    pub fn isolate_sorted(&mut self, g: &mut Grammar, targets: &[u128]) -> Result<Vec<NodeId>> {
        debug_assert!(
            targets.windows(2).all(|w| w[0] < w[1]),
            "targets must be strictly increasing"
        );
        for &t in targets {
            if t >= self.total {
                return Err(RepairError::TargetOutOfRange {
                    index: t,
                    size: self.total,
                });
            }
        }
        let mut resolved: Vec<Option<NodeId>> = vec![None; targets.len()];
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        let start = g.start();
        let root = g.rule(start).rhs.root();
        // Work items: a start-rule node plus the targets that fall into its
        // subtree, as (offset within the subtree, output slot), sorted by
        // offset. LIFO with right-to-left pushes yields a preorder walk.
        let all: Vec<(u128, usize)> = targets.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut stack: Vec<(NodeId, Vec<(u128, usize)>)> = vec![(root, all)];

        while let Some((mut node, mut pending)) = stack.pop() {
            loop {
                let kind = g.rule(start).rhs.kind(node);
                match kind {
                    NodeKind::Term(_) => {
                        // Offsets are distinct, so at most one target rests here.
                        if pending.first().map(|&(rem, _)| rem) == Some(0) {
                            let (_, slot) = pending.remove(0);
                            resolved[slot] = Some(node);
                        }
                        if pending.is_empty() {
                            break;
                        }
                        let children = g.rule(start).rhs.children(node).to_vec();
                        let mut buckets: Vec<(NodeId, Vec<(u128, usize)>)> = Vec::new();
                        let mut k = 0;
                        let mut offset: u128 = 0;
                        for &c in &children {
                            let s = self.sizes[&c];
                            let mut bucket = Vec::new();
                            while k < pending.len() && pending[k].0 - 1 < offset + s {
                                bucket.push((pending[k].0 - 1 - offset, pending[k].1));
                                k += 1;
                            }
                            offset += s;
                            if !bucket.is_empty() {
                                buckets.push((c, bucket));
                            }
                        }
                        if k < pending.len() {
                            return Err(RepairError::TargetOutOfRange {
                                index: targets[pending[k].1],
                                size: self.total,
                            });
                        }
                        match self.schedule(&mut stack, buckets) {
                            Some((n, p)) => {
                                node = n;
                                pending = p;
                            }
                            None => break,
                        }
                    }
                    NodeKind::Nt(callee) => {
                        // Classify each target: produced by the callee's own
                        // content (some segment) or by an argument subtree.
                        let segs = &self.segments[&callee];
                        let args = g.rule(start).rhs.children(node).to_vec();
                        let mut any_in_callee = false;
                        let mut buckets: Vec<(NodeId, Vec<(u128, usize)>)> = Vec::new();
                        let mut k = 0;
                        let mut offset: u128 = 0;
                        for (j, &seg) in segs.iter().enumerate() {
                            while k < pending.len() && pending[k].0 < offset + seg {
                                any_in_callee = true;
                                k += 1;
                            }
                            offset += seg;
                            if j < args.len() {
                                let s = self.sizes[&args[j]];
                                let mut bucket = Vec::new();
                                while k < pending.len() && pending[k].0 < offset + s {
                                    bucket.push((pending[k].0 - offset, pending[k].1));
                                    k += 1;
                                }
                                offset += s;
                                if !bucket.is_empty() {
                                    buckets.push((args[j], bucket));
                                }
                            }
                        }
                        if k < pending.len() {
                            return Err(RepairError::TargetOutOfRange {
                                index: targets[pending[k].1],
                                size: self.total,
                            });
                        }
                        if any_in_callee {
                            // Inline once for the whole batch and re-classify
                            // every pending target inside the copy.
                            let new_root = {
                                let callee_rhs = g.rule(callee).rhs.clone();
                                g.rule_mut(start).rhs.inline_at(node, &callee_rhs)
                            };
                            self.stats.inlinings += 1;
                            self.fill_sizes(g, new_root);
                            node = new_root;
                        } else {
                            match self.schedule(&mut stack, buckets) {
                                Some((n, p)) => {
                                    node = n;
                                    pending = p;
                                }
                                None => break,
                            }
                        }
                    }
                    NodeKind::Param(_) => {
                        unreachable!("the start rule has rank 0 and contains no parameters")
                    }
                }
            }
        }
        Ok(resolved
            .into_iter()
            .map(|n| n.expect("every validated target resolves to a node"))
            .collect())
    }

    /// Continues with the leftmost child bucket and stacks the rest (pushed
    /// right-to-left so the walk stays preorder).
    fn schedule(
        &self,
        stack: &mut Vec<(NodeId, Vec<(u128, usize)>)>,
        buckets: Vec<(NodeId, Vec<(u128, usize)>)>,
    ) -> Option<(NodeId, Vec<(u128, usize)>)> {
        let mut iter = buckets.into_iter();
        let first = iter.next()?;
        let rest: Vec<_> = iter.collect();
        for item in rest.into_iter().rev() {
            stack.push(item);
        }
        Some(first)
    }

    /// Computes subtree sizes for the nodes freshly created by an inlining.
    /// Nodes already present in the table (the grafted argument subtrees and
    /// everything outside the copy) are reused, not descended into — arena ids
    /// are never recycled, so present entries are always current.
    fn fill_sizes(&mut self, g: &Grammar, root: NodeId) {
        let rhs = &g.rule(g.start()).rhs;
        let mut stack = vec![(root, false)];
        while let Some((n, children_done)) = stack.pop() {
            if self.sizes.contains_key(&n) {
                continue;
            }
            if children_done {
                let children_sum: u128 = rhs
                    .children(n)
                    .iter()
                    .map(|c| self.sizes[c])
                    .fold(0u128, |a, b| a.saturating_add(b));
                let size = match rhs.kind(n) {
                    NodeKind::Term(_) => children_sum.saturating_add(1),
                    NodeKind::Nt(b) => children_sum.saturating_add(self.own[&b]),
                    NodeKind::Param(_) => 0,
                };
                self.sizes.insert(n, size);
            } else {
                stack.push((n, true));
                for &c in rhs.children(n) {
                    if !self.sizes.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
            }
        }
    }
}

/// Makes every node of `targets` (0-based preorder indices of the derived
/// tree, duplicates allowed) explicit in the start rule with **one**
/// `own_sizes`/`segment_sizes` computation and one walk of the start rule.
/// Returns the node ids in the order of the input targets.
///
/// A singleton batch performs exactly the inlinings [`isolate`] would and
/// yields a byte-identical grammar (pinned by the batch-isolation property
/// suite).
pub fn isolate_many(g: &mut Grammar, targets: &[u128]) -> Result<(Vec<NodeId>, IsolationStats)> {
    let mut batch = IsolationBatch::new(g);
    let mut sorted: Vec<u128> = targets.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let nodes = batch.isolate_sorted(g, &sorted)?;
    let by_target: HashMap<u128, NodeId> = sorted.into_iter().zip(nodes).collect();
    Ok((
        targets.iter().map(|t| by_target[t]).collect(),
        batch.stats(),
    ))
}

/// Reads the terminal label at preorder index `target` of the derived tree.
///
/// This is a **read-only** lookup: it resolves through freshly built
/// [`crate::navigate::NavTables`] and a positional cursor jump
/// ([`crate::navigate::Cursor::node_at_preorder`]) instead of isolating the
/// path, so the grammar is never mutated by a read. Holders with a cached
/// table snapshot ([`crate::session::CompressedDom`],
/// [`crate::store::DomStore`]) answer the same lookup without the O(grammar)
/// table build this convenience wrapper pays.
pub fn label_at(g: &Grammar, target: u128) -> Result<String> {
    let mut cursor = crate::navigate::Cursor::new(g);
    if !cursor.node_at_preorder(target) {
        return Err(RepairError::TargetOutOfRange {
            index: target,
            size: derived_size(g),
        });
    }
    Ok(cursor.label().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::text::parse_grammar;

    #[test]
    fn isolation_preserves_the_derived_tree_and_bounds_growth() {
        let mut g = parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let size_before = g.edge_count();
        let (_, stats) = isolate(&mut g, 7).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), before);
        assert!(stats.inlinings >= 1);
        // Lemma 1: |iso(G, u)| <= 2 |G| (edge counts; allow the small additive
        // slack caused by counting per-rule edges).
        assert!(g.edge_count() <= 2 * size_before + 2);
    }

    #[test]
    fn labels_along_the_derived_tree_match_val() {
        let g0 = parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap();
        let val = sltgrammar::derive::val(&g0).unwrap();
        let expected: Vec<String> = val
            .preorder()
            .iter()
            .map(|&n| match val.kind(n) {
                NodeKind::Term(t) => g0.symbols.name(t).to_string(),
                _ => unreachable!(),
            })
            .collect();
        for (i, want) in expected.iter().enumerate() {
            let got = label_at(&g0, i as u128).unwrap();
            assert_eq!(&got, want, "label mismatch at preorder index {i}");
        }
    }

    #[test]
    fn exponential_grammar_positions_are_reachable() {
        // The paper's G_exp example: a chain of doubling rules deriving a^1024
        // (as a monadic tree with a null leaf).
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=9 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A10 -> a(y1)");
        let g0 = parse_grammar(&text).unwrap();
        assert_eq!(derived_size(&g0), 1025);
        // Rename position 333 (0-based 332): only a logarithmic number of rules
        // must be inlined.
        let mut g = g0.clone();
        let before = fingerprint(&g);
        let (node, stats) = isolate(&mut g, 332).unwrap();
        assert!(g.rule(g.start()).rhs.kind(node).is_term());
        assert_eq!(fingerprint(&g), before);
        assert!(stats.inlinings <= 11);
        assert!(g.edge_count() <= 2 * g0.edge_count() + 2);
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let mut g = parse_grammar("S -> a(#,#)").unwrap();
        assert!(matches!(
            isolate(&mut g, 3),
            Err(RepairError::TargetOutOfRange { .. })
        ));
        assert!(isolate(&mut g, 2).is_ok());
    }

    #[test]
    fn isolating_an_already_explicit_node_does_not_inline() {
        let mut g = parse_grammar("S -> f(a(#,#),#)").unwrap();
        let (_, stats) = isolate(&mut g, 1).unwrap();
        assert_eq!(stats.inlinings, 0);
    }

    fn shared_grammar() -> Grammar {
        parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap()
    }

    #[test]
    fn batched_isolation_resolves_every_target_like_single_isolation() {
        let g0 = shared_grammar();
        let total = derived_size(&g0);
        let targets: Vec<u128> = (0..total).collect();
        let mut g = g0.clone();
        let before = fingerprint(&g);
        let (nodes, _) = isolate_many(&mut g, &targets).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), before);
        // Every resolved node carries the label single isolation would find.
        for (i, &node) in nodes.iter().enumerate() {
            let got = match g.rule(g.start()).rhs.kind(node) {
                NodeKind::Term(t) => g.symbols.name(t).to_string(),
                other => panic!("expected terminal, got {other:?}"),
            };
            let want = label_at(&g0, i as u128).unwrap();
            assert_eq!(got, want, "label mismatch at preorder index {i}");
        }
        // Isolating everything at once at worst unfolds the document.
        assert!(g.edge_count() as u128 <= 2 * total);
    }

    #[test]
    fn batched_isolation_shares_path_prefixes() {
        // Two targets under the same deep chain: the batch must not inline the
        // chain twice.
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=9 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A10 -> a(y1)");
        let g0 = parse_grammar(&text).unwrap();
        let mut g = g0.clone();
        let (_, single) = isolate(&mut g, 332).unwrap();
        let mut g = g0.clone();
        let before = fingerprint(&g);
        let (nodes, batched) = isolate_many(&mut g, &[332, 333]).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), before);
        assert_ne!(nodes[0], nodes[1]);
        // Adjacent positions share almost the whole path: the batch pays at
        // most one extra inlining over the single-target isolation.
        assert!(
            batched.inlinings <= single.inlinings + 1,
            "batch inlined {} vs single {}",
            batched.inlinings,
            single.inlinings
        );
    }

    #[test]
    fn batched_isolation_handles_duplicates_and_empty_batches() {
        let mut g = shared_grammar();
        let (nodes, _) = isolate_many(&mut g, &[4, 4, 2]).unwrap();
        assert_eq!(nodes[0], nodes[1]);
        assert_ne!(nodes[0], nodes[2]);
        let (none, stats) = isolate_many(&mut g, &[]).unwrap();
        assert!(none.is_empty());
        assert_eq!(stats.inlinings, 0);
    }

    #[test]
    fn batched_isolation_rejects_out_of_range_targets_before_mutating() {
        let mut g = shared_grammar();
        let before = g.edge_count();
        assert!(matches!(
            isolate_many(&mut g, &[0, 10_000]),
            Err(RepairError::TargetOutOfRange { .. })
        ));
        assert_eq!(g.edge_count(), before, "failed batch must not touch the grammar");
    }
}
