//! Path isolation (paper Section III-A).
//!
//! To update a node `u` of the derived tree `val(G)` we first make `u` appear
//! as an explicit terminal node in the start rule: starting from the start
//! rule's root we navigate towards `u` using the precomputed segment sizes
//! `size(A, 0..k)` and inline exactly the nonterminal references on the path
//! that produce `u`. Lemma 1 of the paper bounds the growth caused by a single
//! isolation by a factor of two, because every rule is inlined at most once.

use std::collections::HashMap;

use sltgrammar::derive::{own_sizes, segment_sizes, subtree_derived_sizes};
use sltgrammar::fingerprint::derived_size;
use sltgrammar::{Grammar, NodeId, NodeKind, NtId};

use crate::error::{RepairError, Result};

/// Statistics of one path isolation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsolationStats {
    /// Number of rules inlined into the start rule.
    pub inlinings: usize,
}

/// Makes the node with 0-based preorder index `target` of the derived tree
/// `val(G)` explicit in the start rule and returns its node id there — the
/// paper's `iso(G, u)`.
pub fn isolate(g: &mut Grammar, target: u128) -> Result<(NodeId, IsolationStats)> {
    let total = derived_size(g);
    if target >= total {
        return Err(RepairError::TargetOutOfRange {
            index: target,
            size: total,
        });
    }
    let mut stats = IsolationStats::default();
    let own = own_sizes(g);
    let segments: HashMap<NtId, Vec<u128>> = segment_sizes(g);
    let start = g.start();

    let mut sizes = subtree_derived_sizes(&g.rule(start).rhs, &own);
    let mut node = g.rule(start).rhs.root();
    let mut remaining = target;

    loop {
        let kind = g.rule(start).rhs.kind(node);
        match kind {
            NodeKind::Term(_) => {
                if remaining == 0 {
                    return Ok((node, stats));
                }
                remaining -= 1;
                let children = g.rule(start).rhs.children(node).to_vec();
                let mut descended = false;
                for c in children {
                    let s = sizes[&c];
                    if remaining < s {
                        node = c;
                        descended = true;
                        break;
                    }
                    remaining -= s;
                }
                if !descended {
                    return Err(RepairError::TargetOutOfRange {
                        index: target,
                        size: total,
                    });
                }
            }
            NodeKind::Nt(callee) => {
                // Decide whether the target is produced by the callee itself or
                // by one of its argument subtrees; in the former case inline the
                // callee and continue inside the copy with the same offset.
                let segs = &segments[&callee];
                let args = g.rule(start).rhs.children(node).to_vec();
                let mut offset: u128 = 0;
                let mut decided: Option<NodeId> = None;
                let mut produced_by_callee = false;
                for (j, seg) in segs.iter().enumerate() {
                    if remaining < offset + seg {
                        produced_by_callee = true;
                        break;
                    }
                    offset += seg;
                    if j < args.len() {
                        let arg = args[j];
                        let s = sizes[&arg];
                        if remaining < offset + s {
                            decided = Some(arg);
                            break;
                        }
                        offset += s;
                    }
                }
                if produced_by_callee {
                    let new_root = {
                        let callee_rhs = g.rule(callee).rhs.clone();
                        g.rule_mut(start).rhs.inline_at(node, &callee_rhs)
                    };
                    stats.inlinings += 1;
                    // Sizes of the freshly inlined nodes are missing; recompute.
                    sizes = subtree_derived_sizes(&g.rule(start).rhs, &own);
                    node = new_root;
                } else if let Some(arg) = decided {
                    remaining -= offset;
                    node = arg;
                } else {
                    return Err(RepairError::TargetOutOfRange {
                        index: target,
                        size: total,
                    });
                }
            }
            NodeKind::Param(_) => {
                unreachable!("the start rule has rank 0 and contains no parameters")
            }
        }
    }
}

/// Reads the terminal label at preorder index `target` of the derived tree,
/// isolating the path to it as a side effect.
pub fn label_at(g: &mut Grammar, target: u128) -> Result<String> {
    let (node, _) = isolate(g, target)?;
    let kind = g.rule(g.start()).rhs.kind(node);
    match kind {
        NodeKind::Term(t) => Ok(g.symbols.name(t).to_string()),
        _ => unreachable!("isolate always returns a terminal node"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::text::parse_grammar;

    #[test]
    fn isolation_preserves_the_derived_tree_and_bounds_growth() {
        let mut g = parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let size_before = g.edge_count();
        let (_, stats) = isolate(&mut g, 7).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), before);
        assert!(stats.inlinings >= 1);
        // Lemma 1: |iso(G, u)| <= 2 |G| (edge counts; allow the small additive
        // slack caused by counting per-rule edges).
        assert!(g.edge_count() <= 2 * size_before + 2);
    }

    #[test]
    fn labels_along_the_derived_tree_match_val() {
        let g0 = parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap();
        let val = sltgrammar::derive::val(&g0).unwrap();
        let expected: Vec<String> = val
            .preorder()
            .iter()
            .map(|&n| match val.kind(n) {
                NodeKind::Term(t) => g0.symbols.name(t).to_string(),
                _ => unreachable!(),
            })
            .collect();
        for (i, want) in expected.iter().enumerate() {
            let mut g = g0.clone();
            let got = label_at(&mut g, i as u128).unwrap();
            assert_eq!(&got, want, "label mismatch at preorder index {i}");
        }
    }

    #[test]
    fn exponential_grammar_positions_are_reachable() {
        // The paper's G_exp example: a chain of doubling rules deriving a^1024
        // (as a monadic tree with a null leaf).
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=9 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A10 -> a(y1)");
        let g0 = parse_grammar(&text).unwrap();
        assert_eq!(derived_size(&g0), 1025);
        // Rename position 333 (0-based 332): only a logarithmic number of rules
        // must be inlined.
        let mut g = g0.clone();
        let before = fingerprint(&g);
        let (node, stats) = isolate(&mut g, 332).unwrap();
        assert!(g.rule(g.start()).rhs.kind(node).is_term());
        assert_eq!(fingerprint(&g), before);
        assert!(stats.inlinings <= 11);
        assert!(g.edge_count() <= 2 * g0.edge_count() + 2);
    }

    #[test]
    fn out_of_range_targets_are_rejected() {
        let mut g = parse_grammar("S -> a(#,#)").unwrap();
        assert!(matches!(
            isolate(&mut g, 3),
            Err(RepairError::TargetOutOfRange { .. })
        ));
        assert!(isolate(&mut g, 2).is_ok());
    }

    #[test]
    fn isolating_an_already_explicit_node_does_not_inline() {
        let mut g = parse_grammar("S -> f(a(#,#),#)").unwrap();
        let (_, stats) = isolate(&mut g, 1).unwrap();
        assert_eq!(stats.inlinings, 0);
    }
}
