//! # grammar-repair — incremental updates on compressed XML
//!
//! A from-scratch Rust implementation of the ICDE 2016 paper *Incremental
//! Updates on Compressed XML* (Böttcher, Hartel, Jacobs, Maneth): RePair
//! compression executed **directly on an SLCF tree grammar** (GrammarRePair)
//! combined with update operations that never decompress the document.
//!
//! The crate provides these layers:
//!
//! * [`repair`] — the [`repair::GrammarRePair`] recompressor (Algorithm 1 with
//!   the optimized replacement of Algorithms 6–8), built on
//!   [`occurrences`] (usage-weighted digram occurrence generators,
//!   TREEPARENT / TREECHILD / RETRIEVEOCCS), [`occ_index`] (the incrementally
//!   maintained occurrence table + frequency queue that keeps rounds from
//!   paying O(grammar)) and [`replace`] (localization by minimal inlining,
//!   greedy local replacement, fragment export).
//! * [`isolate`] / [`update`] — path isolation (single-target and batched
//!   over shared path prefixes) and the three atomic update operations
//!   (rename, insert-before, delete-subtree) on the grammar, plus
//!   [`update::apply_batch`] for whole operation sequences.
//! * [`udc`] — the update–decompress–compress baseline the paper compares against.
//! * [`session`] / [`store`] — the application-facing handles:
//!   [`session::CompressedDom`], a mutable always-compressed single-document
//!   handle with a fixed-interval recompression policy, and
//!   [`store::DomStore`], the multi-document session it is a thin wrapper
//!   over — many documents behind one shared [`sltgrammar::SymbolTable`]
//!   (similar documents share one resident alphabet) and a store-level
//!   scheduler that recompresses by *update debt* (edge growth since the
//!   last recompression), draining the worst offenders on a budget.
//! * [`wal`] / [`durable`] / [`queue`] — crash safety and ingestion: a
//!   length-prefixed, CRC-framed write-ahead op log with leader-based group
//!   commit; [`durable::DurableStore`], a [`store::DomStore`] wrapper that
//!   logs every mutation before applying it, writes fuzzy checkpoints in a
//!   paged, offset-indexed format whose documents are decoded lazily on
//!   first touch, and recovers the exact pre-crash state (checkpoint +
//!   log-tail replay, torn final records truncated, interior corruption
//!   rejected loudly); and [`queue::IngestQueue`], which coalesces
//!   submitted per-document batches into single group-committed records.
//! * [`navigate`] / [`query`] — the read path: cursor navigation, streaming
//!   preorder traversal, label statistics and child/descendant path queries,
//!   all evaluated directly on the grammar without decompression and resolved
//!   through shared per-snapshot [`navigate::NavTables`] (invalidated via the
//!   [`sltgrammar::RhsTree::version`] counters, cached by
//!   [`session::CompressedDom`]).
//!
//! ## Example
//!
//! ```
//! use grammar_repair::session::CompressedDom;
//! use xmltree::parse::parse_xml;
//! use xmltree::updates::UpdateOp;
//!
//! let xml = parse_xml(
//!     "<log><e><t/><m/></e><e><t/><m/></e><e><t/><m/></e><e><t/><m/></e></log>"
//! ).unwrap();
//! let mut dom = CompressedDom::from_xml(&xml, 100);
//! // The grammar represents the full binary tree (2·13 + 1 nodes) of the document.
//! assert_eq!(dom.derived_size(), 27);
//!
//! // Rename the first <e> element (preorder index 1 of the binary tree)
//! // without decompressing the document.
//! dom.apply(&UpdateOp::Rename { target: 1, label: "entry".into() }).unwrap();
//! assert_eq!(dom.label_at(1).unwrap(), "entry");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod durable;
pub mod error;
pub mod isolate;
pub mod navigate;
pub mod occ_index;
pub mod occurrences;
pub mod query;
pub mod queue;
pub mod repair;
pub mod replace;
pub mod server;
pub mod session;
pub mod store;
pub mod sync;
pub mod udc;
pub mod update;
pub mod wal;

pub use client::{Client, ClientConfig, Endpoint};
pub use durable::{CheckpointReport, DurableStore, RecoveryReport};
pub use error::{RepairError, Result};
pub use navigate::{Cursor, NavTables, PreorderLabels};
pub use query::{PathQuery, QueryMatches};
pub use queue::{
    BackpressurePolicy, DrainPolicy, IngestQueue, QueueConfig, QueueError, QueueStats, Ticket,
};
pub use server::{Server, ServerConfig, ServerStats};
pub use repair::{GrammarRePair, GrammarRePairConfig, RepairStats};
pub use session::CompressedDom;
pub use store::{DocId, DomStore, MaintenanceReport, SchedulerConfig, Snapshot};
pub use udc::{update_decompress_compress, UdcStats};
