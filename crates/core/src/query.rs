//! Path queries over grammar-compressed XML (child / descendant axes).
//!
//! The paper lists XPath evaluation over SLCF grammars among the operations
//! that make grammar compression attractive for in-memory XML processing
//! (Lohrey & Maneth, *The complexity of tree automata and XPath on
//! grammar-compressed trees*). This module implements the core of that
//! capability for absolute path expressions built from the child (`/`) and
//! descendant-or-self (`//`) axes with element name tests and `*` wildcards,
//! e.g. `/site/regions//item/name` or `//book/*`.
//!
//! # Evaluation modes
//!
//! * [`PathQuery::count`] — a memoized dynamic program **over the grammar**:
//!   each rule is evaluated once per distinct *context* (the set of query
//!   states reaching its root), so the running time depends on the grammar
//!   size, not on the document size. This works even when the derived
//!   document is exponentially larger than the grammar.
//! * [`PathQuery::evaluate`] — **output-sensitive materialization**: the same
//!   context DP produces a per-`(rule, context)` match summary (count plus
//!   the contexts flowing into each parameter hole), and document-order
//!   positions are then materialized by expanding **only** the regions that
//!   can still match. A rule instance whose summary says "no matches inside
//!   the body" is skipped in O(rank) using the precomputed element counts and
//!   parameter hole layout of [`crate::navigate::NavTables`]; a region whose
//!   context is empty (no live query states) is skipped the same way. Total
//!   cost is O(grammar × contexts + output + skipped-region plumbing) instead
//!   of O(document).
//! * [`PathQuery::evaluate_streaming`] — the previous cursor-based streaming
//!   evaluation, linear in the document. Kept verbatim as the **oracle** for
//!   the memoized path (`tests/navigation_differential.rs` pins them
//!   byte-identical), and as the honest baseline in the `query` bench group.
//!
//! Name tests are compiled to [`TermId`]s against the grammar's symbol table
//! once per evaluation (a label absent from the document can never match),
//! so the hot transition function compares integers, never strings; the
//! context memo is keyed by `(NtId, context)` through
//! [`sltgrammar::fxhash`].

use std::collections::HashMap;

use sltgrammar::{FxHashMap, Grammar, NodeId, NodeKind, NtId, SymbolTable, TermId};

use crate::error::{RepairError, Result};
use crate::navigate::{Cursor, NavKind, NavTables};

/// Axis of one query step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/label` — the element must be a child of the previous match.
    Child,
    /// `//label` — the element must be a descendant of the previous match.
    Descendant,
}

/// One step of a path query: an axis plus a name test (`None` = `*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// Element name to match; `None` matches any element.
    pub label: Option<String>,
}

impl Step {
    fn matches(&self, label: &str) -> bool {
        match &self.label {
            Some(want) => want == label,
            None => true,
        }
    }
}

/// A parsed absolute path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    steps: Vec<Step>,
}

/// Result of materializing a query: the matching elements in document order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryMatches {
    /// 0-based document-order indices (among *elements*) of every match.
    pub positions: Vec<u64>,
    /// Labels of the matching elements, parallel to `positions`.
    pub labels: Vec<String>,
}

impl QueryMatches {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Maximum number of steps: contexts are bitmasks in a `u32`.
const MAX_STEPS: usize = 31;

/// Name test of one step compiled against a symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LabelTest {
    /// `*` — matches any element.
    Any,
    /// Matches exactly this terminal.
    Is(TermId),
    /// The queried name is not in the document's alphabet; never matches.
    Never,
}

/// Query steps with name tests resolved to [`TermId`]s — integer compares on
/// the hot transition path.
struct Compiled {
    steps: Vec<(Axis, LabelTest)>,
}

impl Compiled {
    fn new(query: &PathQuery, symbols: &SymbolTable) -> Self {
        let steps = query
            .steps
            .iter()
            .map(|s| {
                let test = match &s.label {
                    None => LabelTest::Any,
                    Some(name) => match symbols.get(name) {
                        Some(t) => LabelTest::Is(t),
                        None => LabelTest::Never,
                    },
                };
                (s.axis, test)
            })
            .collect();
        Compiled { steps }
    }

    /// State transition over terminal ids: given the states reaching an
    /// element (bitmask over step indices) and the element's terminal,
    /// returns `(states for its children, whether the element is a match)`.
    #[inline]
    fn transition(&self, ctx: u32, term: TermId) -> (u32, bool) {
        let mut next = 0u32;
        let mut matched = false;
        for (i, &(axis, test)) in self.steps.iter().enumerate() {
            if ctx & (1 << i) == 0 {
                continue;
            }
            if axis == Axis::Descendant {
                // `//` may skip this element entirely.
                next |= 1 << i;
            }
            let hit = match test {
                LabelTest::Any => true,
                LabelTest::Is(t) => t == term,
                LabelTest::Never => false,
            };
            if hit {
                if i + 1 == self.steps.len() {
                    matched = true;
                } else {
                    next |= 1 << (i + 1);
                }
            }
        }
        (next, matched)
    }
}

/// Memoized result of evaluating one rule under one incoming context.
#[derive(Debug, Clone)]
struct RuleOutcome {
    matches: u128,
    /// Context flowing into each parameter position.
    param_contexts: Vec<u32>,
}

/// Evaluates one rule under an incoming context (memoized).
///
/// `ctx_root` is the state set reaching the root node of `val(A)`. In the
/// first-child/next-sibling encoding an element's *first* binary child
/// receives the element's own transition result, while its *second* binary
/// child (the next sibling) shares the element's incoming context — so one
/// context per node is enough and it flows strictly downwards. Returns the
/// match count inside `val(A)` (excluding parameter subtrees) and the
/// context flowing out to each parameter position.
fn eval_rule(
    compiled: &Compiled,
    g: &Grammar,
    nt: NtId,
    ctx_root: u32,
    memo: &mut FxHashMap<(NtId, u32), RuleOutcome>,
) -> RuleOutcome {
    if let Some(hit) = memo.get(&(nt, ctx_root)) {
        return hit.clone();
    }
    let rule = g.rule(nt);
    let rhs = &rule.rhs;
    let mut outcome = RuleOutcome {
        matches: 0,
        param_contexts: vec![0u32; rule.rank],
    };
    // Work stack of (node, element context).
    let mut stack: Vec<(NodeId, u32)> = vec![(rhs.root(), ctx_root)];
    while let Some((node, ctx)) = stack.pop() {
        match rhs.kind(node) {
            NodeKind::Term(t) => {
                if g.symbols.is_null(t) {
                    continue;
                }
                let (child_ctx, matched) = compiled.transition(ctx, t);
                if matched {
                    outcome.matches += 1;
                }
                let children = rhs.children(node);
                debug_assert_eq!(children.len(), 2, "path queries require binary XML grammars");
                // First child: the element's first document child.
                stack.push((children[0], child_ctx));
                // Second child: the element's next sibling, which shares the
                // element's own incoming (parent) context.
                stack.push((children[1], ctx));
            }
            NodeKind::Nt(callee) => {
                let sub = eval_rule(compiled, g, callee, ctx, memo);
                outcome.matches += sub.matches;
                let args = rhs.children(node);
                for (j, &arg) in args.iter().enumerate() {
                    stack.push((arg, sub.param_contexts[j]));
                }
            }
            NodeKind::Param(j) => {
                outcome.param_contexts[j as usize] = ctx;
            }
        }
    }
    memo.insert((nt, ctx_root), outcome.clone());
    outcome
}

/// One instantiated rule entry of the materializer: which frame supplies the
/// rule's arguments, and where its call site sits in that frame's rule.
#[derive(Debug, Clone, Copy)]
struct FrameInfo {
    nt: NtId,
    ctx_frame: u32,
    call_pos: u32,
}

/// Work item of the materializer.
#[derive(Debug, Clone, Copy)]
enum Job {
    /// Expand the subtree at `pos` of frame `fi`'s rule under context `ctx`.
    Visit { fi: u32, pos: u32, ctx: u32 },
    /// Advance the element position counter without expanding anything.
    Advance(u128),
}

impl PathQuery {
    /// Parses an absolute path expression such as `/site//item/name`,
    /// `//keyword` or `/db/*/value`.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim();
        if !text.starts_with('/') {
            return Err(RepairError::InvalidQuery {
                detail: "query must be absolute (start with '/' or '//')".to_string(),
            });
        }
        let mut steps = Vec::new();
        let mut rest = text;
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else {
                return Err(RepairError::InvalidQuery {
                    detail: format!("expected '/' or '//' before `{rest}`"),
                });
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let name = &rest[..end];
            rest = &rest[end..];
            if name.is_empty() {
                return Err(RepairError::InvalidQuery {
                    detail: "empty step (trailing slash or '///')".to_string(),
                });
            }
            if !name
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '*')
            {
                return Err(RepairError::InvalidQuery {
                    detail: format!("invalid characters in step `{name}`"),
                });
            }
            let label = if name == "*" { None } else { Some(name.to_string()) };
            steps.push(Step { axis, label });
        }
        if steps.is_empty() {
            return Err(RepairError::InvalidQuery {
                detail: "query has no steps".to_string(),
            });
        }
        if steps.len() > MAX_STEPS {
            return Err(RepairError::InvalidQuery {
                detail: format!("queries are limited to {MAX_STEPS} steps"),
            });
        }
        Ok(PathQuery { steps })
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// State transition over label strings — used by the streaming oracle and
    /// the uncompressed reference evaluation.
    fn transition(&self, ctx: u32, label: &str) -> (u32, bool) {
        let mut next = 0u32;
        let mut matched = false;
        for i in 0..self.steps.len() {
            if ctx & (1 << i) == 0 {
                continue;
            }
            let step = &self.steps[i];
            if step.axis == Axis::Descendant {
                // `//` may skip this element entirely.
                next |= 1 << i;
            }
            if step.matches(label) {
                if i + 1 == self.steps.len() {
                    matched = true;
                } else {
                    next |= 1 << (i + 1);
                }
            }
        }
        (next, matched)
    }

    /// Initial state set for the document root element.
    fn initial_context(&self) -> u32 {
        1
    }

    /// Counts the matching elements by a memoized dynamic program over the
    /// grammar. Works on arbitrarily (even exponentially) compressed binary
    /// XML grammars without touching the derived tree.
    pub fn count(&self, g: &Grammar) -> u128 {
        let compiled = Compiled::new(self, &g.symbols);
        let mut memo: FxHashMap<(NtId, u32), RuleOutcome> = FxHashMap::default();
        let outcome = eval_rule(&compiled, g, g.start(), self.initial_context(), &mut memo);
        outcome.matches
    }

    /// Materializes the matches in document order through the memoized
    /// context DP, expanding only regions that can still produce output (see
    /// the module docs). Builds private [`NavTables`]; use
    /// [`PathQuery::evaluate_with_tables`] to share a cached snapshot.
    ///
    /// Positions saturate at `u64::MAX` on documents with more than `2^64`
    /// elements (counting stays exact in [`PathQuery::count`]).
    pub fn evaluate(&self, g: &Grammar) -> QueryMatches {
        let tables = NavTables::build(g);
        self.evaluate_with_tables(g, &tables)
    }

    /// [`PathQuery::evaluate`] over prebuilt navigation tables (must be
    /// current for `g`, debug-asserted).
    pub fn evaluate_with_tables(&self, g: &Grammar, tables: &NavTables) -> QueryMatches {
        debug_assert!(tables.is_current(g), "NavTables are stale for this grammar snapshot");
        let compiled = Compiled::new(self, &g.symbols);
        let mut memo: FxHashMap<(NtId, u32), RuleOutcome> = FxHashMap::default();
        let mut out = QueryMatches::default();

        // Frame arena: entries are appended when a rule instance is expanded
        // and referenced by index from jobs; ancestors of any pending job are
        // always still reachable.
        let mut frames: Vec<FrameInfo> = vec![FrameInfo {
            nt: tables.start(),
            ctx_frame: 0,
            call_pos: 0,
        }];
        let mut jobs: Vec<Job> = vec![Job::Visit {
            fi: 0,
            pos: 0,
            ctx: self.initial_context(),
        }];
        // Document-order element position; u128 so the skip arithmetic of
        // pathological (deep-doubling) grammars saturates predictably.
        let mut position: u128 = 0;

        while let Some(job) = jobs.pop() {
            let (fi, pos, ctx) = match job {
                Job::Advance(d) => {
                    position = position.saturating_add(d);
                    continue;
                }
                Job::Visit { fi, pos, ctx } => (fi, pos, ctx),
            };
            let frame = frames[fi as usize];
            let nav = tables.rule(frame.nt);
            if ctx == 0 {
                // No live query states: nothing below can match. Skip the
                // whole region, forwarding only the parameter holes (their
                // contents also carry context 0 and are skipped in turn).
                match nav.kinds[pos as usize] {
                    NavKind::Param(j) => {
                        let caller = frames[frame.ctx_frame as usize];
                        let apos = tables.rule(caller.nt).child_pos(frame.call_pos, j);
                        jobs.push(Job::Visit {
                            fi: frame.ctx_frame,
                            pos: apos,
                            ctx: 0,
                        });
                    }
                    _ => {
                        position = position.saturating_add(nav.elems_at[pos as usize]);
                        let end = pos + nav.size[pos as usize];
                        for &(ppos, _) in &nav.params_by_pos {
                            if ppos > pos && ppos < end {
                                jobs.push(Job::Visit {
                                    fi,
                                    pos: ppos,
                                    ctx: 0,
                                });
                            }
                        }
                    }
                }
                continue;
            }
            match nav.kinds[pos as usize] {
                NavKind::Term { null: true, .. } => {}
                NavKind::Term { term, rank, .. } => {
                    debug_assert_eq!(rank, 2, "path queries require binary XML grammars");
                    let (child_ctx, matched) = compiled.transition(ctx, term);
                    if matched {
                        out.positions.push(position.min(u64::MAX as u128) as u64);
                        out.labels.push(g.symbols.name(term).to_string());
                    }
                    position = position.saturating_add(1);
                    let c0 = pos + 1;
                    let c1 = c0 + nav.size[c0 as usize];
                    // Next sibling keeps the parent context; pushed first so
                    // the first child is expanded first (document order).
                    jobs.push(Job::Visit { fi, pos: c1, ctx });
                    jobs.push(Job::Visit {
                        fi,
                        pos: c0,
                        ctx: child_ctx,
                    });
                }
                NavKind::Nt(callee) => {
                    let sub = eval_rule(&compiled, g, callee, ctx, &mut memo);
                    if sub.matches == 0 {
                        // The body cannot match: skip it in O(rank), visiting
                        // only the argument subtrees at their document-order
                        // offsets inside val(callee).
                        let cl = tables.rule(callee);
                        let mut seq: Vec<Job> = Vec::with_capacity(2 * cl.holes.len() + 1);
                        let mut prev = 0u128;
                        for h in &cl.holes {
                            seq.push(Job::Advance(h.elems_before.saturating_sub(prev)));
                            prev = h.elems_before;
                            seq.push(Job::Visit {
                                fi,
                                pos: nav.child_pos(pos, h.param),
                                ctx: sub.param_contexts[h.param as usize],
                            });
                        }
                        seq.push(Job::Advance(cl.own_elems.saturating_sub(prev)));
                        for s in seq.into_iter().rev() {
                            jobs.push(s);
                        }
                    } else {
                        let nfi = frames.len() as u32;
                        frames.push(FrameInfo {
                            nt: callee,
                            ctx_frame: fi,
                            call_pos: pos,
                        });
                        jobs.push(Job::Visit {
                            fi: nfi,
                            pos: 0,
                            ctx,
                        });
                    }
                }
                NavKind::Param(j) => {
                    let caller = frames[frame.ctx_frame as usize];
                    let apos = tables.rule(caller.nt).child_pos(frame.call_pos, j);
                    jobs.push(Job::Visit {
                        fi: frame.ctx_frame,
                        pos: apos,
                        ctx,
                    });
                }
            }
        }
        out
    }

    /// Materializes the matches by streaming over the document view of a
    /// [`Cursor`] — linear in the document size. This is the previous
    /// `evaluate` implementation, kept as the oracle for the memoized
    /// materializer and as the honest streaming baseline in the benches.
    pub fn evaluate_streaming(&self, g: &Grammar) -> QueryMatches {
        let mut out = QueryMatches::default();
        let mut cursor = Cursor::new(g);
        // DFS over elements carrying the context stack.
        let mut ctx_stack: Vec<u32> = vec![self.initial_context()];
        let mut position: u64 = 0;
        'outer: loop {
            let ctx = *ctx_stack.last().expect("context stack is never empty");
            let (child_ctx, matched) = self.transition(ctx, cursor.label());
            if matched {
                out.positions.push(position);
                out.labels.push(cursor.label().to_string());
            }
            position += 1;
            if cursor.doc_first_child() {
                ctx_stack.push(child_ctx);
                continue;
            }
            loop {
                if cursor.doc_next_sibling() {
                    break;
                }
                ctx_stack.pop();
                if !cursor.doc_parent() {
                    break 'outer;
                }
            }
        }
        out
    }

    /// Reference evaluation against an uncompressed [`xmltree::XmlTree`]; used
    /// by tests and the benchmark harness as the oracle.
    pub fn evaluate_uncompressed(&self, xml: &xmltree::XmlTree) -> QueryMatches {
        let mut out = QueryMatches::default();
        let order = xml.preorder();
        let index_of: HashMap<xmltree::XmlNodeId, u64> = order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u64))
            .collect();
        // DFS carrying contexts.
        let mut stack = vec![(xml.root(), self.initial_context())];
        let mut hits = Vec::new();
        while let Some((node, ctx)) = stack.pop() {
            let (child_ctx, matched) = self.transition(ctx, xml.label(node));
            if matched {
                hits.push((index_of[&node], xml.label(node).to_string()));
            }
            for &c in xml.children(node) {
                stack.push((c, child_ctx));
            }
        }
        hits.sort();
        for (p, l) in hits {
            out.positions.push(p);
            out.labels.push(l);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treerepair::TreeRePair;
    use xmltree::parse::parse_xml;

    const DOC: &str = "<site><regions><region><item><name/><price/></item>\
                       <item><name/></item></region><region><item><name/><price/></item>\
                       </region></regions><people><person><name/><address/></person>\
                       <person><name/></person></people></site>";

    fn compressed(doc: &str) -> (Grammar, xmltree::XmlTree) {
        let xml = parse_xml(doc).unwrap();
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        (g, xml)
    }

    #[test]
    fn parser_accepts_and_rejects() {
        let q = PathQuery::parse("/site/regions//item/name").unwrap();
        assert_eq!(q.steps().len(), 4);
        assert_eq!(q.steps()[0].axis, Axis::Child);
        assert_eq!(q.steps()[2].axis, Axis::Descendant);
        assert_eq!(q.steps()[2].label.as_deref(), Some("item"));

        let q = PathQuery::parse("//name").unwrap();
        assert_eq!(q.steps().len(), 1);
        assert_eq!(q.steps()[0].axis, Axis::Descendant);

        let q = PathQuery::parse("/db/*/value").unwrap();
        assert!(q.steps()[1].label.is_none());

        assert!(PathQuery::parse("relative/path").is_err());
        assert!(PathQuery::parse("/").is_err());
        assert!(PathQuery::parse("/a//").is_err());
        assert!(PathQuery::parse("/a/b[1]").is_err());
        let long = format!("/{}", vec!["x"; 40].join("/"));
        assert!(PathQuery::parse(&long).is_err());
    }

    #[test]
    fn counts_match_all_evaluation_modes_and_the_oracle() {
        let (g, xml) = compressed(DOC);
        for query in [
            "/site",
            "/site/regions/region/item/name",
            "//name",
            "//item/name",
            "/site//name",
            "/site/*",
            "//*",
            "//region//name",
            "/site/people/person/address",
            "//absent",
            "/absent//name",
        ] {
            let q = PathQuery::parse(query).unwrap();
            let reference = q.evaluate_uncompressed(&xml);
            let streamed = q.evaluate_streaming(&g);
            let memoized = q.evaluate(&g);
            assert_eq!(streamed, reference, "streaming mismatch for {query}");
            assert_eq!(memoized, reference, "memoized mismatch for {query}");
            assert_eq!(
                q.count(&g),
                reference.len() as u128,
                "grammar count mismatch for {query}"
            );
        }
    }

    #[test]
    fn specific_counts_are_correct() {
        let (g, _) = compressed(DOC);
        assert_eq!(PathQuery::parse("//name").unwrap().count(&g), 5);
        assert_eq!(PathQuery::parse("//item/name").unwrap().count(&g), 3);
        assert_eq!(PathQuery::parse("//person/name").unwrap().count(&g), 2);
        assert_eq!(PathQuery::parse("/site/regions//price").unwrap().count(&g), 2);
        assert_eq!(PathQuery::parse("/name").unwrap().count(&g), 0);
        assert_eq!(PathQuery::parse("//*").unwrap().count(&g), 18);
    }

    #[test]
    fn evaluate_returns_document_order_positions() {
        let (g, xml) = compressed(DOC);
        let q = PathQuery::parse("//item").unwrap();
        let matches = q.evaluate(&g);
        assert_eq!(matches.len(), 3);
        assert!(!matches.is_empty());
        // Positions are strictly increasing and all labelled `item`.
        assert!(matches.positions.windows(2).all(|w| w[0] < w[1]));
        assert!(matches.labels.iter().all(|l| l == "item"));
        // Cross-check against the original document order.
        let order = xml.preorder();
        for &p in &matches.positions {
            assert_eq!(xml.label(order[p as usize]), "item");
        }
    }

    #[test]
    fn counting_works_on_exponentially_compressed_documents() {
        // A doubling chain deriving 2^16 <item><name/></item> records under a root:
        // the derived document has ~196k elements; counting must not materialize it.
        let mut text = String::from("S -> root(L1(#),#)\n");
        text.push_str("L1 -> C1(C1(y1))\n");
        for i in 1..=15 {
            text.push_str(&format!("C{i} -> C{}(C{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("C16 -> item(name(#,#), y1)\n");
        let g = sltgrammar::text::parse_grammar(&text).unwrap();
        g.validate().unwrap();
        let items = PathQuery::parse("/root/item").unwrap().count(&g);
        assert_eq!(items, 1 << 16);
        let names = PathQuery::parse("//name").unwrap().count(&g);
        assert_eq!(names, 1 << 16);
        let nested = PathQuery::parse("/root/item/name").unwrap().count(&g);
        assert_eq!(nested, 1 << 16);
        let miss = PathQuery::parse("/root/name").unwrap().count(&g);
        assert_eq!(miss, 0);
    }

    #[test]
    fn memoized_evaluate_materializes_exponential_documents() {
        // Same doubling chain: evaluation must materialize all 2^16 item
        // positions without walking the null leaves or re-deriving the
        // document, and a miss query must return instantly and empty.
        let mut text = String::from("S -> root(L1(#),#)\n");
        text.push_str("L1 -> C1(C1(y1))\n");
        for i in 1..=15 {
            text.push_str(&format!("C{i} -> C{}(C{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("C16 -> item(name(#,#), y1)\n");
        let g = sltgrammar::text::parse_grammar(&text).unwrap();
        let items = PathQuery::parse("/root/item").unwrap().evaluate(&g);
        assert_eq!(items.len(), 1 << 16);
        // Document order: root at 0, then item/name pairs.
        for (k, &p) in items.positions.iter().enumerate() {
            assert_eq!(p, 1 + 2 * k as u64);
        }
        let names = PathQuery::parse("/root/item/name").unwrap().evaluate(&g);
        assert_eq!(names.len(), 1 << 16);
        for (k, &p) in names.positions.iter().enumerate() {
            assert_eq!(p, 2 + 2 * k as u64);
        }
        let miss = PathQuery::parse("/root/absent//x").unwrap().evaluate(&g);
        assert!(miss.is_empty());
    }

    #[test]
    fn queries_survive_recompression_and_updates() {
        use crate::update::rename;
        let (mut g, _) = compressed(DOC);
        let before = PathQuery::parse("//name").unwrap().count(&g);
        // Rename the first element (document root stays put at index 0 of the
        // binary preorder; rename element at binary preorder index 1).
        rename(&mut g, 1, "zones").unwrap();
        let q = PathQuery::parse("/site/zones//name").unwrap();
        assert_eq!(q.count(&g), 3);
        assert_eq!(q.evaluate(&g).len(), 3);
        crate::repair::GrammarRePair::default().recompress(&mut g);
        assert_eq!(q.count(&g), 3);
        assert_eq!(q.evaluate(&g).len(), 3);
        assert_eq!(PathQuery::parse("//name").unwrap().count(&g), before);
    }
}
