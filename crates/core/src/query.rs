//! Path queries over grammar-compressed XML (child / descendant axes).
//!
//! The paper lists XPath evaluation over SLCF grammars among the operations
//! that make grammar compression attractive for in-memory XML processing
//! (Lohrey & Maneth, *The complexity of tree automata and XPath on
//! grammar-compressed trees*). This module implements the core of that
//! capability for absolute path expressions built from the child (`/`) and
//! descendant-or-self (`//`) axes with element name tests and `*` wildcards,
//! e.g. `/site/regions//item/name` or `//book/*`.
//!
//! Two evaluation modes are provided:
//!
//! * [`PathQuery::count`] — a memoized dynamic program **over the grammar**:
//!   each rule is evaluated once per distinct *context* (the set of query
//!   states reaching its root), so the running time depends on the grammar
//!   size, not on the document size. This works even when the derived
//!   document is exponentially larger than the grammar.
//! * [`PathQuery::evaluate`] — a streaming evaluation over the document view
//!   of a [`Cursor`](crate::navigate::Cursor), returning the document-order
//!   positions of all matching elements (linear in the document size; intended
//!   for result materialization on moderately sized documents).

use std::collections::HashMap;

use sltgrammar::{Grammar, NodeId, NodeKind, NtId};

use crate::error::{RepairError, Result};
use crate::navigate::Cursor;

/// Axis of one query step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/label` — the element must be a child of the previous match.
    Child,
    /// `//label` — the element must be a descendant of the previous match.
    Descendant,
}

/// One step of a path query: an axis plus a name test (`None` = `*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis connecting this step to the previous one.
    pub axis: Axis,
    /// Element name to match; `None` matches any element.
    pub label: Option<String>,
}

impl Step {
    fn matches(&self, label: &str) -> bool {
        match &self.label {
            Some(want) => want == label,
            None => true,
        }
    }
}

/// A parsed absolute path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    steps: Vec<Step>,
}

/// Result of materializing a query: the matching elements in document order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryMatches {
    /// 0-based document-order indices (among *elements*) of every match.
    pub positions: Vec<u64>,
    /// Labels of the matching elements, parallel to `positions`.
    pub labels: Vec<String>,
}

impl QueryMatches {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Maximum number of steps: contexts are bitmasks in a `u32`.
const MAX_STEPS: usize = 31;

impl PathQuery {
    /// Parses an absolute path expression such as `/site//item/name`,
    /// `//keyword` or `/db/*/value`.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim();
        if !text.starts_with('/') {
            return Err(RepairError::InvalidQuery {
                detail: "query must be absolute (start with '/' or '//')".to_string(),
            });
        }
        let mut steps = Vec::new();
        let mut rest = text;
        while !rest.is_empty() {
            let axis = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                Axis::Descendant
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                Axis::Child
            } else {
                return Err(RepairError::InvalidQuery {
                    detail: format!("expected '/' or '//' before `{rest}`"),
                });
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let name = &rest[..end];
            rest = &rest[end..];
            if name.is_empty() {
                return Err(RepairError::InvalidQuery {
                    detail: "empty step (trailing slash or '///')".to_string(),
                });
            }
            if !name
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '*')
            {
                return Err(RepairError::InvalidQuery {
                    detail: format!("invalid characters in step `{name}`"),
                });
            }
            let label = if name == "*" { None } else { Some(name.to_string()) };
            steps.push(Step { axis, label });
        }
        if steps.is_empty() {
            return Err(RepairError::InvalidQuery {
                detail: "query has no steps".to_string(),
            });
        }
        if steps.len() > MAX_STEPS {
            return Err(RepairError::InvalidQuery {
                detail: format!("queries are limited to {MAX_STEPS} steps"),
            });
        }
        Ok(PathQuery { steps })
    }

    /// The parsed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// State transition: given the states reaching an element (bitmask over
    /// step indices) and the element's label, returns `(states for its
    /// children, whether the element is a match)`.
    fn transition(&self, ctx: u32, label: &str) -> (u32, bool) {
        let mut next = 0u32;
        let mut matched = false;
        for i in 0..self.steps.len() {
            if ctx & (1 << i) == 0 {
                continue;
            }
            let step = &self.steps[i];
            if step.axis == Axis::Descendant {
                // `//` may skip this element entirely.
                next |= 1 << i;
            }
            if step.matches(label) {
                if i + 1 == self.steps.len() {
                    matched = true;
                } else {
                    next |= 1 << (i + 1);
                }
            }
        }
        (next, matched)
    }

    /// Initial state set for the document root element.
    fn initial_context(&self) -> u32 {
        1
    }

    /// Counts the matching elements by a memoized dynamic program over the
    /// grammar. Works on arbitrarily (even exponentially) compressed binary
    /// XML grammars without touching the derived tree.
    pub fn count(&self, g: &Grammar) -> u128 {
        let mut memo: HashMap<(NtId, u32), RuleOutcome> = HashMap::new();
        let start = g.start();
        let outcome = self.eval_rule(g, start, self.initial_context(), &mut memo);
        outcome.matches
    }

    /// Evaluates one rule under an incoming context.
    ///
    /// `ctx_root` is the state set reaching the root node of `val(A)`. In the
    /// first-child/next-sibling encoding an element's *first* binary child
    /// receives the element's own transition result, while its *second* binary
    /// child (the next sibling) shares the element's incoming context — so one
    /// context per node is enough and it flows strictly downwards. Returns the
    /// match count inside `val(A)` (excluding parameter subtrees) and the
    /// context flowing out to each parameter position.
    fn eval_rule(
        &self,
        g: &Grammar,
        nt: NtId,
        ctx_root: u32,
        memo: &mut HashMap<(NtId, u32), RuleOutcome>,
    ) -> RuleOutcome {
        if let Some(hit) = memo.get(&(nt, ctx_root)) {
            return hit.clone();
        }
        let rule = g.rule(nt);
        let rhs = &rule.rhs;
        let mut outcome = RuleOutcome {
            matches: 0,
            param_contexts: vec![0u32; rule.rank],
        };
        // Work stack of (node, element context).
        let mut stack: Vec<(NodeId, u32)> = vec![(rhs.root(), ctx_root)];
        while let Some((node, ctx)) = stack.pop() {
            match rhs.kind(node) {
                NodeKind::Term(t) => {
                    if g.symbols.is_null(t) {
                        continue;
                    }
                    let label = g.symbols.name(t);
                    let (child_ctx, matched) = self.transition(ctx, label);
                    if matched {
                        outcome.matches += 1;
                    }
                    let children = rhs.children(node);
                    debug_assert_eq!(
                        children.len(),
                        2,
                        "path queries require binary XML grammars"
                    );
                    // First child: the element's first document child.
                    stack.push((children[0], child_ctx));
                    // Second child: the element's next sibling, which shares the
                    // element's own incoming (parent) context.
                    stack.push((children[1], ctx));
                }
                NodeKind::Nt(callee) => {
                    let sub = self.eval_rule(g, callee, ctx, memo);
                    outcome.matches += sub.matches;
                    let args = rhs.children(node);
                    for (j, &arg) in args.iter().enumerate() {
                        stack.push((arg, sub.param_contexts[j]));
                    }
                }
                NodeKind::Param(j) => {
                    outcome.param_contexts[j as usize] = ctx;
                }
            }
        }
        memo.insert((nt, ctx_root), outcome.clone());
        outcome
    }

    /// Materializes the matches by streaming over the document view of the
    /// grammar. Returns positions (document order over elements) and labels.
    pub fn evaluate(&self, g: &Grammar) -> QueryMatches {
        let mut out = QueryMatches::default();
        let mut cursor = Cursor::new(g);
        // DFS over elements carrying the context stack.
        let mut ctx_stack: Vec<u32> = vec![self.initial_context()];
        let mut position: u64 = 0;
        'outer: loop {
            let ctx = *ctx_stack.last().expect("context stack is never empty");
            let (child_ctx, matched) = self.transition(ctx, cursor.label());
            if matched {
                out.positions.push(position);
                out.labels.push(cursor.label().to_string());
            }
            position += 1;
            if cursor.doc_first_child() {
                ctx_stack.push(child_ctx);
                continue;
            }
            loop {
                if cursor.doc_next_sibling() {
                    break;
                }
                ctx_stack.pop();
                if !cursor.doc_parent() {
                    break 'outer;
                }
            }
        }
        out
    }

    /// Reference evaluation against an uncompressed [`xmltree::XmlTree`]; used
    /// by tests and the benchmark harness as the oracle.
    pub fn evaluate_uncompressed(&self, xml: &xmltree::XmlTree) -> QueryMatches {
        let mut out = QueryMatches::default();
        let order = xml.preorder();
        let index_of: HashMap<xmltree::XmlNodeId, u64> = order
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u64))
            .collect();
        // DFS carrying contexts.
        let mut stack = vec![(xml.root(), self.initial_context())];
        let mut hits = Vec::new();
        while let Some((node, ctx)) = stack.pop() {
            let (child_ctx, matched) = self.transition(ctx, xml.label(node));
            if matched {
                hits.push((index_of[&node], xml.label(node).to_string()));
            }
            for &c in xml.children(node) {
                stack.push((c, child_ctx));
            }
        }
        hits.sort();
        for (p, l) in hits {
            out.positions.push(p);
            out.labels.push(l);
        }
        out
    }
}

/// Memoized result of evaluating one rule under one incoming context.
#[derive(Debug, Clone)]
struct RuleOutcome {
    matches: u128,
    /// Context flowing into each parameter position.
    param_contexts: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use treerepair::TreeRePair;
    use xmltree::parse::parse_xml;

    const DOC: &str = "<site><regions><region><item><name/><price/></item>\
                       <item><name/></item></region><region><item><name/><price/></item>\
                       </region></regions><people><person><name/><address/></person>\
                       <person><name/></person></people></site>";

    fn compressed(doc: &str) -> (Grammar, xmltree::XmlTree) {
        let xml = parse_xml(doc).unwrap();
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        (g, xml)
    }

    #[test]
    fn parser_accepts_and_rejects() {
        let q = PathQuery::parse("/site/regions//item/name").unwrap();
        assert_eq!(q.steps().len(), 4);
        assert_eq!(q.steps()[0].axis, Axis::Child);
        assert_eq!(q.steps()[2].axis, Axis::Descendant);
        assert_eq!(q.steps()[2].label.as_deref(), Some("item"));

        let q = PathQuery::parse("//name").unwrap();
        assert_eq!(q.steps().len(), 1);
        assert_eq!(q.steps()[0].axis, Axis::Descendant);

        let q = PathQuery::parse("/db/*/value").unwrap();
        assert!(q.steps()[1].label.is_none());

        assert!(PathQuery::parse("relative/path").is_err());
        assert!(PathQuery::parse("/").is_err());
        assert!(PathQuery::parse("/a//").is_err());
        assert!(PathQuery::parse("/a/b[1]").is_err());
        let long = format!("/{}", vec!["x"; 40].join("/"));
        assert!(PathQuery::parse(&long).is_err());
    }

    #[test]
    fn counts_match_streaming_and_uncompressed_evaluation() {
        let (g, xml) = compressed(DOC);
        for query in [
            "/site",
            "/site/regions/region/item/name",
            "//name",
            "//item/name",
            "/site//name",
            "/site/*",
            "//*",
            "//region//name",
            "/site/people/person/address",
            "//absent",
            "/absent//name",
        ] {
            let q = PathQuery::parse(query).unwrap();
            let reference = q.evaluate_uncompressed(&xml);
            let streamed = q.evaluate(&g);
            assert_eq!(streamed, reference, "streaming mismatch for {query}");
            assert_eq!(
                q.count(&g),
                reference.len() as u128,
                "grammar count mismatch for {query}"
            );
        }
    }

    #[test]
    fn specific_counts_are_correct() {
        let (g, _) = compressed(DOC);
        assert_eq!(PathQuery::parse("//name").unwrap().count(&g), 5);
        assert_eq!(PathQuery::parse("//item/name").unwrap().count(&g), 3);
        assert_eq!(PathQuery::parse("//person/name").unwrap().count(&g), 2);
        assert_eq!(PathQuery::parse("/site/regions//price").unwrap().count(&g), 2);
        assert_eq!(PathQuery::parse("/name").unwrap().count(&g), 0);
        assert_eq!(PathQuery::parse("//*").unwrap().count(&g), 18);
    }

    #[test]
    fn evaluate_returns_document_order_positions() {
        let (g, xml) = compressed(DOC);
        let q = PathQuery::parse("//item").unwrap();
        let matches = q.evaluate(&g);
        assert_eq!(matches.len(), 3);
        assert!(!matches.is_empty());
        // Positions are strictly increasing and all labelled `item`.
        assert!(matches.positions.windows(2).all(|w| w[0] < w[1]));
        assert!(matches.labels.iter().all(|l| l == "item"));
        // Cross-check against the original document order.
        let order = xml.preorder();
        for &p in &matches.positions {
            assert_eq!(xml.label(order[p as usize]), "item");
        }
    }

    #[test]
    fn counting_works_on_exponentially_compressed_documents() {
        // A doubling chain deriving 2^16 <item><name/></item> records under a root:
        // the derived document has ~196k elements; counting must not materialize it.
        let mut text = String::from("S -> root(L1(#),#)\n");
        text.push_str("L1 -> C1(C1(y1))\n");
        for i in 1..=15 {
            text.push_str(&format!("C{i} -> C{}(C{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("C16 -> item(name(#,#), y1)\n");
        let g = sltgrammar::text::parse_grammar(&text).unwrap();
        g.validate().unwrap();
        let items = PathQuery::parse("/root/item").unwrap().count(&g);
        assert_eq!(items, 1 << 16);
        let names = PathQuery::parse("//name").unwrap().count(&g);
        assert_eq!(names, 1 << 16);
        let nested = PathQuery::parse("/root/item/name").unwrap().count(&g);
        assert_eq!(nested, 1 << 16);
        let miss = PathQuery::parse("/root/name").unwrap().count(&g);
        assert_eq!(miss, 0);
    }

    #[test]
    fn queries_survive_recompression_and_updates() {
        use crate::update::rename;
        let (mut g, _) = compressed(DOC);
        let before = PathQuery::parse("//name").unwrap().count(&g);
        // Rename the first element (document root stays put at index 0 of the
        // binary preorder; rename element at binary preorder index 1).
        rename(&mut g, 1, "zones").unwrap();
        let q = PathQuery::parse("/site/zones//name").unwrap();
        assert_eq!(q.count(&g), 3);
        crate::repair::GrammarRePair::default().recompress(&mut g);
        assert_eq!(q.count(&g), 3);
        assert_eq!(PathQuery::parse("//name").unwrap().count(&g), before);
    }
}
