//! `CompressedDom` — a mutable, always-compressed document handle.
//!
//! This is the application-facing API the paper motivates (a DOM replacement
//! for memory-hungry browsers): load an XML document once, keep only the SLCF
//! grammar in memory, apply updates directly on the grammar, and let
//! GrammarRePair restore compression every `recompress_every` updates.
//!
//! Since the store redesign this handle is a thin wrapper over a
//! single-document [`DomStore`]: the read surface (cursors, streaming
//! preorder, queries, point label reads, cached [`NavTables`]) and the
//! update plumbing are the store's, exercised by every single-document test
//! and bench on the exact code path the multi-document session serves. What
//! the wrapper adds is the paper's **fixed-interval recompression policy**
//! (`recompress_every`), implemented on top of the store with its debt
//! scheduler disabled — multi-document holders should use [`DomStore`]
//! directly and let its debt-based scheduler decide, instead of N
//! fixed-interval counters.
//!
//! # Single-operation vs batched updates
//!
//! [`CompressedDom::apply`] is the paper's per-operation path: one isolation
//! walk (with its own `own_sizes`/`segment_sizes` computation) per update.
//! [`CompressedDom::apply_batch`] routes a whole operation sequence through
//! [`crate::update::apply_batch`], which isolates shared path prefixes once
//! per chunk — the natural fit for FLUX-style functional update programs that
//! emit many edits clustered under common ancestors. Both paths produce
//! byte-identical documents (asserted by the differential update-oracle
//! harness); only the intermediate grammars differ.
//!
//! # Recompression counting
//!
//! The recompression policy charges [`CompressedDom::apply`] one unit per
//! operation and [`CompressedDom::apply_batch`] **one unit per non-empty
//! batch**, regardless of the batch's length — a batch is one logical
//! document transition, and its blow-up is bounded per distinct path rather
//! than per operation, so charging it per operation would recompress far too
//! eagerly. [`CompressedDom::total_updates`] still counts individual
//! operations.
//!
//! # Cached navigation tables
//!
//! Reads through [`CompressedDom::cursor`], [`CompressedDom::preorder_labels`]
//! and [`CompressedDom::query`] resolve through the store's published
//! [`crate::store::Snapshot`] — one shared grammar + [`NavTables`] version
//! behind `Arc`s, republished lazily after any update, batch or
//! recompression. Read-heavy phases between updates pay the O(grammar)
//! table build exactly once and share the same `Arc` from then on.

use std::sync::Arc;

use sltgrammar::fingerprint::derived_size;
use sltgrammar::Grammar;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::navigate::{Cursor, NavTables, PreorderLabels};
use crate::query::{PathQuery, QueryMatches};
use crate::repair::{GrammarRePairConfig, RepairStats};
use crate::store::{DocId, DomStore, SchedulerConfig, Snapshot};
use crate::update::{BatchStats, UpdateStats};

/// Policy and state of a mutable compressed document — a single-document
/// [`DomStore`] plus the paper's fixed-interval recompression counter.
#[derive(Debug, Clone)]
pub struct CompressedDom {
    store: DomStore,
    doc: DocId,
    /// The published snapshot backing borrowing reads (cursors, preorder
    /// iterators); refreshed on each such read so they see the latest state.
    snap: Snapshot,
    /// Recompress after this many updates (0 disables automatic recompression).
    pub recompress_every: usize,
    updates_since_recompress: usize,
}

/// The wrapper's store never schedules on its own: the counter decides.
fn manual_store() -> DomStore {
    DomStore::new().with_scheduler(SchedulerConfig {
        auto: false,
        ..SchedulerConfig::default()
    })
}

impl CompressedDom {
    /// Compresses `xml` and wraps it in a DOM handle that recompresses after
    /// every `recompress_every` updates (the paper uses 100).
    pub fn from_xml(xml: &XmlTree, recompress_every: usize) -> Self {
        let store = manual_store();
        let doc = store
            .load_xml(xml)
            .expect("a parsed document's labels always intern");
        let snap = Self::state_ok(store.snapshot(doc));
        CompressedDom {
            store,
            doc,
            snap,
            recompress_every,
            updates_since_recompress: 0,
        }
    }

    /// Wraps an existing grammar, rebasing it onto the handle's store (see
    /// [`DomStore::load_grammar`]): labels keep their *names*, but unused
    /// entries of the grammar's symbol table are dropped and [`sltgrammar::TermId`]s
    /// may be reassigned — resolve ids through `grammar().symbols` afterwards
    /// rather than holding ids from the original table.
    pub fn from_grammar(grammar: Grammar, recompress_every: usize) -> Self {
        let store = manual_store();
        let doc = store
            .load_grammar(grammar)
            .expect("a valid grammar's alphabet rebases onto an empty store");
        let snap = Self::state_ok(store.snapshot(doc));
        CompressedDom {
            store,
            doc,
            snap,
            recompress_every,
            updates_since_recompress: 0,
        }
    }

    /// Uses a custom recompression configuration.
    pub fn with_config(self, config: GrammarRePairConfig) -> Self {
        self.store.set_config(config);
        self
    }

    #[inline]
    fn state_ok<T>(result: Result<T>) -> T {
        result.expect("the wrapped document lives as long as the handle")
    }

    /// Read-only access to the underlying grammar (the current published
    /// snapshot's — an `Arc` that stays valid however long it is held).
    pub fn grammar(&self) -> Arc<Grammar> {
        Self::state_ok(self.store.grammar(self.doc))
    }

    /// Consumes the handle and returns the grammar.
    pub fn into_grammar(self) -> Grammar {
        Self::state_ok(self.store.remove(self.doc))
    }

    /// The single-document [`DomStore`] behind this handle — an escape hatch
    /// for code migrating to the multi-document API.
    pub fn store(&self) -> &DomStore {
        &self.store
    }

    /// Current grammar size in edges (the paper's size measure).
    pub fn edge_count(&self) -> usize {
        Self::state_ok(self.store.edge_count(self.doc))
    }

    /// Number of nodes of the represented (uncompressed) binary tree.
    pub fn derived_size(&self) -> u128 {
        derived_size(&self.grammar())
    }

    /// Number of updates applied so far.
    pub fn total_updates(&self) -> usize {
        Self::state_ok(self.store.total_updates(self.doc))
    }

    /// Number of automatic recompressions performed so far.
    pub fn recompressions(&self) -> usize {
        Self::state_ok(self.store.recompressions(self.doc))
    }

    /// Label of the node at the given preorder index of the represented
    /// binary tree — a read-only positional jump through the cached tables.
    pub fn label_at(&self, preorder_index: u128) -> Result<String> {
        self.store.label_at(self.doc, preorder_index)
    }

    // ----- read path through cached navigation tables -----

    /// The shared [`NavTables`] of the current published snapshot — built on
    /// first use, then the same `Arc` for every read until the next mutation.
    pub fn nav_tables(&self) -> Arc<NavTables> {
        Self::state_ok(self.store.nav_tables(self.doc))
    }

    /// A navigation cursor at the document root, backed by the cached tables.
    pub fn cursor(&mut self) -> Cursor<'_> {
        self.snap = Self::state_ok(self.store.snapshot(self.doc));
        self.snap.cursor()
    }

    /// A streaming preorder label iterator backed by the cached tables.
    pub fn preorder_labels(&mut self) -> PreorderLabels<'_> {
        self.snap = Self::state_ok(self.store.snapshot(self.doc));
        self.snap.preorder_labels()
    }

    /// Materializes a path query through the memoized, output-sensitive
    /// evaluator ([`PathQuery::evaluate_with_tables`]) over the cached tables.
    pub fn query(&self, query: &PathQuery) -> QueryMatches {
        Self::state_ok(self.store.query(self.doc, query))
    }

    /// Parses and materializes a path query in one call.
    pub fn query_str(&self, query: &str) -> Result<QueryMatches> {
        Ok(self.query(&PathQuery::parse(query)?))
    }

    /// Counts the matches of a path query without materializing them.
    pub fn query_count(&self, query: &PathQuery) -> u128 {
        Self::state_ok(self.store.query_count(self.doc, query))
    }

    /// Applies one update; recompresses automatically when the policy says so.
    /// Returns the update statistics and, if triggered, the recompression stats.
    ///
    /// Splice-time failures (e.g. renaming a null node) are still charged
    /// their policy unit: path isolation already ran and grew the grammar, so
    /// skipping the charge would let repeated failures starve recompression.
    /// Out-of-range targets are rejected before anything mutates and are not
    /// charged. [`CompressedDom::total_updates`] only counts applied
    /// operations.
    pub fn apply(&mut self, op: &UpdateOp) -> Result<(UpdateStats, Option<RepairStats>)> {
        let result = self.store.apply(self.doc, op).map(|(stats, _)| stats);
        if matches!(result, Err(RepairError::TargetOutOfRange { .. })) {
            return result.map(|stats| (stats, None));
        }
        self.updates_since_recompress += 1;
        let due =
            self.recompress_every > 0 && self.updates_since_recompress >= self.recompress_every;
        match result {
            Ok(stats) => {
                let repair = due.then(|| self.recompress_now());
                Ok((stats, repair))
            }
            Err(e) => {
                if due {
                    self.recompress_now();
                }
                Err(e)
            }
        }
    }

    /// Applies a sequence of updates through the batched isolation pipeline
    /// ([`crate::update::apply_batch`]): shared path prefixes are isolated
    /// once per chunk instead of once per operation. The batch counts as
    /// **one** unit toward `recompress_every` (see the module docs);
    /// recompression, if due, runs after the whole batch.
    ///
    /// On error the document reflects every fully applied chunk (plus, for
    /// splice-time errors, the spliced prefix of the failing chunk — see
    /// [`crate::update::apply_batch`]); the batch is still charged its
    /// policy unit — applied chunks and isolation may have grown the grammar
    /// — but [`CompressedDom::total_updates`] only counts fully applied
    /// batches.
    pub fn apply_batch(&mut self, ops: &[UpdateOp]) -> Result<(BatchStats, Option<RepairStats>)> {
        let result = self.store.apply_batch(self.doc, ops).map(|(stats, _)| stats);
        if ops.is_empty() {
            return result.map(|stats| (stats, None));
        }
        self.updates_since_recompress += 1;
        let due =
            self.recompress_every > 0 && self.updates_since_recompress >= self.recompress_every;
        match result {
            Ok(stats) => {
                let repair = due.then(|| self.recompress_now());
                Ok((stats, repair))
            }
            Err(e) => {
                // Keep the grammar bounded even on failing batches: the
                // splices of completed chunks (and the isolation growth of
                // the failing one) are real.
                if due {
                    self.recompress_now();
                }
                Err(e)
            }
        }
    }

    /// Forces a GrammarRePair recompression.
    pub fn recompress_now(&mut self) -> RepairStats {
        self.updates_since_recompress = 0;
        Self::state_ok(self.store.recompress(self.doc))
    }

    /// Materializes the document back to an [`XmlTree`]. Only intended for
    /// small documents (tests, exports); errors if the document exceeds the
    /// default derivation limit.
    pub fn to_xml(&self) -> Result<XmlTree> {
        self.store.to_xml(self.doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    fn doc(n: usize) -> XmlTree {
        let mut s = String::from("<feed>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str("</feed>");
        parse_xml(&s).unwrap()
    }

    /// Preorder indices (in the binary tree) of all element nodes of `xml`.
    fn element_positions(xml: &XmlTree) -> Vec<usize> {
        let mut symbols = sltgrammar::SymbolTable::new();
        let bin = xmltree::binary::to_binary(xml, &mut symbols).unwrap();
        bin.preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| {
                matches!(bin.kind(n), sltgrammar::NodeKind::Term(t) if !symbols.is_null(t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn dom_roundtrips_to_xml() {
        let xml = doc(10);
        let dom = CompressedDom::from_xml(&xml, 100);
        assert_eq!(dom.to_xml().unwrap().to_xml(), xml.to_xml());
        assert!(dom.edge_count() < xml.edge_count());
    }

    #[test]
    fn updates_apply_and_auto_recompression_triggers() {
        let xml = doc(20);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 5);
        let baseline = dom.edge_count();
        for i in 0..12 {
            let op = UpdateOp::Rename {
                target: elements[2 * i + 1],
                label: format!("tag{}", i % 3),
            };
            dom.apply(&op).unwrap();
        }
        assert_eq!(dom.total_updates(), 12);
        assert_eq!(dom.recompressions(), 2);
        // Recompression keeps the grammar within a small factor of the original.
        assert!(dom.edge_count() < 4 * baseline + 50);
        dom.grammar().validate().unwrap();
    }

    #[test]
    fn label_access_reads_through_the_compression() {
        let xml = doc(3);
        let dom = CompressedDom::from_xml(&xml, 0);
        assert_eq!(dom.label_at(0).unwrap(), "feed");
        assert_eq!(dom.label_at(1).unwrap(), "item");
        let size = dom.derived_size();
        assert_eq!(dom.label_at(size - 1).unwrap(), "#");
    }

    #[test]
    fn batches_count_once_toward_the_recompression_policy() {
        let xml = doc(20);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 3);
        // Three batches of four renames each: only the third triggers.
        for b in 0..3 {
            let ops: Vec<UpdateOp> = (0..4)
                .map(|i| UpdateOp::Rename {
                    target: elements[8 * b + 2 * i + 1],
                    label: format!("b{b}i{i}"),
                })
                .collect();
            let (stats, repair) = dom.apply_batch(&ops).unwrap();
            assert_eq!(stats.ops, 4);
            assert_eq!(repair.is_some(), b == 2, "batch {b}");
        }
        assert_eq!(dom.total_updates(), 12);
        assert_eq!(dom.recompressions(), 1);
        // Empty batches are free.
        let (stats, repair) = dom.apply_batch(&[]).unwrap();
        assert_eq!(stats.ops, 0);
        assert!(repair.is_none());
        assert_eq!(dom.total_updates(), 12);
        dom.grammar().validate().unwrap();
    }

    #[test]
    fn failing_single_ops_still_charge_the_recompression_policy() {
        let xml = doc(10);
        let mut dom = CompressedDom::from_xml(&xml, 2);
        // Renaming the trailing null of the document fails at splice time,
        // after isolation already grew the grammar.
        let null_target = dom.derived_size() - 1;
        let bad = UpdateOp::Rename {
            target: null_target as usize,
            label: "x".to_string(),
        };
        assert!(dom.apply(&bad).is_err());
        assert!(dom.apply(&bad).is_err());
        assert_eq!(dom.recompressions(), 1, "failed ops must not starve recompression");
        assert_eq!(dom.total_updates(), 0);
        dom.grammar().validate().unwrap();
        // Out-of-range probes never mutate the grammar and are free.
        let probe = UpdateOp::Delete { target: 10_000_000 };
        for _ in 0..5 {
            assert!(dom.apply(&probe).is_err());
        }
        assert_eq!(dom.recompressions(), 1, "rejected probes must not waste recompressions");
    }

    #[test]
    fn failing_batches_still_charge_the_recompression_policy() {
        let xml = doc(10);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 2);
        // An out-of-range target fails at planning time: its whole chunk
        // (including the leading valid rename) is never spliced.
        let planning_error_batch = vec![
            UpdateOp::Rename {
                target: elements[1],
                label: "never".to_string(),
            },
            UpdateOp::Delete { target: 1_000_000 },
        ];
        assert!(dom.apply_batch(&planning_error_batch).is_err());
        assert_eq!(dom.recompressions(), 0);
        assert_eq!(dom.label_at(elements[1] as u128).unwrap(), "item");

        // A splice-time error (renaming a null node) leaves the chunk's
        // spliced prefix applied, and the second failing batch reaches the
        // policy threshold.
        let null_idx = {
            let mut symbols = sltgrammar::SymbolTable::new();
            let bin = xmltree::binary::to_binary(&xml, &mut symbols).unwrap();
            bin.preorder()
                .iter()
                .enumerate()
                .find(|(_, &n)| {
                    matches!(bin.kind(n), sltgrammar::NodeKind::Term(t) if symbols.is_null(t))
                })
                .map(|(i, _)| i)
                .unwrap()
        };
        let splice_error_batch = vec![
            UpdateOp::Rename {
                target: elements[1],
                label: "ok".to_string(),
            },
            UpdateOp::Rename {
                target: null_idx,
                label: "boom".to_string(),
            },
        ];
        assert!(dom.apply_batch(&splice_error_batch).is_err());
        assert_eq!(dom.recompressions(), 1, "failed batches must not starve recompression");
        assert_eq!(dom.total_updates(), 0, "only fully applied batches are counted");
        dom.grammar().validate().unwrap();
        assert_eq!(dom.label_at(elements[1] as u128).unwrap(), "ok");
    }

    #[test]
    fn batched_and_sequential_paths_produce_the_same_document() {
        let xml = doc(12);
        let elements = element_positions(&xml);
        let ops: Vec<UpdateOp> = (0..8)
            .map(|i| UpdateOp::Rename {
                target: elements[3 * i + 1],
                label: format!("tag{i}"),
            })
            .collect();
        let mut sequential = CompressedDom::from_xml(&xml, 4);
        for op in &ops {
            sequential.apply(op).unwrap();
        }
        let mut batched = CompressedDom::from_xml(&xml, 4);
        batched.apply_batch(&ops).unwrap();
        assert_eq!(
            batched.to_xml().unwrap().to_xml(),
            sequential.to_xml().unwrap().to_xml()
        );
    }

    #[test]
    fn cached_nav_tables_survive_reads_and_refresh_after_mutations() {
        let xml = doc(8);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 3);

        // Repeated reads share one snapshot.
        let t1 = dom.nav_tables();
        let t2 = dom.nav_tables();
        assert!(Arc::ptr_eq(&t1, &t2), "reads must share the cached snapshot");
        assert_eq!(dom.cursor().label(), "feed");
        let q = crate::query::PathQuery::parse("//item/title").unwrap();
        assert_eq!(dom.query(&q).len() as u128, dom.query_count(&q));
        assert_eq!(dom.query_str("//item").unwrap().len(), 8);

        // Any update invalidates the snapshot; the next read rebuilds.
        dom.apply(&UpdateOp::Rename {
            target: elements[1],
            label: "entry".to_string(),
        })
        .unwrap();
        let t3 = dom.nav_tables();
        assert!(!Arc::ptr_eq(&t1, &t3), "mutation must invalidate the cache");
        assert_eq!(dom.query_str("//entry").unwrap().len(), 1);

        // Recompression invalidates it too.
        dom.recompress_now();
        let t4 = dom.nav_tables();
        assert!(!Arc::ptr_eq(&t3, &t4));
        assert_eq!(dom.query_str("//entry").unwrap().len(), 1);
        let labels: Vec<String> = {
            let g = dom.grammar().clone();
            let mut it = Vec::new();
            for t in dom.preorder_labels() {
                it.push(g.symbols.name(t).to_string());
            }
            it
        };
        assert_eq!(labels.len() as u128, dom.derived_size());
    }

    #[test]
    fn manual_recompression_restores_compression() {
        let xml = doc(30);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 0);
        let compressed = dom.edge_count();
        for i in 0..10 {
            let op = UpdateOp::Rename {
                target: elements[3 * i + 1],
                label: format!("fresh{i}"),
            };
            dom.apply(&op).unwrap();
        }
        let blown_up = dom.edge_count();
        assert!(blown_up > compressed);
        dom.recompress_now();
        assert!(dom.edge_count() <= blown_up);
        assert_eq!(dom.to_xml().unwrap().node_count(), xml.node_count());
    }
}
