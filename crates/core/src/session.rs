//! `CompressedDom` — a mutable, always-compressed document handle.
//!
//! This is the application-facing API the paper motivates (a DOM replacement
//! for memory-hungry browsers): load an XML document once, keep only the SLCF
//! grammar in memory, apply updates directly on the grammar, and let
//! GrammarRePair restore compression every `recompress_every` updates.

use sltgrammar::fingerprint::derived_size;
use sltgrammar::Grammar;
use xmltree::binary::from_binary;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::Result;
use crate::isolate::label_at;
use crate::repair::{GrammarRePair, GrammarRePairConfig, RepairStats};
use crate::update::{apply_update, UpdateStats};

/// Policy and state of a mutable compressed document.
#[derive(Debug, Clone)]
pub struct CompressedDom {
    grammar: Grammar,
    repair: GrammarRePair,
    /// Recompress after this many updates (0 disables automatic recompression).
    pub recompress_every: usize,
    updates_since_recompress: usize,
    total_updates: usize,
    recompressions: usize,
}

impl CompressedDom {
    /// Compresses `xml` and wraps it in a DOM handle that recompresses after
    /// every `recompress_every` updates (the paper uses 100).
    pub fn from_xml(xml: &XmlTree, recompress_every: usize) -> Self {
        let (grammar, _) = GrammarRePair::default().compress_xml(xml);
        CompressedDom::from_grammar(grammar, recompress_every)
    }

    /// Wraps an existing grammar.
    pub fn from_grammar(grammar: Grammar, recompress_every: usize) -> Self {
        CompressedDom {
            grammar,
            repair: GrammarRePair::default(),
            recompress_every,
            updates_since_recompress: 0,
            total_updates: 0,
            recompressions: 0,
        }
    }

    /// Uses a custom recompression configuration.
    pub fn with_config(mut self, config: GrammarRePairConfig) -> Self {
        self.repair = GrammarRePair::new(config);
        self
    }

    /// Read-only access to the underlying grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// Consumes the handle and returns the grammar.
    pub fn into_grammar(self) -> Grammar {
        self.grammar
    }

    /// Current grammar size in edges (the paper's size measure).
    pub fn edge_count(&self) -> usize {
        self.grammar.edge_count()
    }

    /// Number of nodes of the represented (uncompressed) binary tree.
    pub fn derived_size(&self) -> u128 {
        derived_size(&self.grammar)
    }

    /// Number of updates applied so far.
    pub fn total_updates(&self) -> usize {
        self.total_updates
    }

    /// Number of automatic recompressions performed so far.
    pub fn recompressions(&self) -> usize {
        self.recompressions
    }

    /// Label of the node at the given preorder index of the represented binary
    /// tree (isolates the path as a side effect, like any read-modify access).
    pub fn label_at(&mut self, preorder_index: u128) -> Result<String> {
        label_at(&mut self.grammar, preorder_index)
    }

    /// Applies one update; recompresses automatically when the policy says so.
    /// Returns the update statistics and, if triggered, the recompression stats.
    pub fn apply(&mut self, op: &UpdateOp) -> Result<(UpdateStats, Option<RepairStats>)> {
        let stats = apply_update(&mut self.grammar, op)?;
        self.total_updates += 1;
        self.updates_since_recompress += 1;
        let repair = if self.recompress_every > 0
            && self.updates_since_recompress >= self.recompress_every
        {
            Some(self.recompress_now())
        } else {
            None
        };
        Ok((stats, repair))
    }

    /// Forces a GrammarRePair recompression.
    pub fn recompress_now(&mut self) -> RepairStats {
        self.updates_since_recompress = 0;
        self.recompressions += 1;
        self.repair.recompress(&mut self.grammar)
    }

    /// Materializes the document back to an [`XmlTree`]. Only intended for
    /// small documents (tests, exports); errors if the document exceeds the
    /// default derivation limit.
    pub fn to_xml(&self) -> Result<XmlTree> {
        let bin = sltgrammar::derive::val(&self.grammar)?;
        Ok(from_binary(&bin, &self.grammar.symbols)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::parse::parse_xml;

    fn doc(n: usize) -> XmlTree {
        let mut s = String::from("<feed>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str("</feed>");
        parse_xml(&s).unwrap()
    }

    /// Preorder indices (in the binary tree) of all element nodes of `xml`.
    fn element_positions(xml: &XmlTree) -> Vec<usize> {
        let mut symbols = sltgrammar::SymbolTable::new();
        let bin = xmltree::binary::to_binary(xml, &mut symbols).unwrap();
        bin.preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| {
                matches!(bin.kind(n), sltgrammar::NodeKind::Term(t) if !symbols.is_null(t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn dom_roundtrips_to_xml() {
        let xml = doc(10);
        let dom = CompressedDom::from_xml(&xml, 100);
        assert_eq!(dom.to_xml().unwrap().to_xml(), xml.to_xml());
        assert!(dom.edge_count() < xml.edge_count());
    }

    #[test]
    fn updates_apply_and_auto_recompression_triggers() {
        let xml = doc(20);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 5);
        let baseline = dom.edge_count();
        for i in 0..12 {
            let op = UpdateOp::Rename {
                target: elements[2 * i + 1],
                label: format!("tag{}", i % 3),
            };
            dom.apply(&op).unwrap();
        }
        assert_eq!(dom.total_updates(), 12);
        assert_eq!(dom.recompressions(), 2);
        // Recompression keeps the grammar within a small factor of the original.
        assert!(dom.edge_count() < 4 * baseline + 50);
        dom.grammar().validate().unwrap();
    }

    #[test]
    fn label_access_reads_through_the_compression() {
        let xml = doc(3);
        let mut dom = CompressedDom::from_xml(&xml, 0);
        assert_eq!(dom.label_at(0).unwrap(), "feed");
        assert_eq!(dom.label_at(1).unwrap(), "item");
        let size = dom.derived_size();
        assert_eq!(dom.label_at(size - 1).unwrap(), "#");
    }

    #[test]
    fn manual_recompression_restores_compression() {
        let xml = doc(30);
        let elements = element_positions(&xml);
        let mut dom = CompressedDom::from_xml(&xml, 0);
        let compressed = dom.edge_count();
        for i in 0..10 {
            let op = UpdateOp::Rename {
                target: elements[3 * i + 1],
                label: format!("fresh{i}"),
            };
            dom.apply(&op).unwrap();
        }
        let blown_up = dom.edge_count();
        assert!(blown_up > compressed);
        dom.recompress_now();
        assert!(dom.edge_count() <= blown_up);
        assert_eq!(dom.to_xml().unwrap().node_count(), xml.node_count());
    }
}
