//! The update–decompress–compress (udc) baseline (paper Section V-C).
//!
//! Before this paper, the best known way to keep a grammar-compressed tree
//! small under updates was: perform the updates on the grammar (via path
//! isolation), then *decompress* the grammar to the full tree and *compress*
//! that tree from scratch with TreeRePair. GrammarRePair is compared against
//! this baseline in both compression quality (Figures 4 and 5) and runtime
//! (Figure 6).

use std::time::{Duration, Instant};

use sltgrammar::derive::val_limited;
use sltgrammar::Grammar;
use treerepair::{TreeRePair, TreeRePairConfig};
use xmltree::updates::UpdateOp;

use crate::error::Result;
use crate::update::apply_updates;

/// Timing and size breakdown of one udc run.
#[derive(Debug, Clone, Copy, Default)]
pub struct UdcStats {
    /// Time spent applying the updates on the grammar.
    pub update_time: Duration,
    /// Time spent decompressing the grammar to the full tree.
    pub decompress_time: Duration,
    /// Time spent compressing the tree from scratch with TreeRePair.
    pub compress_time: Duration,
    /// Number of edges of the decompressed tree (peak space proxy).
    pub decompressed_edges: usize,
    /// Edge count of the resulting grammar.
    pub output_edges: usize,
}

impl UdcStats {
    /// Total wall-clock time of the three phases.
    pub fn total_time(&self) -> Duration {
        self.update_time + self.decompress_time + self.compress_time
    }
}

/// Maximum number of nodes the decompression step is allowed to materialize.
pub const UDC_DECOMPRESSION_LIMIT: u64 = 200_000_000;

/// Applies `ops` to (a clone of) `g`, decompresses the result and compresses it
/// from scratch with TreeRePair — the paper's udc baseline. Returns the fresh
/// grammar and a breakdown of where the time went.
pub fn update_decompress_compress(
    g: &Grammar,
    ops: &[UpdateOp],
    config: TreeRePairConfig,
) -> Result<(Grammar, UdcStats)> {
    let mut stats = UdcStats::default();
    let mut updated = g.clone();

    let t0 = Instant::now();
    apply_updates(&mut updated, ops)?;
    stats.update_time = t0.elapsed();

    let t1 = Instant::now();
    let tree = val_limited(&updated, UDC_DECOMPRESSION_LIMIT)?;
    stats.decompress_time = t1.elapsed();
    stats.decompressed_edges = tree.edge_count();

    let t2 = Instant::now();
    let (compressed, tr_stats) =
        TreeRePair::new(config).compress_binary(updated.symbols.clone(), tree);
    stats.compress_time = t2.elapsed();
    stats.output_edges = tr_stats.output_edges;

    Ok((compressed, stats))
}

/// Decompress-and-recompress without any updates — the paper's "compression
/// from scratch" reference used to measure update overheads.
pub fn recompress_from_scratch(g: &Grammar, config: TreeRePairConfig) -> Result<(Grammar, UdcStats)> {
    update_decompress_compress(g, &[], config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::SymbolTable;
    use xmltree::binary::to_binary;
    use xmltree::parse::parse_xml;

    fn compressed_doc() -> Grammar {
        let mut doc = String::from("<log>");
        for _ in 0..40 {
            doc.push_str("<e><t/><m/></e>");
        }
        doc.push_str("</log>");
        let xml = parse_xml(&doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let (g, _) = TreeRePair::default().compress_binary(symbols, bin);
        g
    }

    #[test]
    fn udc_produces_an_equivalent_small_grammar() {
        let g = compressed_doc();
        let ops = vec![
            UpdateOp::Rename {
                target: 1,
                label: "entry".to_string(),
            },
            UpdateOp::Delete { target: 4 },
        ];
        // Oracle: apply the same updates on the grammar only.
        let mut oracle = g.clone();
        crate::update::apply_updates(&mut oracle, &ops).unwrap();

        let (result, stats) = update_decompress_compress(&g, &ops, TreeRePairConfig::default()).unwrap();
        result.validate().unwrap();
        assert_eq!(fingerprint(&result), fingerprint(&oracle));
        assert_eq!(stats.output_edges, result.edge_count());
        assert!(stats.decompressed_edges >= stats.output_edges);
        assert!(stats.total_time() >= stats.compress_time);
    }

    #[test]
    fn recompress_from_scratch_preserves_the_document() {
        let g = compressed_doc();
        let (result, _) = recompress_from_scratch(&g, TreeRePairConfig::default()).unwrap();
        assert_eq!(fingerprint(&result), fingerprint(&g));
        assert!(result.edge_count() <= g.edge_count() + 2);
    }
}
