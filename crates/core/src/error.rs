//! Error types for GrammarRePair and grammar updates.

use std::fmt;

/// Errors raised by grammar recompression and update operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// A target preorder index does not exist in the derived tree.
    TargetOutOfRange {
        /// The requested 0-based preorder index.
        index: u128,
        /// Number of nodes in the derived tree.
        size: u128,
    },
    /// The targeted node cannot be updated this way (e.g. renaming a null node).
    InvalidUpdate {
        /// Description of the violation.
        detail: String,
    },
    /// A path query could not be parsed or evaluated.
    InvalidQuery {
        /// Description of the violation.
        detail: String,
    },
    /// A document id does not name a live document of the store.
    NoSuchDocument {
        /// The raw id that failed to resolve.
        id: u32,
    },
    /// An underlying grammar error (validation, derivation limit, …).
    Grammar(sltgrammar::GrammarError),
    /// An underlying XML error (fragment conversion, …).
    Xml(xmltree::XmlError),
    /// A storage operation of the durable layer failed (I/O error, or an
    /// injected fault in tests).
    Storage {
        /// Description of the failed operation.
        detail: String,
    },
    /// A wire-protocol frame failed validation (bad CRC, oversized length,
    /// unknown record kind, malformed body) — the network edge's analogue
    /// of `WalCorrupt`, raised by `core::server` / `core::client`.
    Protocol {
        /// Description of the violation.
        detail: String,
    },
    /// A write-ahead-log record failed its integrity check *before* the end
    /// of the log — genuine corruption, as opposed to the torn final record
    /// a crash legitimately leaves behind (which recovery truncates).
    WalCorrupt {
        /// Sequence number of the last intact record, 0 when none.
        lsn: u64,
        /// Byte offset of the corrupt frame in the log file.
        offset: u64,
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::TargetOutOfRange { index, size } => write!(
                f,
                "target preorder index {index} is out of range (derived tree has {size} nodes)"
            ),
            RepairError::InvalidUpdate { detail } => write!(f, "invalid update: {detail}"),
            RepairError::NoSuchDocument { id } => {
                write!(f, "document #{id} is not loaded in this store")
            }
            RepairError::InvalidQuery { detail } => write!(f, "invalid query: {detail}"),
            RepairError::Grammar(e) => write!(f, "grammar error: {e}"),
            RepairError::Xml(e) => write!(f, "xml error: {e}"),
            RepairError::Storage { detail } => write!(f, "storage error: {detail}"),
            RepairError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            RepairError::WalCorrupt { lsn, offset, detail } => write!(
                f,
                "write-ahead log corrupt at byte {offset} (last intact record: lsn {lsn}): {detail}"
            ),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<sltgrammar::GrammarError> for RepairError {
    fn from(e: sltgrammar::GrammarError) -> Self {
        RepairError::Grammar(e)
    }
}

impl From<xmltree::XmlError> for RepairError {
    fn from(e: xmltree::XmlError) -> Self {
        RepairError::Xml(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RepairError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = RepairError::TargetOutOfRange { index: 10, size: 5 };
        assert!(e.to_string().contains("10"));
        let g: RepairError = sltgrammar::GrammarError::Parse {
            line: 1,
            detail: "x".into(),
        }
        .into();
        assert!(matches!(g, RepairError::Grammar(_)));
        let x: RepairError = xmltree::XmlError::Empty.into();
        assert!(matches!(x, RepairError::Xml(_)));
    }
}
