//! Atomic updates on grammar-compressed XML (paper Section III and V-C).
//!
//! All three update operations — rename, insert-before, delete-subtree — are
//! executed directly on the grammar: the target node is made explicit in the
//! start rule by [path isolation](crate::isolate) and the operation is then a
//! local splice on the start rule's right-hand side. No decompression of the
//! document takes place; repeated updates gradually blow the grammar up, which
//! is what [`crate::repair::GrammarRePair`] undoes.

use sltgrammar::{Grammar, NodeId, NodeKind};
use xmltree::binary::to_binary;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::isolate::{isolate, IsolationStats};

/// Statistics of one grammar update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Path isolation cost.
    pub isolation: IsolationStats,
    /// Grammar edges before the update.
    pub edges_before: usize,
    /// Grammar edges after the update.
    pub edges_after: usize,
}

fn expect_element(g: &Grammar, node: NodeId) -> Result<()> {
    let kind = g.rule(g.start()).rhs.kind(node);
    match kind {
        NodeKind::Term(t) if !g.symbols.is_null(t) => Ok(()),
        NodeKind::Term(_) => Err(RepairError::InvalidUpdate {
            detail: "target node is a null node".to_string(),
        }),
        _ => Err(RepairError::InvalidUpdate {
            detail: "target node is not a terminal".to_string(),
        }),
    }
}

/// `rename(G, u, σ)`: relabels the element at preorder index `target` of the
/// derived tree with `label`.
pub fn rename(g: &mut Grammar, target: u128, label: &str) -> Result<UpdateStats> {
    if label == sltgrammar::NULL_SYMBOL_NAME {
        return Err(RepairError::InvalidUpdate {
            detail: "cannot rename a node to the null symbol".to_string(),
        });
    }
    let edges_before = g.edge_count();
    let (node, isolation) = isolate(g, target)?;
    expect_element(g, node)?;
    let term = g
        .symbols
        .intern(label, 2)
        .map_err(|_| RepairError::InvalidUpdate {
            detail: format!("label `{label}` is already used with a different rank"),
        })?;
    let start = g.start();
    g.rule_mut(start).rhs.set_kind(node, NodeKind::Term(term));
    Ok(UpdateStats {
        isolation,
        edges_before,
        edges_after: g.edge_count(),
    })
}

/// `insert(G, u, s)`: inserts the element `fragment` as a new previous sibling
/// of the node at preorder index `target` (or at that empty position when the
/// target is a null node).
pub fn insert_before(g: &mut Grammar, target: u128, fragment: &XmlTree) -> Result<UpdateStats> {
    let edges_before = g.edge_count();
    let (node, isolation) = isolate(g, target)?;
    let target_is_null = match g.rule(g.start()).rhs.kind(node) {
        NodeKind::Term(t) => g.symbols.is_null(t),
        _ => unreachable!("isolate returns terminal nodes"),
    };

    let frag_bin = to_binary(fragment, &mut g.symbols)?;
    let start = g.start();
    let rhs = &mut g.rule_mut(start).rhs;
    let frag_root = rhs.clone_subtree_from(&frag_bin, frag_bin.root());
    // The rightmost leaf of a binary-encoded element is always its trailing
    // null "next sibling" slot.
    let mut attach = frag_root;
    while let Some(&last) = rhs.children(attach).last() {
        attach = last;
    }
    rhs.replace_subtree(node, frag_root);
    if !target_is_null {
        rhs.replace_subtree(attach, node);
    }
    Ok(UpdateStats {
        isolation,
        edges_before,
        edges_after: g.edge_count(),
    })
}

/// `delete(G, u)`: deletes the element subtree rooted at preorder index
/// `target`, splicing its following siblings into its place. Rules that become
/// unreachable are garbage collected.
pub fn delete(g: &mut Grammar, target: u128) -> Result<UpdateStats> {
    let edges_before = g.edge_count();
    let (node, isolation) = isolate(g, target)?;
    expect_element(g, node)?;
    let start = g.start();
    let rhs = &mut g.rule_mut(start).rhs;
    let next_sibling = rhs.children(node)[1];
    rhs.detach(next_sibling);
    rhs.replace_subtree(node, next_sibling);
    g.gc();
    Ok(UpdateStats {
        isolation,
        edges_before,
        edges_after: g.edge_count(),
    })
}

/// Applies one [`UpdateOp`] (shared with the uncompressed reference semantics)
/// to the grammar.
pub fn apply_update(g: &mut Grammar, op: &UpdateOp) -> Result<UpdateStats> {
    match op {
        UpdateOp::Rename { target, label } => rename(g, *target as u128, label),
        UpdateOp::InsertBefore { target, fragment } => {
            insert_before(g, *target as u128, fragment)
        }
        UpdateOp::Delete { target } => delete(g, *target as u128),
    }
}

/// Applies a sequence of updates in order, returning per-update statistics.
pub fn apply_updates(g: &mut Grammar, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>> {
    ops.iter().map(|op| apply_update(g, op)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::SymbolTable;
    use treerepair::TreeRePair;
    use xmltree::binary::{from_binary, to_binary, tree_fingerprint};
    use xmltree::parse::parse_xml;
    use xmltree::updates as reference;

    /// Compresses a document and returns both the grammar and the uncompressed
    /// binary tree (the reference for oracle comparisons).
    fn setup(doc: &str) -> (Grammar, sltgrammar::RhsTree, SymbolTable) {
        let xml = parse_xml(doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let (g, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        (g, bin, symbols)
    }

    fn assert_equivalent(g: &Grammar, bin: &sltgrammar::RhsTree, symbols: &SymbolTable) {
        assert_eq!(fingerprint(g), tree_fingerprint(bin, symbols));
    }

    const DOC: &str = "<lib><book><ch/><ch/></book><book><ch/><ch/></book>\
                       <book><ch/><ch/></book><book><ch/><ch/></book></lib>";

    #[test]
    fn rename_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        // Rename the second book (find its preorder index in the binary tree).
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        rename(&mut g, idx as u128, "magazine").unwrap();
        let op = UpdateOp::Rename {
            target: idx,
            label: "magazine".to_string(),
        };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
    }

    #[test]
    fn insert_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        let fragment = parse_xml("<appendix><note/></appendix>").unwrap();
        // Insert before the third book.
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(2)
            .unwrap();
        insert_before(&mut g, idx as u128, &fragment).unwrap();
        let op = UpdateOp::InsertBefore {
            target: idx,
            fragment,
        };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
    }

    #[test]
    fn insert_at_null_position_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        let fragment = parse_xml("<toc/>").unwrap();
        // First null node in preorder = the empty child list of the first <ch/>.
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .find(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.is_null(t)))
            .map(|(i, _)| i)
            .unwrap();
        insert_before(&mut g, idx as u128, &fragment).unwrap();
        let op = UpdateOp::InsertBefore {
            target: idx,
            fragment,
        };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
    }

    #[test]
    fn delete_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        delete(&mut g, idx as u128).unwrap();
        let op = UpdateOp::Delete { target: idx };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
        // The document lost one book element and its two chapters.
        let back = from_binary(&bin, &symbols).unwrap();
        assert_eq!(back.preorder().len(), 13 - 3);
    }

    #[test]
    fn rename_rejects_null_targets_and_labels() {
        let (mut g, bin, symbols) = setup(DOC);
        let null_idx = bin
            .preorder()
            .iter()
            .enumerate()
            .find(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.is_null(t)))
            .map(|(i, _)| i)
            .unwrap();
        assert!(rename(&mut g, null_idx as u128, "x").is_err());
        assert!(rename(&mut g, 0, "#").is_err());
        assert!(matches!(
            rename(&mut g, 10_000, "x"),
            Err(RepairError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn update_sequences_blow_the_grammar_up_only_moderately() {
        // A sequence of renames on a well-compressed document: each isolation
        // grows the grammar, but never beyond a factor 2 per update (Lemma 1);
        // in aggregate the blow-up stays far below repeated doubling because
        // later isolations reuse already-isolated paths.
        let mut doc = String::from("<log>");
        for _ in 0..50 {
            doc.push_str("<e><t/><m/></e>");
        }
        doc.push_str("</log>");
        let (mut g, bin, symbols) = setup(&doc);
        let compressed = g.edge_count();
        let element_positions: Vec<usize> = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t)))
            .map(|(i, _)| i)
            .collect();
        for (k, &pos) in element_positions.iter().step_by(7).enumerate() {
            rename(&mut g, pos as u128, &format!("fresh{k}")).unwrap();
        }
        g.validate().unwrap();
        assert!(g.edge_count() > compressed);
        // Repeated isolation can at worst unfold the document; it never exceeds
        // (roughly) the uncompressed binary tree size.
        let uncompressed = bin.edge_count();
        assert!(g.edge_count() <= uncompressed + 10 * compressed);
    }
}
