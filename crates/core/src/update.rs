//! Atomic and batched updates on grammar-compressed XML (paper Section III
//! and V-C).
//!
//! All three update operations — rename, insert-before, delete-subtree — are
//! executed directly on the grammar: the target node is made explicit in the
//! start rule by [path isolation](crate::isolate) and the operation is then a
//! local splice on the start rule's right-hand side. No decompression of the
//! document takes place; repeated updates gradually blow the grammar up, which
//! is what [`crate::repair::GrammarRePair`] undoes.
//!
//! # Batched updates
//!
//! [`apply_batch`] executes a *sequence* of operations (each addressed, like
//! the sequential API, against the document state produced by the preceding
//! operations) without paying one full isolation per operation. One
//! [`IsolationBatch`] session spans the whole call — `own_sizes` /
//! `segment_sizes` are computed once per batch (splices only edit the start
//! rule, so they stay valid) and the start rule's subtree-size table is
//! patched through every splice instead of recomputed. The sequence is cut
//! into **chunks**; per chunk:
//!
//! 1. every target is remapped from its sequential coordinates back to the
//!    chunk-start document coordinates through a signed-shift **region
//!    map**: fragments inserted earlier in the chunk shift later
//!    targets down, subtrees deleted earlier in the chunk shift them up, and
//!    a delete whose removed base range encloses earlier regions swallows
//!    them. Resolution is a binary search (`O(log k)` per op in the number
//!    of regions); a delete's removed base size comes from the session's
//!    maintained subtree-size table, so no sizes are ever re-derived,
//! 2. all remapped targets are isolated through the shared session — shared
//!    path prefixes are inlined once per batch, keeping the Lemma-1
//!    factor-two growth bound per *distinct* root-to-target path,
//! 3. the splices run in operation order against the isolated node ids
//!    (valid across splices because arena ids are never recycled), each
//!    splice patching the session's size table as it lands.
//!
//! A chunk ends only when an operation targets a node *inside* a fragment
//! inserted earlier in the same chunk (its pre-chunk coordinate does not
//! exist) or deletes at a position a null node occupies (the splice is
//! planned, fails like the sequential API would, and nothing past it is);
//! the next chunk then starts from the updated grammar. Deletes themselves
//! no longer flush: mixed insert/delete streams — the paper's 90/10 workload
//! and FLUX-style functional update programs — batch at full length.
//! Unreachable rules are garbage collected once per chunk that deleted, not
//! per delete.

use sltgrammar::{Grammar, NodeId, NodeKind};
use xmltree::binary::to_binary;
use xmltree::updates::UpdateOp;
use xmltree::XmlTree;

use crate::error::{RepairError, Result};
use crate::isolate::{isolate, IsolationBatch, IsolationStats};

/// Statistics of one grammar update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Path isolation cost.
    pub isolation: IsolationStats,
    /// Grammar edges before the update.
    pub edges_before: usize,
    /// Grammar edges after the update.
    pub edges_after: usize,
}

fn expect_element(g: &Grammar, node: NodeId) -> Result<()> {
    let kind = g.rule(g.start()).rhs.kind(node);
    match kind {
        NodeKind::Term(t) if !g.symbols.is_null(t) => Ok(()),
        NodeKind::Term(_) => Err(RepairError::InvalidUpdate {
            detail: "target node is a null node".to_string(),
        }),
        _ => Err(RepairError::InvalidUpdate {
            detail: "target node is not a terminal".to_string(),
        }),
    }
}

/// Splice part of `rename`: relabels the already-isolated start-rule node.
fn rename_node(g: &mut Grammar, node: NodeId, label: &str) -> Result<()> {
    if label == sltgrammar::NULL_SYMBOL_NAME {
        return Err(RepairError::InvalidUpdate {
            detail: "cannot rename a node to the null symbol".to_string(),
        });
    }
    expect_element(g, node)?;
    let term = g
        .symbols
        .intern(label, 2)
        .map_err(|_| RepairError::InvalidUpdate {
            detail: format!("label `{label}` is already used with a different rank"),
        })?;
    let start = g.start();
    g.rule_mut(start).rhs.set_kind(node, NodeKind::Term(term));
    Ok(())
}

/// Whether the already-isolated start-rule node is the null leaf.
fn node_is_null(g: &Grammar, node: NodeId) -> bool {
    match g.rule(g.start()).rhs.kind(node) {
        NodeKind::Term(t) => g.symbols.is_null(t),
        _ => unreachable!("isolation returns terminal nodes"),
    }
}

/// Splice part of `insert_before`: grafts `fragment` before the
/// already-isolated start-rule node. Returns the graft root and the number of
/// derived nodes the document grew by (`2n` for an n-element fragment,
/// whether the target was an element or a consumed null).
fn insert_node(g: &mut Grammar, node: NodeId, fragment: &XmlTree) -> Result<(NodeId, u128)> {
    let target_is_null = node_is_null(g, node);
    let frag_bin = to_binary(fragment, &mut g.symbols)?;
    let start = g.start();
    let rhs = &mut g.rule_mut(start).rhs;
    let frag_root = rhs.clone_subtree_from(&frag_bin, frag_bin.root());
    // The rightmost leaf of a binary-encoded element is always its trailing
    // null "next sibling" slot.
    let mut attach = frag_root;
    while let Some(&last) = rhs.children(attach).last() {
        attach = last;
    }
    rhs.replace_subtree(node, frag_root);
    if !target_is_null {
        rhs.replace_subtree(attach, node);
    }
    Ok((frag_root, 2 * fragment.node_count() as u128))
}

/// Splice part of `delete`: removes the element subtree at the
/// already-isolated start-rule node. The caller is responsible for `gc`.
fn delete_node(g: &mut Grammar, node: NodeId) -> Result<()> {
    expect_element(g, node)?;
    let start = g.start();
    let rhs = &mut g.rule_mut(start).rhs;
    let next_sibling = rhs.children(node)[1];
    rhs.detach(next_sibling);
    rhs.replace_subtree(node, next_sibling);
    Ok(())
}

/// `rename(G, u, σ)`: relabels the element at preorder index `target` of the
/// derived tree with `label`.
pub fn rename(g: &mut Grammar, target: u128, label: &str) -> Result<UpdateStats> {
    if label == sltgrammar::NULL_SYMBOL_NAME {
        return Err(RepairError::InvalidUpdate {
            detail: "cannot rename a node to the null symbol".to_string(),
        });
    }
    let edges_before = g.edge_count();
    let (node, isolation) = isolate(g, target)?;
    rename_node(g, node, label)?;
    Ok(UpdateStats {
        isolation,
        edges_before,
        edges_after: g.edge_count(),
    })
}

/// `insert(G, u, s)`: inserts the element `fragment` as a new previous sibling
/// of the node at preorder index `target` (or at that empty position when the
/// target is a null node).
pub fn insert_before(g: &mut Grammar, target: u128, fragment: &XmlTree) -> Result<UpdateStats> {
    let edges_before = g.edge_count();
    let (node, isolation) = isolate(g, target)?;
    insert_node(g, node, fragment)?;
    Ok(UpdateStats {
        isolation,
        edges_before,
        edges_after: g.edge_count(),
    })
}

/// `delete(G, u)`: deletes the element subtree rooted at preorder index
/// `target`, splicing its following siblings into its place. Rules that become
/// unreachable are garbage collected.
pub fn delete(g: &mut Grammar, target: u128) -> Result<UpdateStats> {
    let edges_before = g.edge_count();
    let (node, isolation) = isolate(g, target)?;
    delete_node(g, node)?;
    g.gc();
    Ok(UpdateStats {
        isolation,
        edges_before,
        edges_after: g.edge_count(),
    })
}

/// Applies one [`UpdateOp`] (shared with the uncompressed reference semantics)
/// to the grammar.
pub fn apply_update(g: &mut Grammar, op: &UpdateOp) -> Result<UpdateStats> {
    match op {
        UpdateOp::Rename { target, label } => rename(g, *target as u128, label),
        UpdateOp::InsertBefore { target, fragment } => {
            insert_before(g, *target as u128, fragment)
        }
        UpdateOp::Delete { target } => delete(g, *target as u128),
    }
}

/// Applies a sequence of updates in order, returning per-update statistics.
pub fn apply_updates(g: &mut Grammar, ops: &[UpdateOp]) -> Result<Vec<UpdateStats>> {
    ops.iter().map(|op| apply_update(g, op)).collect()
}

/// Statistics of one [`apply_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of operations applied.
    pub ops: usize,
    /// Number of chunks the sequence was cut into (each chunk pays one
    /// isolation-table computation).
    pub chunks: usize,
    /// Total isolation cost over all chunks.
    pub isolation: IsolationStats,
    /// Grammar edges before the batch.
    pub edges_before: usize,
    /// Grammar edges after the batch.
    pub edges_after: usize,
}

/// One splice the current chunk has already planned, in the chunk's evolving
/// sequential coordinates.
struct Region {
    /// Evolving preorder position where the splice takes effect.
    start: u128,
    /// Length of the freshly inserted range `start..start + fresh`: fragment
    /// positions with no chunk-start coordinate (0 for deletes). An insert at
    /// a null position splices the fragment *over* the null leaf, so the
    /// whole fragment including the consumed slot is fresh.
    fresh: u128,
    /// What this splice adds to the base coordinate of every evolving
    /// position at or beyond `start + fresh`: `-(fresh - consumed)` for an
    /// insert, `+removed base size` for a delete.
    shift: i128,
    /// Running sum of `shift` over this and every earlier region.
    cum: i128,
}

/// The chunk planner's evolving coordinate map: a signed-shift region table
/// translating targets from the chunk's evolving sequential coordinates back
/// to the chunk-start document coordinates, across both inserts and deletes.
///
/// Regions are kept sorted by `start`. Two invariants carry every proof
/// below: fresh ranges never contain another region's `start` (a target
/// inside a fresh range is unresolvable, so no later splice lands there),
/// and the chunk-start anchors `start + cum-of-earlier-regions` are
/// non-decreasing along the vector.
#[derive(Default)]
struct RegionMap {
    regions: Vec<Region>,
}

impl RegionMap {
    /// Maps the evolving target `t` back to chunk-start coordinates, or
    /// `None` if it addresses a node inside a fragment inserted earlier in
    /// the chunk (no chunk-start coordinate exists). `O(log k)` in the
    /// number of regions.
    fn resolve(&self, t: u128) -> Option<u128> {
        let idx = self.regions.partition_point(|r| r.start <= t);
        let Some(r) = idx.checked_sub(1).map(|i| &self.regions[i]) else {
            return Some(t);
        };
        if t < r.start + r.fresh {
            return None;
        }
        // Every region up to `idx` applies its shift: their fresh ranges all
        // end at or before `t` (they cannot contain `t` — see the struct
        // invariants — nor reach past a later region's start).
        Some((t as i128 + r.cum) as u128)
    }

    /// Records an insert of `len` evolving positions at `t`, where `consumed`
    /// (zero or one) of them replace the pre-splice node at `t` (a consumed
    /// null). Binary-searched insertion; no re-sort.
    fn note_insert(&mut self, t: u128, len: u128, consumed: u128) {
        let idx = self.regions.partition_point(|r| r.start <= t);
        for r in &mut self.regions[idx..] {
            r.start += len - consumed;
        }
        self.regions.insert(
            idx,
            Region {
                start: t,
                fresh: len,
                shift: -((len - consumed) as i128),
                cum: 0,
            },
        );
        self.recum(idx);
    }

    /// Records a delete at evolving position `t` — which the caller resolved
    /// to the chunk-start coordinate `base` — removing a subtree whose
    /// chunk-start size is `base_len`. Regions anchored inside the removed
    /// base range `base..base + base_len` (fragments inserted into, and
    /// deletes already taken out of, the now-deleted subtree) are swallowed
    /// by it: the recorded shift is the full chunk-start size, and the
    /// swallowed regions' shifts stop applying.
    fn note_delete(&mut self, t: u128, base: u128, base_len: u128) {
        let end = (base + base_len) as i128;
        let lo = self.regions.partition_point(|r| r.start <= t);
        // Anchors are non-decreasing and regions with `start <= t` anchor
        // strictly before `base`, so the swallowed regions are exactly the
        // run starting at `lo` whose anchors lie inside the removed range.
        let mut hi = lo;
        let mut evolving_len = base_len as i128;
        while hi < self.regions.len() {
            let cum_before = if hi == 0 { 0 } else { self.regions[hi - 1].cum };
            let r = &self.regions[hi];
            if r.start as i128 + cum_before >= end {
                break;
            }
            // A swallowed insert takes its net fresh growth with it; a
            // swallowed delete had already taken its positions out.
            evolving_len -= r.shift;
            hi += 1;
        }
        self.regions.drain(lo..hi);
        let evolving_len = evolving_len as u128;
        for r in &mut self.regions[lo..] {
            r.start -= evolving_len;
        }
        self.regions.insert(
            lo,
            Region {
                start: t,
                fresh: 0,
                shift: base_len as i128,
                cum: 0,
            },
        );
        self.recum(lo);
    }

    /// Rebuilds the cumulative shifts from `from` to the end.
    fn recum(&mut self, from: usize) {
        let mut acc = if from == 0 {
            0
        } else {
            self.regions[from - 1].cum
        };
        for r in &mut self.regions[from..] {
            acc += r.shift;
            r.cum = acc;
        }
    }
}

/// Applies a sequence of updates with **batched path isolation**: operations
/// use the same sequential addressing as [`apply_updates`] (each target refers
/// to the document produced by the preceding operations), but
/// `own_sizes`/`segment_sizes` are computed once per batch and nonterminal
/// references on shared path prefixes are inlined once instead of per
/// operation. See the module docs for the chunking rules. Unreachable rules
/// are garbage collected once per deleting chunk, not per delete.
///
/// The resulting document is identical to [`apply_updates`]' (asserted
/// byte-for-byte by the differential update-oracle harness); the grammars may
/// differ structurally because the batch isolates eagerly.
///
/// # Errors
///
/// Targets are validated while a chunk is planned, so an out-of-range target
/// aborts its **whole chunk** before any of that chunk's splices run
/// (operations of earlier chunks remain applied). Errors raised by the
/// splices themselves (renaming or deleting a null node, a label rank
/// conflict) leave the chunk's already-spliced prefix applied, like the
/// sequential API would.
pub fn apply_batch(g: &mut Grammar, ops: &[UpdateOp]) -> Result<BatchStats> {
    let mut stats = BatchStats {
        ops: ops.len(),
        edges_before: g.edge_count(),
        edges_after: g.edge_count(),
        ..BatchStats::default()
    };
    // One isolation session for the whole batch: splices only edit the start
    // rule, so the per-rule tables survive every chunk (and the per-chunk
    // `gc`, which never renumbers surviving rules); the subtree-size table
    // and derived size are patched through each splice below.
    let mut batch = IsolationBatch::new(g);
    let mut i = 0;
    while i < ops.len() {
        // Plan + isolate one chunk against the current grammar. Isolation
        // never changes the derived tree, so chunk-start coordinates stay
        // valid while the chunk's targets are isolated one after another.
        let mut regions = RegionMap::default();
        let mut planned: Vec<(usize, NodeId)> = Vec::new();
        let mut chunk_deletes = false;
        let mut j = i;
        while j < ops.len() {
            let t = ops[j].target() as u128;
            let Some(base) = regions.resolve(t) else {
                break; // target lives inside a fragment this chunk inserted
            };
            let node = batch.isolate_one(g, base)?;
            planned.push((j, node));
            j += 1;
            match &ops[j - 1] {
                UpdateOp::Rename { .. } => {}
                UpdateOp::InsertBefore { fragment, .. } => {
                    // The binary encoding of an n-element fragment has 2n+1
                    // nodes. Before an element, its trailing null is replaced
                    // by the old subtree (2n fresh positions); at a null
                    // position the whole fragment is fresh and the null is
                    // consumed (2n+1 fresh positions, net shift still 2n).
                    let consumed = u128::from(node_is_null(g, node));
                    let len = 2 * fragment.node_count() as u128 + consumed;
                    regions.note_insert(t, len, consumed);
                }
                UpdateOp::Delete { .. } => {
                    chunk_deletes = true;
                    if node_is_null(g, node) {
                        // The splice will fail on the null target exactly
                        // like the sequential API; plan nothing past it.
                        break;
                    }
                    // The removed preorder range is the element plus its
                    // first-child content, contiguous in chunk-start
                    // coordinates.
                    let content = g.rule(g.start()).rhs.children(node)[0];
                    regions.note_delete(t, base, 1 + batch.subtree_size(content));
                }
            }
        }
        stats.chunks += 1;

        // Splice in operation order. Node ids of surviving nodes stay valid
        // across splices (the arena never recycles ids), and no operation of
        // this chunk addresses a node an earlier splice removed: consumed
        // nulls and deleted subtrees are unreachable by construction — a
        // later target never resolves into a removed base range.
        for &(k, node) in &planned {
            match &ops[k] {
                UpdateOp::Rename { label, .. } => rename_node(g, node, label)?,
                UpdateOp::InsertBefore { fragment, .. } => {
                    let (frag_root, grown) = insert_node(g, node, fragment)?;
                    batch.note_inserted(g, frag_root, grown);
                }
                UpdateOp::Delete { .. } => {
                    expect_element(g, node)?;
                    let start = g.start();
                    let parent = g.rule(start).rhs.parent(node);
                    let content = g.rule(start).rhs.children(node)[0];
                    // Splice-time size: earlier splices of this chunk may
                    // have grown or shrunk the subtree being removed.
                    let removed = 1 + batch.subtree_size(content);
                    delete_node(g, node)?;
                    batch.note_removed(g, parent, removed);
                }
            }
        }
        if chunk_deletes {
            g.gc();
        }
        i = j;
    }
    stats.isolation = batch.stats();
    stats.edges_after = g.edge_count();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::SymbolTable;
    use treerepair::TreeRePair;
    use xmltree::binary::{from_binary, to_binary, tree_fingerprint};
    use xmltree::parse::parse_xml;
    use xmltree::updates as reference;

    /// Compresses a document and returns both the grammar and the uncompressed
    /// binary tree (the reference for oracle comparisons).
    fn setup(doc: &str) -> (Grammar, sltgrammar::RhsTree, SymbolTable) {
        let xml = parse_xml(doc).unwrap();
        let mut symbols = SymbolTable::new();
        let bin = to_binary(&xml, &mut symbols).unwrap();
        let (g, _) = TreeRePair::default().compress_binary(symbols.clone(), bin.clone());
        (g, bin, symbols)
    }

    fn assert_equivalent(g: &Grammar, bin: &sltgrammar::RhsTree, symbols: &SymbolTable) {
        assert_eq!(fingerprint(g), tree_fingerprint(bin, symbols));
    }

    const DOC: &str = "<lib><book><ch/><ch/></book><book><ch/><ch/></book>\
                       <book><ch/><ch/></book><book><ch/><ch/></book></lib>";

    #[test]
    fn rename_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        // Rename the second book (find its preorder index in the binary tree).
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        rename(&mut g, idx as u128, "magazine").unwrap();
        let op = UpdateOp::Rename {
            target: idx,
            label: "magazine".to_string(),
        };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
    }

    #[test]
    fn insert_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        let fragment = parse_xml("<appendix><note/></appendix>").unwrap();
        // Insert before the third book.
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(2)
            .unwrap();
        insert_before(&mut g, idx as u128, &fragment).unwrap();
        let op = UpdateOp::InsertBefore {
            target: idx,
            fragment,
        };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
    }

    #[test]
    fn insert_at_null_position_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        let fragment = parse_xml("<toc/>").unwrap();
        // First null node in preorder = the empty child list of the first <ch/>.
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .find(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.is_null(t)))
            .map(|(i, _)| i)
            .unwrap();
        insert_before(&mut g, idx as u128, &fragment).unwrap();
        let op = UpdateOp::InsertBefore {
            target: idx,
            fragment,
        };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
    }

    #[test]
    fn delete_matches_reference_semantics() {
        let (mut g, mut bin, mut symbols) = setup(DOC);
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        delete(&mut g, idx as u128).unwrap();
        let op = UpdateOp::Delete { target: idx };
        reference::apply_update(&mut bin, &mut symbols, &op).unwrap();
        g.validate().unwrap();
        assert_equivalent(&g, &bin, &symbols);
        // The document lost one book element and its two chapters.
        let back = from_binary(&bin, &symbols).unwrap();
        assert_eq!(back.preorder().len(), 13 - 3);
    }

    #[test]
    fn rename_rejects_null_targets_and_labels() {
        let (mut g, bin, symbols) = setup(DOC);
        let null_idx = bin
            .preorder()
            .iter()
            .enumerate()
            .find(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.is_null(t)))
            .map(|(i, _)| i)
            .unwrap();
        assert!(rename(&mut g, null_idx as u128, "x").is_err());
        assert!(rename(&mut g, 0, "#").is_err());
        assert!(matches!(
            rename(&mut g, 10_000, "x"),
            Err(RepairError::TargetOutOfRange { .. })
        ));
    }

    /// Applies `ops` sequentially to the reference binary tree and returns its
    /// fingerprint.
    fn reference_after(
        bin: &sltgrammar::RhsTree,
        symbols: &SymbolTable,
        ops: &[UpdateOp],
    ) -> sltgrammar::fingerprint::Fingerprint {
        let mut bin = bin.clone();
        let mut symbols = symbols.clone();
        for op in ops {
            reference::apply_update(&mut bin, &mut symbols, op).unwrap();
        }
        tree_fingerprint(&bin, &symbols)
    }

    #[test]
    fn batched_renames_match_the_sequential_semantics_in_one_chunk() {
        let (mut g, bin, symbols) = setup(DOC);
        let elements: Vec<usize> = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t)))
            .map(|(i, _)| i)
            .collect();
        let ops: Vec<UpdateOp> = elements
            .iter()
            .step_by(2)
            .enumerate()
            .map(|(k, &idx)| UpdateOp::Rename {
                target: idx,
                label: format!("fresh{k}"),
            })
            .collect();
        let expected = reference_after(&bin, &symbols, &ops);
        let stats = apply_batch(&mut g, &ops).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), expected);
        assert_eq!(stats.ops, ops.len());
        assert_eq!(stats.chunks, 1, "renames never cut the chunk");
    }

    #[test]
    fn batched_inserts_remap_later_targets_through_earlier_fragments() {
        let (mut g, bin, symbols) = setup(DOC);
        // Two inserts before the same element: the second op's target is the
        // element's shifted coordinate, exercising the inserted-region table.
        let idx = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        let frag_a = parse_xml("<a><p/></a>").unwrap(); // 2 elements -> shift 4
        let frag_b = parse_xml("<b/>").unwrap();
        let ops = vec![
            UpdateOp::InsertBefore {
                target: idx,
                fragment: frag_a,
            },
            UpdateOp::InsertBefore {
                target: idx + 4,
                fragment: frag_b,
            },
            UpdateOp::Rename {
                target: idx + 4 + 2,
                label: "magazine".to_string(),
            },
        ];
        let expected = reference_after(&bin, &symbols, &ops);
        let stats = apply_batch(&mut g, &ops).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), expected);
        assert_eq!(stats.chunks, 1, "mappable inserts stay in one chunk");
    }

    #[test]
    fn targets_in_fresh_fragments_start_a_new_chunk() {
        let (mut g, bin, symbols) = setup(DOC);
        let books: Vec<usize> = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .collect();
        let frag = parse_xml("<x><y/></x>").unwrap();
        let ops = vec![
            UpdateOp::InsertBefore {
                target: books[0],
                fragment: frag,
            },
            UpdateOp::Delete { target: books[0] + 1 }, // <y/> inside the fresh fragment
            UpdateOp::Rename {
                target: books[0],
                label: "shelf".to_string(),
            },
        ];
        let expected = reference_after(&bin, &symbols, &ops);
        let stats = apply_batch(&mut g, &ops).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), expected);
        // Op 2 targets inside the fragment op 1 inserted, so the first chunk
        // holds only op 1; the delete and the rename share the second chunk
        // (deletes no longer flush).
        assert_eq!(stats.chunks, 2);
    }

    #[test]
    fn batched_deletes_keep_later_targets_in_the_same_chunk() {
        let (mut g, bin, symbols) = setup(DOC);
        let books: Vec<usize> = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .collect();
        // A book subtree occupies 6 binary preorder positions (the element
        // plus its 2-chapter content). Delete the second book, rename the
        // third (which slid into its place), then delete the fourth at its
        // shifted coordinate — all resolvable, so all one chunk.
        assert_eq!(books[2] - books[1], 6);
        let ops = vec![
            UpdateOp::Delete { target: books[1] },
            UpdateOp::Rename {
                target: books[1],
                label: "promoted".to_string(),
            },
            UpdateOp::Delete { target: books[3] - 6 },
        ];
        let expected = reference_after(&bin, &symbols, &ops);
        let stats = apply_batch(&mut g, &ops).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), expected);
        assert_eq!(stats.chunks, 1, "deletes no longer cut the chunk");
    }

    #[test]
    fn deleting_a_subtree_swallows_regions_planned_inside_it() {
        let (mut g, bin, symbols) = setup(DOC);
        let books: Vec<usize> = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.name(t) == "book"))
            .map(|(i, _)| i)
            .collect();
        let ops = vec![
            // Grow the second book's content by a fresh element...
            UpdateOp::InsertBefore {
                target: books[1] + 1,
                fragment: parse_xml("<x/>").unwrap(),
            },
            // ...delete a chapter inside it (at its shifted coordinate)...
            UpdateOp::Delete { target: books[1] + 3 },
            // ...then delete the whole book: the removed range encloses both
            // earlier regions, and the rename after it must still resolve to
            // the third book.
            UpdateOp::Delete { target: books[1] },
            UpdateOp::Rename {
                target: books[1],
                label: "survivor".to_string(),
            },
        ];
        let expected = reference_after(&bin, &symbols, &ops);
        let stats = apply_batch(&mut g, &ops).unwrap();
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), expected);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn deleting_at_a_null_position_fails_like_the_sequential_api() {
        let (mut g, bin, symbols) = setup(DOC);
        let null_idx = bin
            .preorder()
            .iter()
            .enumerate()
            .find(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if symbols.is_null(t)))
            .map(|(i, _)| i)
            .unwrap();
        // The rename before the null delete is spliced (the chunk's prefix
        // stays applied); the op after it is never planned.
        let ops = vec![
            UpdateOp::Rename {
                target: 0,
                label: "shelf".to_string(),
            },
            UpdateOp::Delete { target: null_idx },
            UpdateOp::Rename {
                target: 0,
                label: "never".to_string(),
            },
        ];
        let err = apply_batch(&mut g, &ops).unwrap_err();
        assert!(matches!(err, RepairError::InvalidUpdate { .. }));
        g.validate().unwrap();
        let expected = reference_after(
            &bin,
            &symbols,
            &[UpdateOp::Rename {
                target: 0,
                label: "shelf".to_string(),
            }],
        );
        assert_eq!(fingerprint(&g), expected);
    }

    #[test]
    fn empty_and_singleton_batches_behave_like_the_sequential_api() {
        let (mut g, bin, symbols) = setup(DOC);
        let stats = apply_batch(&mut g, &[]).unwrap();
        assert_eq!(stats.ops, 0);
        assert_eq!(stats.chunks, 0);
        let op = UpdateOp::Rename {
            target: 0,
            label: "shelf".to_string(),
        };
        let mut sequential = g.clone();
        apply_update(&mut sequential, &op).unwrap();
        apply_batch(&mut g, std::slice::from_ref(&op)).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&sequential));
        assert_eq!(
            fingerprint(&g),
            reference_after(&bin, &symbols, std::slice::from_ref(&op))
        );
    }

    #[test]
    fn batched_updates_reject_invalid_targets() {
        let (mut g, _, _) = setup(DOC);
        assert!(matches!(
            apply_batch(
                &mut g,
                &[UpdateOp::Delete { target: 100_000 }],
            ),
            Err(RepairError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn update_sequences_blow_the_grammar_up_only_moderately() {
        // A sequence of renames on a well-compressed document: each isolation
        // grows the grammar, but never beyond a factor 2 per update (Lemma 1);
        // in aggregate the blow-up stays far below repeated doubling because
        // later isolations reuse already-isolated paths.
        let mut doc = String::from("<log>");
        for _ in 0..50 {
            doc.push_str("<e><t/><m/></e>");
        }
        doc.push_str("</log>");
        let (mut g, bin, symbols) = setup(&doc);
        let compressed = g.edge_count();
        let element_positions: Vec<usize> = bin
            .preorder()
            .iter()
            .enumerate()
            .filter(|(_, &n)| matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t)))
            .map(|(i, _)| i)
            .collect();
        for (k, &pos) in element_positions.iter().step_by(7).enumerate() {
            rename(&mut g, pos as u128, &format!("fresh{k}")).unwrap();
        }
        g.validate().unwrap();
        assert!(g.edge_count() > compressed);
        // Repeated isolation can at worst unfold the document; it never exceeds
        // (roughly) the uncompressed binary tree size.
        let uncompressed = bin.edge_count();
        assert!(g.edge_count() <= uncompressed + 10 * compressed);
    }
}
