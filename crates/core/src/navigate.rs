//! Read-only navigation over the derived tree of a grammar — no decompression.
//!
//! The paper motivates grammar-compressed XML as a drop-in replacement for
//! memory-hungry DOM trees; reads must therefore work directly on the grammar.
//! This module provides a [`Cursor`] that walks the derived binary tree
//! `val(G)` by maintaining a stack of rule frames: descending into a
//! nonterminal reference pushes the callee rule, reaching a formal parameter
//! pops back into the caller and continues in the corresponding argument
//! subtree. Navigation therefore costs `O(grammar depth)` per step and never
//! modifies the grammar (unlike [`crate::isolate`], which inlines rules as a
//! side effect) and never materializes `val(G)` (unlike
//! [`sltgrammar::derive::val`], which is exponential in the worst case).
//!
//! On top of the binary-tree cursor, the module offers document-view
//! navigation (first child / next sibling / parent of *elements*), a streaming
//! preorder iterator over terminal labels, and usage-weighted label statistics
//! computed in a single pass over the grammar.

use std::collections::HashMap;

use sltgrammar::{Grammar, NodeId, NodeKind, NtId, TermId};

/// One stack frame of a [`Cursor`]: a rule and the current node inside its
/// right-hand side. For every frame except the innermost, `node` is the
/// nonterminal reference whose callee is the frame above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    nt: NtId,
    node: NodeId,
}

/// A read-only position in the derived binary tree `val(G)`.
///
/// The cursor always rests on a *terminal* node of the derived tree; moving
/// through nonterminal references and parameters is handled internally.
#[derive(Debug, Clone)]
pub struct Cursor<'g> {
    grammar: &'g Grammar,
    stack: Vec<Frame>,
}

impl<'g> Cursor<'g> {
    /// Creates a cursor positioned at the root of the derived tree.
    pub fn new(grammar: &'g Grammar) -> Self {
        let start = grammar.start();
        let mut cursor = Cursor {
            grammar,
            stack: vec![Frame {
                nt: start,
                node: grammar.rule(start).rhs.root(),
            }],
        };
        cursor.resolve();
        cursor
    }

    fn rhs(&self, nt: NtId) -> &'g sltgrammar::RhsTree {
        &self.grammar.rule(nt).rhs
    }

    /// Moves the innermost position through nonterminal references and
    /// parameters until it rests on a terminal node.
    fn resolve(&mut self) {
        loop {
            let top = *self.stack.last().expect("cursor stack is never empty");
            match self.rhs(top.nt).kind(top.node) {
                NodeKind::Term(_) => return,
                NodeKind::Nt(callee) => {
                    self.stack.push(Frame {
                        nt: callee,
                        node: self.rhs(callee).root(),
                    });
                }
                NodeKind::Param(j) => {
                    // Continue in the j-th argument of the call site one frame below.
                    self.stack.pop();
                    let caller = *self.stack.last().expect("parameters only occur in callees");
                    let arg = self.rhs(caller.nt).children(caller.node)[j as usize];
                    self.stack.last_mut().expect("non-empty").node = arg;
                }
            }
        }
    }

    /// Terminal symbol at the current position.
    pub fn term(&self) -> TermId {
        let top = self.stack.last().expect("cursor stack is never empty");
        match self.rhs(top.nt).kind(top.node) {
            NodeKind::Term(t) => t,
            _ => unreachable!("cursor always rests on a terminal"),
        }
    }

    /// Label at the current position.
    pub fn label(&self) -> &'g str {
        self.grammar.symbols.name(self.term())
    }

    /// Whether the current node is the null (`#` / `⊥`) leaf.
    pub fn is_null(&self) -> bool {
        self.grammar.symbols.is_null(self.term())
    }

    /// Rank (number of children in the derived tree) of the current node.
    pub fn rank(&self) -> usize {
        self.grammar.symbols.rank(self.term())
    }

    /// Descends to the `i`-th child of the current node. Returns `false` (and
    /// stays put) if the current node has fewer than `i + 1` children.
    pub fn down(&mut self, i: usize) -> bool {
        if i >= self.rank() {
            return false;
        }
        let top = self.stack.last_mut().expect("cursor stack is never empty");
        let child = self.grammar.rule(top.nt).rhs.children(top.node)[i];
        top.node = child;
        self.resolve();
        true
    }

    /// Ascends to the parent of the current node in the derived tree. Returns
    /// the child index the cursor came from, or `None` at the root.
    pub fn up(&mut self) -> Option<usize> {
        loop {
            let top = *self.stack.last().expect("cursor stack is never empty");
            let rhs = self.rhs(top.nt);
            match rhs.parent(top.node) {
                Some(p) => match rhs.kind(p) {
                    NodeKind::Term(_) => {
                        let idx = rhs
                            .children(p)
                            .iter()
                            .position(|&c| c == top.node)
                            .expect("parent/child links consistent");
                        self.stack.last_mut().expect("non-empty").node = p;
                        return Some(idx);
                    }
                    NodeKind::Nt(callee) => {
                        // The current node is the j-th argument of a call; its
                        // derived parent is the parent of parameter y_j inside
                        // the callee. Position the caller frame at the call node
                        // and continue searching from the parameter leaf.
                        let j = rhs
                            .children(p)
                            .iter()
                            .position(|&c| c == top.node)
                            .expect("parent/child links consistent");
                        self.stack.last_mut().expect("non-empty").node = p;
                        let param = self
                            .rhs(callee)
                            .find_param(j as u32)
                            .expect("linear grammars contain every parameter exactly once");
                        self.stack.push(Frame {
                            nt: callee,
                            node: param,
                        });
                    }
                    NodeKind::Param(_) => {
                        unreachable!("parameters are leaves and cannot be parents")
                    }
                },
                None => {
                    // At the root of this rule's right-hand side.
                    if self.stack.len() == 1 {
                        return None;
                    }
                    self.stack.pop();
                    // The caller frame's node is the call site; continue there.
                }
            }
        }
    }

    /// Whether the cursor is at the root of the derived tree.
    pub fn at_root(&self) -> bool {
        let mut probe = self.clone();
        probe.up().is_none()
    }

    /// Depth of the rule-frame stack — a measure of how deeply the current
    /// position is nested in the grammar (not the derived-tree depth).
    pub fn frame_depth(&self) -> usize {
        self.stack.len()
    }

    // ----- document (element) view over the binary encoding -----

    /// Moves to the first child *element* of the current element. Returns
    /// `false` and stays put if there is none.
    pub fn doc_first_child(&mut self) -> bool {
        let saved = self.stack.clone();
        if self.down(0) && !self.is_null() {
            return true;
        }
        self.stack = saved;
        false
    }

    /// Moves to the next sibling *element* of the current element. Returns
    /// `false` and stays put if there is none.
    pub fn doc_next_sibling(&mut self) -> bool {
        let saved = self.stack.clone();
        if self.down(1) && !self.is_null() {
            return true;
        }
        self.stack = saved;
        false
    }

    /// Moves to the parent *element* of the current element. Returns `false`
    /// and stays put at the document root.
    pub fn doc_parent(&mut self) -> bool {
        let saved = self.stack.clone();
        loop {
            match self.up() {
                Some(0) => return true,
                Some(_) => continue,
                None => {
                    self.stack = saved;
                    return false;
                }
            }
        }
    }
}

/// Streaming preorder iterator over the terminal labels of `val(G)`.
///
/// The iterator visits every node of the derived tree exactly once without
/// materializing it; memory use is bounded by the cursor's frame stack.
pub struct PreorderLabels<'g> {
    cursor: Option<Cursor<'g>>,
}

impl<'g> PreorderLabels<'g> {
    /// Creates the iterator positioned before the root.
    pub fn new(grammar: &'g Grammar) -> Self {
        PreorderLabels {
            cursor: Some(Cursor::new(grammar)),
        }
    }
}

impl<'g> Iterator for PreorderLabels<'g> {
    type Item = TermId;

    fn next(&mut self) -> Option<TermId> {
        let cursor = self.cursor.as_mut()?;
        let term = cursor.term();
        // Advance: descend if possible, otherwise climb until a next sibling exists.
        let mut exhausted = false;
        if cursor.rank() > 0 {
            cursor.down(0);
        } else {
            loop {
                match cursor.up() {
                    None => {
                        exhausted = true;
                        break;
                    }
                    Some(idx) => {
                        if idx + 1 < cursor.rank() {
                            cursor.down(idx + 1);
                            break;
                        }
                    }
                }
            }
        }
        if exhausted {
            self.cursor = None;
        }
        Some(term)
    }
}

/// Usage-weighted number of occurrences of every terminal label in `val(G)`,
/// computed in one pass over the grammar (no traversal of the derived tree).
pub fn label_counts(g: &Grammar) -> HashMap<String, u128> {
    let usage = g.usage();
    let mut counts: HashMap<TermId, u128> = HashMap::new();
    for nt in g.nonterminals() {
        let weight = usage.get(&nt).copied().unwrap_or(0) as u128;
        if weight == 0 {
            continue;
        }
        let rhs = &g.rule(nt).rhs;
        for node in rhs.preorder() {
            if let NodeKind::Term(t) = rhs.kind(node) {
                *counts.entry(t).or_insert(0) += weight;
            }
        }
    }
    counts
        .into_iter()
        .map(|(t, c)| (g.symbols.name(t).to_string(), c))
        .collect()
}

/// Number of *element* nodes (non-null terminals) of the derived tree,
/// computed without decompression.
pub fn element_count(g: &Grammar) -> u128 {
    label_counts(g)
        .into_iter()
        .filter(|(name, _)| name != sltgrammar::NULL_SYMBOL_NAME)
        .map(|(_, c)| c)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::derive::val;
    use sltgrammar::fingerprint::derived_size;
    use sltgrammar::text::parse_grammar;
    use treerepair::TreeRePair;
    use xmltree::parse::parse_xml;

    fn paper_grammar() -> Grammar {
        parse_grammar("S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))").unwrap()
    }

    fn compressed(doc: &str) -> (Grammar, xmltree::XmlTree) {
        let xml = parse_xml(doc).unwrap();
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        (g, xml)
    }

    #[test]
    fn preorder_labels_match_the_materialized_tree() {
        let g = paper_grammar();
        let tree = val(&g).unwrap();
        let expected: Vec<String> = tree
            .preorder()
            .iter()
            .map(|&n| match tree.kind(n) {
                NodeKind::Term(t) => g.symbols.name(t).to_string(),
                _ => unreachable!(),
            })
            .collect();
        let got: Vec<String> = PreorderLabels::new(&g)
            .map(|t| g.symbols.name(t).to_string())
            .collect();
        assert_eq!(got, expected);
        assert_eq!(got.len() as u128, derived_size(&g));
    }

    #[test]
    fn cursor_down_up_are_inverse_everywhere() {
        let (g, _) = compressed(
            "<lib><book><ch><p/><p/></ch><ch/></book><book><ch><p/><p/></ch><ch/></book></lib>",
        );
        // Walk the whole derived tree; at every node check that down(i) then up()
        // returns to the same label and child index.
        let mut cursor = Cursor::new(&g);
        let mut visited = 0u128;
        let mut done = false;
        while !done {
            visited += 1;
            let label_before = cursor.label().to_string();
            for i in 0..cursor.rank() {
                assert!(cursor.down(i));
                let idx = cursor.up().expect("child has a parent");
                assert_eq!(idx, i);
                assert_eq!(cursor.label(), label_before);
            }
            // Advance in preorder.
            if cursor.rank() > 0 {
                cursor.down(0);
            } else {
                loop {
                    match cursor.up() {
                        None => {
                            done = true;
                            break;
                        }
                        Some(idx) => {
                            if idx + 1 < cursor.rank() {
                                cursor.down(idx + 1);
                                break;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(visited, derived_size(&g));
    }

    #[test]
    fn document_navigation_matches_the_original_document() {
        let doc = "<lib><book><title/><ch/><ch/></book><mag><title/></mag><book/></lib>";
        let (g, xml) = compressed(doc);
        let mut cursor = Cursor::new(&g);
        assert_eq!(cursor.label(), "lib");
        assert!(!cursor.doc_parent(), "document root has no parent");

        // First child chain: lib -> book -> title.
        assert!(cursor.doc_first_child());
        assert_eq!(cursor.label(), "book");
        assert!(cursor.doc_first_child());
        assert_eq!(cursor.label(), "title");
        assert!(!cursor.doc_first_child(), "title is a leaf");

        // Sibling chain of title: ch, ch.
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "ch");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "ch");
        assert!(!cursor.doc_next_sibling());

        // Parent of the last ch is book; its siblings are mag and book.
        assert!(cursor.doc_parent());
        assert_eq!(cursor.label(), "book");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "mag");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "book");
        assert!(!cursor.doc_next_sibling());
        assert!(cursor.doc_parent());
        assert_eq!(cursor.label(), "lib");

        let _ = xml;
    }

    #[test]
    fn document_navigation_covers_every_element() {
        // DFS over the document view must visit exactly the elements of the XML.
        let doc = "<a><b><c/><d><e/></d></b><f/><g><h/><i/><j/></g></a>";
        let (g, xml) = compressed(doc);
        let mut cursor = Cursor::new(&g);
        let mut labels = Vec::new();
        // Iterative DFS using doc_first_child / doc_next_sibling / doc_parent.
        'outer: loop {
            labels.push(cursor.label().to_string());
            if cursor.doc_first_child() {
                continue;
            }
            loop {
                if cursor.doc_next_sibling() {
                    break;
                }
                if !cursor.doc_parent() {
                    break 'outer;
                }
            }
        }
        let expected: Vec<String> = xml
            .preorder()
            .iter()
            .map(|&n| xml.label(n).to_string())
            .collect();
        assert_eq!(labels, expected);
    }

    #[test]
    fn navigation_works_on_exponentially_compressed_grammars() {
        // A chain of doubling rules deriving a monadic tree of 2^20 a-nodes plus
        // a null leaf: far too large to materialize, trivial to navigate.
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=19 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A20 -> a(y1)");
        let g = parse_grammar(&text).unwrap();
        assert_eq!(derived_size(&g), (1u128 << 20) + 1);

        let mut cursor = Cursor::new(&g);
        assert_eq!(cursor.label(), "a");
        // Descend 1000 levels and come back.
        for _ in 0..1000 {
            assert!(cursor.down(0));
            assert_eq!(cursor.label(), "a");
        }
        for _ in 0..1000 {
            assert_eq!(cursor.up(), Some(0));
        }
        assert!(cursor.up().is_none());
        // The frame stack stays logarithmic in the derived size.
        assert!(cursor.frame_depth() <= 25);

        // Label statistics without traversal.
        let counts = label_counts(&g);
        assert_eq!(counts["a"], 1u128 << 20);
        assert_eq!(counts["#"], 1);
        assert_eq!(element_count(&g), 1u128 << 20);
    }

    #[test]
    fn label_counts_match_traversal_on_small_documents() {
        let (g, xml) = compressed(
            "<db><r><k/><v/></r><r><k/><v/></r><r><k/><v/></r><r><k/><v/></r><x/></db>",
        );
        let counts = label_counts(&g);
        let mut expected: HashMap<String, u128> = HashMap::new();
        for n in xml.preorder() {
            *expected.entry(xml.label(n).to_string()).or_insert(0) += 1;
        }
        // Null leaves: one per element (missing first child or sibling) + 1.
        let nulls = counts.get("#").copied().unwrap_or(0);
        assert_eq!(nulls, xml.node_count() as u128 + 1);
        for (label, count) in expected {
            assert_eq!(counts.get(&label).copied().unwrap_or(0), count, "label {label}");
        }
        assert_eq!(element_count(&g), xml.node_count() as u128);
    }

    #[test]
    fn at_root_and_frame_depth_basics() {
        let g = paper_grammar();
        let mut cursor = Cursor::new(&g);
        assert!(cursor.at_root());
        assert!(cursor.down(0));
        assert!(!cursor.at_root());
        assert!(cursor.frame_depth() >= 1);
        cursor.up();
        assert!(cursor.at_root());
    }
}
