//! Read-only navigation over the derived tree of a grammar — no decompression.
//!
//! The paper motivates grammar-compressed XML as a drop-in replacement for
//! memory-hungry DOM trees; reads must therefore work directly on the grammar.
//! This module provides a [`Cursor`] that walks the derived binary tree
//! `val(G)` by maintaining a stack of rule frames: descending into a
//! nonterminal reference pushes the callee rule, reaching a formal parameter
//! pops back into the caller and continues in the corresponding argument
//! subtree.
//!
//! # NavTables
//!
//! All navigation resolves through [`NavTables`], a per-rule precomputation
//! built once per *grammar version* (O(grammar) time and space) and shared by
//! any number of cursors, iterators and query evaluations:
//!
//! * the rule body flattened into **preorder arrays** (label kinds, subtree
//!   sizes, parent positions, child indices), so stepping through a rule is
//!   array arithmetic instead of arena-pointer chasing;
//! * the **resolved first terminal** of every position — the terminal a
//!   cursor would land on when descending there, or the parameter through
//!   which resolution escapes the rule. This lets the document view peek at
//!   a child's label (`doc_first_child` / `doc_next_sibling` null checks)
//!   without moving, where the previous implementation cloned the whole
//!   frame stack per step;
//! * the **position of every formal parameter**, making the `up()` transition
//!   through a call site O(1) where it previously rescanned the callee body;
//! * **element counts** (`own_elems`, per-position `elems_at`) and the
//!   **parameter hole layout** (document-order offsets of the parameter
//!   holes inside `val(A)`), which power the output-sensitive
//!   [`crate::query::PathQuery::evaluate`] skip arithmetic.
//!
//! # Invalidation contract
//!
//! `NavTables` snapshots every rule's [`sltgrammar::RhsTree::version`]
//! counter at build time; [`NavTables::is_current`] re-checks the live rule
//! set and versions in O(rules). Tables are **immutable**: after any grammar
//! mutation (updates, recompression, isolation) a new snapshot must be built.
//! Holders that cache tables — [`crate::session::CompressedDom`] keeps one
//! behind an `Arc` — revalidate on access and rebuild lazily, so cursors
//! handed out after a mutation always see fresh tables. A live [`Cursor`]
//! borrows the grammar immutably for its whole life, so it can never observe
//! a mutation mid-walk; the differential suite
//! (`tests/navigation_differential.rs`) pins the rebuild-after-mutation
//! behaviour across update/recompress cycles.
//!
//! On top of the binary-tree cursor, the module offers document-view
//! navigation (first child / next sibling / parent of *elements*), a
//! streaming preorder iterator over terminal labels that advances through
//! whole terminal runs of a rule body as plain array reads, and
//! usage-weighted label statistics computed in a single pass over the
//! grammar.

use std::collections::HashMap;
use std::sync::Arc;

use sltgrammar::{FxHashMap, Grammar, NodeKind, NtId, TermId};

/// Label kind of one preorder position of a rule body, with the terminal's
/// rank and null-ness denormalized so the hot loops never consult the symbol
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NavKind {
    /// Terminal node.
    Term {
        /// The terminal symbol.
        term: TermId,
        /// Its rank (number of children).
        rank: u32,
        /// Whether it is the null (`#`) symbol.
        null: bool,
    },
    /// Reference to another rule.
    Nt(NtId),
    /// Formal parameter `y_{j+1}`.
    Param(u32),
}

/// Outcome of resolving a position down to its first derived terminal while
/// staying inside one rule: either a terminal is reached, or resolution
/// escapes through the rule's `j`-th parameter and continues in the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FirstTerm {
    /// Resolution reaches this terminal without leaving the rule. The null
    /// flag is denormalized so the document view's peek never consults the
    /// symbol table.
    Reached {
        /// The terminal reached.
        term: TermId,
        /// Whether it is the null (`#`) symbol.
        null: bool,
    },
    /// Resolution escapes through parameter `y_{j+1}`.
    Falls(u32),
}

/// One parameter hole of a rule body in the document order of `val(A)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Hole {
    /// Parameter index (0-based).
    pub(crate) param: u32,
    /// Preorder position of the parameter leaf in the rule body.
    pub(crate) pos: u32,
    /// Number of the rule's *own* elements (non-null terminals, including
    /// those contributed by callee bodies) preceding the hole in `val(A)`.
    pub(crate) elems_before: u128,
}

/// Precomputed navigation data of one rule body (see [`NavTables`]).
#[derive(Debug, Clone)]
pub(crate) struct RuleNav {
    /// Label kinds by preorder position.
    pub(crate) kinds: Vec<NavKind>,
    /// Subtree sizes (in body nodes) by preorder position.
    pub(crate) size: Vec<u32>,
    /// Parent preorder position (`u32::MAX` for the root).
    parent: Vec<u32>,
    /// Index among the parent's children.
    child_index: Vec<u32>,
    /// Resolved first terminal by preorder position.
    first: Vec<FirstTerm>,
    /// Preorder position of parameter `y_{j+1}`, indexed by `j`.
    param_pos: Vec<u32>,
    /// Parameter holes in document order of `val(A)`.
    pub(crate) holes: Vec<Hole>,
    /// Parameter holes sorted by body position (`(pos, param)`).
    pub(crate) params_by_pos: Vec<(u32, u32)>,
    /// Element count of the expansion of each position's subtree, with
    /// parameters contributing zero.
    pub(crate) elems_at: Vec<u128>,
    /// Element count of `val(A)` excluding parameter contents
    /// (`elems_at[root]`).
    pub(crate) own_elems: u128,
    /// Derived-node count (nulls included) of the expansion of each
    /// position's subtree, with parameters contributing zero.
    pub(crate) derived_at: Vec<u128>,
    /// Derived-node count of `val(A)` excluding parameter contents
    /// (`derived_at[root]`).
    pub(crate) own_derived: u128,
}

impl RuleNav {
    /// Preorder position of the `j`-th child of the node at position `p`.
    #[inline]
    pub(crate) fn child_pos(&self, p: u32, j: u32) -> u32 {
        let mut q = p + 1;
        for _ in 0..j {
            q += self.size[q as usize];
        }
        q
    }

    /// Number of preorder positions of the body.
    #[inline]
    fn len(&self) -> u32 {
        self.kinds.len() as u32
    }

    fn build(g: &Grammar, nt: NtId, done: &[Option<RuleNav>]) -> RuleNav {
        let rhs = &g.rule(nt).rhs;
        let rank = g.rule(nt).rank;

        // Flatten the body into preorder arrays with parent/child-index links.
        let mut kinds = Vec::new();
        let mut parent = Vec::new();
        let mut child_index = Vec::new();
        let mut param_pos = vec![u32::MAX; rank];
        let mut stack = vec![(rhs.root(), u32::MAX, 0u32)];
        while let Some((node, par, ci)) = stack.pop() {
            let pos = kinds.len() as u32;
            let kind = match rhs.kind(node) {
                NodeKind::Term(t) => NavKind::Term {
                    term: t,
                    // The node's actual child count: equal to the symbol rank
                    // on validated grammars, and the structurally correct
                    // choice for navigation either way (e.g. string grammars
                    // whose renamed labels were interned at rank 2).
                    rank: rhs.children(node).len() as u32,
                    null: g.symbols.is_null(t),
                },
                NodeKind::Nt(c) => NavKind::Nt(c),
                NodeKind::Param(j) => {
                    param_pos[j as usize] = pos;
                    NavKind::Param(j)
                }
            };
            kinds.push(kind);
            parent.push(par);
            child_index.push(ci);
            let children = rhs.children(node);
            for (i, &c) in children.iter().enumerate().rev() {
                stack.push((c, pos, i as u32));
            }
        }
        let n = kinds.len();

        // Subtree sizes: every node adds itself to its parent (children have
        // larger preorder positions than their parent, so one reverse sweep
        // suffices).
        let mut size = vec![1u32; n];
        for p in (1..n).rev() {
            size[parent[p] as usize] += size[p];
        }

        // Element and derived-node counts of each position's expansion
        // (parameters = 0, callees contribute their own counts).
        let mut elems_at = vec![0u128; n];
        let mut derived_at = vec![0u128; n];
        for p in (0..n).rev() {
            let (own_e, own_d): (u128, u128) = match kinds[p] {
                NavKind::Term { null, .. } => (u128::from(!null), 1),
                NavKind::Nt(c) => {
                    let callee = done[c.index()].as_ref().expect("callees built first");
                    (callee.own_elems, callee.own_derived)
                }
                NavKind::Param(_) => (0, 0),
            };
            elems_at[p] = elems_at[p].saturating_add(own_e);
            derived_at[p] = derived_at[p].saturating_add(own_d);
            if p > 0 {
                let par = parent[p] as usize;
                elems_at[par] = elems_at[par].saturating_add(elems_at[p]);
                derived_at[par] = derived_at[par].saturating_add(derived_at[p]);
            }
        }
        let own_elems = elems_at[0];
        let own_derived = derived_at[0];

        let nav = RuleNav {
            kinds,
            size,
            parent,
            child_index,
            first: Vec::new(),
            param_pos,
            holes: Vec::new(),
            params_by_pos: Vec::new(),
            elems_at,
            own_elems,
            derived_at,
            own_derived,
        };

        // Resolved first terminal: reverse preorder, so children (and the
        // argument subtrees a callee may fall into) are resolved first.
        let mut first = vec![FirstTerm::Falls(0); n];
        for p in (0..n).rev() {
            first[p] = match nav.kinds[p] {
                NavKind::Term { term, null, .. } => FirstTerm::Reached { term, null },
                NavKind::Param(j) => FirstTerm::Falls(j),
                NavKind::Nt(c) => {
                    match done[c.index()].as_ref().expect("callees built first").first[0] {
                        reached @ FirstTerm::Reached { .. } => reached,
                        FirstTerm::Falls(j) => first[nav.child_pos(p as u32, j) as usize],
                    }
                }
            };
        }

        // Parameter holes in the document order of val(A): walk the body in
        // expansion order, interleaving callee bodies with their own holes.
        enum Walk {
            Pos(u32),
            Add(u128),
        }
        let mut holes = Vec::with_capacity(rank);
        let mut elems: u128 = 0;
        let mut jobs = vec![Walk::Pos(0)];
        while let Some(job) = jobs.pop() {
            match job {
                Walk::Add(d) => elems = elems.saturating_add(d),
                Walk::Pos(p) => match nav.kinds[p as usize] {
                    NavKind::Term { null: true, .. } => {}
                    NavKind::Term { rank, .. } => {
                        elems = elems.saturating_add(1);
                        let mut child = p + 1;
                        let mut children = Vec::with_capacity(rank as usize);
                        for _ in 0..rank {
                            children.push(child);
                            child += nav.size[child as usize];
                        }
                        for &c in children.iter().rev() {
                            jobs.push(Walk::Pos(c));
                        }
                    }
                    NavKind::Param(j) => holes.push(Hole {
                        param: j,
                        pos: p,
                        elems_before: elems,
                    }),
                    NavKind::Nt(c) => {
                        let callee = done[c.index()].as_ref().expect("callees built first");
                        let mut seq = Vec::with_capacity(2 * callee.holes.len() + 1);
                        let mut prev = 0u128;
                        for h in &callee.holes {
                            seq.push(Walk::Add(h.elems_before.saturating_sub(prev)));
                            prev = h.elems_before;
                            seq.push(Walk::Pos(nav.child_pos(p, h.param)));
                        }
                        seq.push(Walk::Add(callee.own_elems.saturating_sub(prev)));
                        for s in seq.into_iter().rev() {
                            jobs.push(s);
                        }
                    }
                },
            }
        }
        debug_assert_eq!(elems, own_elems, "hole layout walk must count every own element");
        let mut params_by_pos: Vec<(u32, u32)> =
            holes.iter().map(|h| (h.pos, h.param)).collect();
        params_by_pos.sort_unstable();

        RuleNav {
            first,
            holes,
            params_by_pos,
            ..nav
        }
    }
}

/// Per-rule navigation tables of one grammar snapshot (see the module docs).
///
/// Build with [`NavTables::build`]; revalidate with [`NavTables::is_current`].
/// The tables borrow nothing from the grammar, so they can be shared behind
/// an [`Arc`] and outlive intermediate mutations — holders are responsible
/// for the revalidate-and-rebuild dance, which
/// [`crate::session::CompressedDom`] implements.
#[derive(Debug, Clone)]
pub struct NavTables {
    rules: Vec<Option<RuleNav>>,
    /// `(rule, rhs version)` snapshot for `is_current`, in id order.
    versions: Vec<(NtId, u64)>,
    start: NtId,
}

impl NavTables {
    /// Builds the tables for the current grammar snapshot in O(grammar).
    pub fn build(g: &Grammar) -> Self {
        let order = g
            .anti_sl_order()
            .expect("navigation requires a straight-line grammar");
        let max_index = order.iter().map(|nt| nt.index()).max().unwrap_or(0);
        let mut rules: Vec<Option<RuleNav>> = vec![None; max_index + 1];
        for &nt in &order {
            let nav = RuleNav::build(g, nt, &rules);
            rules[nt.index()] = Some(nav);
        }
        let versions = g
            .nonterminals()
            .into_iter()
            .map(|nt| (nt, g.rule(nt).rhs.version()))
            .collect();
        NavTables {
            rules,
            versions,
            start: g.start(),
        }
    }

    /// Whether the tables still describe `g`: same start rule, same live rule
    /// set, and no rule body mutated since the snapshot (checked through the
    /// [`sltgrammar::RhsTree::version`] counters in O(rules)).
    pub fn is_current(&self, g: &Grammar) -> bool {
        if self.start != g.start() {
            return false;
        }
        let live = g.nonterminals();
        live.len() == self.versions.len()
            && live
                .iter()
                .zip(self.versions.iter())
                .all(|(&nt, &(snap_nt, version))| {
                    nt == snap_nt && g.rule(nt).rhs.version() == version
                })
    }

    /// The start rule the tables were built for.
    pub fn start(&self) -> NtId {
        self.start
    }

    #[inline]
    pub(crate) fn rule(&self, nt: NtId) -> &RuleNav {
        self.rules[nt.index()]
            .as_ref()
            .expect("tables cover every live rule")
    }
}

/// One stack frame of a [`Cursor`]: a rule and the current preorder position
/// inside its body. For every frame except the innermost, `pos` is the
/// nonterminal reference whose callee is the frame above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    nt: NtId,
    pos: u32,
}

/// Full weight of the expansion of position `pos` in `frames[frame_idx]`,
/// *including* the contents plugged into any parameter holes inside that
/// subtree. `weights[i]` holds, for frame `i`, the full weight of the
/// argument subtree bound to each of its rule's parameters (empty for the
/// start frame). `elements_only` selects the element counts (`elems_at`,
/// nulls excluded) or the derived-node counts (`derived_at`).
///
/// The parameter holes inside `[pos, pos + size)` are found by binary search
/// on the rule's position-sorted hole layout, so one call costs
/// O(log(params) + params-inside), not a subtree walk.
fn pos_weight(
    tables: &NavTables,
    frames: &[Frame],
    weights: &[Vec<u128>],
    frame_idx: usize,
    pos: u32,
    elements_only: bool,
) -> u128 {
    let nav = tables.rule(frames[frame_idx].nt);
    let mut w = if elements_only {
        nav.elems_at[pos as usize]
    } else {
        nav.derived_at[pos as usize]
    };
    let end = pos + nav.size[pos as usize];
    let lo = nav.params_by_pos.partition_point(|&(p, _)| p < pos);
    let hi = nav.params_by_pos.partition_point(|&(p, _)| p < end);
    for &(_, j) in &nav.params_by_pos[lo..hi] {
        w = w.saturating_add(weights[frame_idx][j as usize]);
    }
    w
}

/// A read-only position in the derived binary tree `val(G)`.
///
/// The cursor always rests on a *terminal* node of the derived tree; moving
/// through nonterminal references and parameters is handled internally. All
/// steps resolve through shared [`NavTables`]; `down`/`up` cost O(1) per rule
/// frame crossed and the document view peeks at child labels without moving
/// (no stack copies on the hot path).
#[derive(Debug, Clone)]
pub struct Cursor<'g> {
    grammar: &'g Grammar,
    tables: Arc<NavTables>,
    stack: Vec<Frame>,
    /// Scratch buffer for the rare restore path of [`Cursor::doc_parent`].
    saved: Vec<Frame>,
}

impl<'g> Cursor<'g> {
    /// Creates a cursor positioned at the root of the derived tree, building
    /// private [`NavTables`] (O(grammar)). Prefer [`Cursor::with_tables`]
    /// when several cursors or repeated traversals share one snapshot.
    pub fn new(grammar: &'g Grammar) -> Self {
        Cursor::with_tables(grammar, Arc::new(NavTables::build(grammar)))
    }

    /// Creates a cursor at the derived root sharing prebuilt tables. The
    /// tables must be current for `grammar` (debug-asserted).
    pub fn with_tables(grammar: &'g Grammar, tables: Arc<NavTables>) -> Self {
        debug_assert!(
            tables.is_current(grammar),
            "NavTables are stale for this grammar snapshot"
        );
        let mut cursor = Cursor {
            grammar,
            stack: vec![Frame {
                nt: tables.start(),
                pos: 0,
            }],
            tables,
            saved: Vec::new(),
        };
        cursor.resolve();
        cursor
    }

    /// The grammar this cursor reads.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    /// The shared navigation tables backing this cursor.
    pub fn tables(&self) -> &Arc<NavTables> {
        &self.tables
    }

    #[inline]
    fn nav(&self, nt: NtId) -> &RuleNav {
        self.tables.rule(nt)
    }

    #[inline]
    fn top_kind(&self) -> NavKind {
        let top = self.stack.last().expect("cursor stack is never empty");
        self.nav(top.nt).kinds[top.pos as usize]
    }

    /// Moves the innermost position through nonterminal references and
    /// parameters until it rests on a terminal node.
    fn resolve(&mut self) {
        loop {
            let top = *self.stack.last().expect("cursor stack is never empty");
            match self.nav(top.nt).kinds[top.pos as usize] {
                NavKind::Term { .. } => return,
                NavKind::Nt(callee) => {
                    self.stack.push(Frame { nt: callee, pos: 0 });
                }
                NavKind::Param(j) => {
                    // Continue in the j-th argument of the call site one frame below.
                    self.stack.pop();
                    let caller = self.stack.last_mut().expect("parameters only occur in callees");
                    caller.pos = self.tables.rule(caller.nt).child_pos(caller.pos, j);
                }
            }
        }
    }

    /// Terminal symbol at the current position.
    pub fn term(&self) -> TermId {
        match self.top_kind() {
            NavKind::Term { term, .. } => term,
            _ => unreachable!("cursor always rests on a terminal"),
        }
    }

    /// Label at the current position.
    pub fn label(&self) -> &'g str {
        self.grammar.symbols.name(self.term())
    }

    /// Whether the current node is the null (`#` / `⊥`) leaf.
    pub fn is_null(&self) -> bool {
        matches!(self.top_kind(), NavKind::Term { null: true, .. })
    }

    /// Rank (number of children in the derived tree) of the current node.
    pub fn rank(&self) -> usize {
        match self.top_kind() {
            NavKind::Term { rank, .. } => rank as usize,
            _ => unreachable!("cursor always rests on a terminal"),
        }
    }

    /// Whether the terminal the cursor would land on after `down(i)` is the
    /// null leaf, resolved read-only through the tables (no movement, no
    /// allocation, no symbol-table consult). The caller must ensure
    /// `i < self.rank()`.
    fn peek_child_is_null(&self, i: usize) -> bool {
        let top = *self.stack.last().expect("cursor stack is never empty");
        let mut nt = top.nt;
        let mut pos = self.nav(nt).child_pos(top.pos, i as u32);
        let mut frame = self.stack.len() - 1;
        loop {
            match self.nav(nt).first[pos as usize] {
                FirstTerm::Reached { null, .. } => return null,
                FirstTerm::Falls(j) => {
                    // Resolution escapes the current rule through parameter j;
                    // continue in the caller's argument subtree.
                    frame -= 1;
                    let caller = self.stack[frame];
                    nt = caller.nt;
                    pos = self.nav(nt).child_pos(caller.pos, j);
                }
            }
        }
    }

    /// Descends to the `i`-th child of the current node. Returns `false` (and
    /// stays put) if the current node has fewer than `i + 1` children.
    pub fn down(&mut self, i: usize) -> bool {
        if i >= self.rank() {
            return false;
        }
        let top = self.stack.last_mut().expect("cursor stack is never empty");
        top.pos = self.tables.rule(top.nt).child_pos(top.pos, i as u32);
        self.resolve();
        true
    }

    /// Ascends to the parent of the current node in the derived tree. Returns
    /// the child index the cursor came from, or `None` at the root.
    pub fn up(&mut self) -> Option<usize> {
        loop {
            let top = *self.stack.last().expect("cursor stack is never empty");
            let nav = self.nav(top.nt);
            if top.pos == 0 {
                // At the root of this rule's body.
                if self.stack.len() == 1 {
                    return None;
                }
                self.stack.pop();
                // The caller frame's position is the call site; continue there.
                continue;
            }
            let parent = nav.parent[top.pos as usize];
            let idx = nav.child_index[top.pos as usize] as usize;
            match nav.kinds[parent as usize] {
                NavKind::Term { .. } => {
                    self.stack.last_mut().expect("non-empty").pos = parent;
                    return Some(idx);
                }
                NavKind::Nt(callee) => {
                    // The current node is the idx-th argument of a call; its
                    // derived parent is the parent of parameter y_idx inside
                    // the callee. Position the caller frame at the call node
                    // and continue searching from the parameter leaf.
                    self.stack.last_mut().expect("non-empty").pos = parent;
                    let param = self.tables.rule(callee).param_pos[idx];
                    self.stack.push(Frame {
                        nt: callee,
                        pos: param,
                    });
                }
                NavKind::Param(_) => {
                    unreachable!("parameters are leaves and cannot be parents")
                }
            }
        }
    }

    /// Whether the cursor is at the root of the derived tree.
    pub fn at_root(&self) -> bool {
        let mut probe = self.clone();
        probe.up().is_none()
    }

    /// Depth of the rule-frame stack — a measure of how deeply the current
    /// position is nested in the grammar (not the derived-tree depth).
    pub fn frame_depth(&self) -> usize {
        self.stack.len()
    }

    // ----- positional addressing through the precomputed counts -----

    /// Jumps to the node with 0-based preorder index `index` of the derived
    /// binary tree (nulls included — the same addressing update targets and
    /// `label_at` use). Returns `false` and stays put when the index is out
    /// of range.
    ///
    /// The jump is a single root-to-node descent steered by the precomputed
    /// per-position subtree counts — no path isolation, no grammar mutation,
    /// no expansion of skipped siblings. Each step resolves the weight of a
    /// candidate subtree in O(log rank + holes-inside) via the rule's hole
    /// layout, so a jump costs O(depth · rank) table lookups in total.
    pub fn node_at_preorder(&mut self, index: u128) -> bool {
        self.jump(index, false)
    }

    /// Jumps to the `index`-th *element* (non-null node) in document preorder
    /// — the addressing [`crate::query::QueryMatches::positions`] reports, so
    /// query hits can be turned into cursors directly. Returns `false` and
    /// stays put when the index is out of range.
    pub fn nth_element(&mut self, index: u128) -> bool {
        self.jump(index, true)
    }

    fn jump(&mut self, index: u128, elements_only: bool) -> bool {
        let tables = self.tables.clone();
        let start = tables.start();
        let total = if elements_only {
            tables.rule(start).own_elems
        } else {
            tables.rule(start).own_derived
        };
        if index >= total {
            return false;
        }
        let mut frames = vec![Frame { nt: start, pos: 0 }];
        let mut weights: Vec<Vec<u128>> = vec![Vec::new()];
        let mut remaining = index;
        loop {
            let top = *frames.last().expect("jump stack is never empty");
            let nav = tables.rule(top.nt);
            match nav.kinds[top.pos as usize] {
                NavKind::Term { rank, null, .. } => {
                    let counts = !elements_only || !null;
                    if counts {
                        if remaining == 0 {
                            self.stack = frames;
                            return true;
                        }
                        remaining -= 1;
                    }
                    // Steer into the child subtree containing the target.
                    let frame_idx = frames.len() - 1;
                    let mut child = top.pos + 1;
                    let mut descended = false;
                    for _ in 0..rank {
                        let w =
                            pos_weight(&tables, &frames, &weights, frame_idx, child, elements_only);
                        if remaining < w {
                            frames[frame_idx].pos = child;
                            descended = true;
                            break;
                        }
                        remaining -= w;
                        child += nav.size[child as usize];
                    }
                    if !descended {
                        // Unreachable for in-range indices: the root weight
                        // bounds the index and every weight is exact.
                        debug_assert!(false, "weighted descent lost the target");
                        return false;
                    }
                }
                NavKind::Nt(callee) => {
                    // The target is inside this call's expansion (its own
                    // production or a plugged argument — the descent inside
                    // the callee distinguishes them through the argument
                    // weights computed here, in the caller's context).
                    let frame_idx = frames.len() - 1;
                    let rank = tables.rule(callee).param_pos.len();
                    let mut args = Vec::with_capacity(rank);
                    let mut child = top.pos + 1;
                    for _ in 0..rank {
                        args.push(pos_weight(
                            &tables,
                            &frames,
                            &weights,
                            frame_idx,
                            child,
                            elements_only,
                        ));
                        child += nav.size[child as usize];
                    }
                    frames.push(Frame { nt: callee, pos: 0 });
                    weights.push(args);
                }
                NavKind::Param(j) => {
                    // The target fell through this hole: continue in the
                    // caller's argument subtree (same transition as resolve).
                    frames.pop();
                    weights.pop();
                    let caller = frames.last_mut().expect("parameters only occur in callees");
                    caller.pos = tables.rule(caller.nt).child_pos(caller.pos, j);
                }
            }
        }
    }

    /// Number of nodes (nulls included) of the derived subtree rooted at the
    /// current node, read off the precomputed per-position subtree counts —
    /// no traversal of the subtree. Costs O(frame depth · rank) table
    /// lookups: the weights plugged into each live frame's parameters are
    /// re-derived from the stack, never from the document.
    pub fn subtree_size(&self) -> u128 {
        let mut weights: Vec<Vec<u128>> = Vec::with_capacity(self.stack.len());
        weights.push(Vec::new());
        for i in 1..self.stack.len() {
            let caller = self.stack[i - 1];
            let nav = self.nav(caller.nt);
            let rank = self.nav(self.stack[i].nt).param_pos.len();
            let mut args = Vec::with_capacity(rank);
            let mut child = caller.pos + 1;
            for _ in 0..rank {
                args.push(pos_weight(&self.tables, &self.stack, &weights, i - 1, child, false));
                child += nav.size[child as usize];
            }
            weights.push(args);
        }
        let top = self.stack.len() - 1;
        pos_weight(
            &self.tables,
            &self.stack,
            &weights,
            top,
            self.stack[top].pos,
            false,
        )
    }

    // ----- document (element) view over the binary encoding -----

    /// Moves to the first child *element* of the current element. Returns
    /// `false` and stays put if there is none.
    ///
    /// The null check peeks through the tables; nothing moves (and nothing is
    /// copied) when there is no child element.
    pub fn doc_first_child(&mut self) -> bool {
        if self.rank() == 0 || self.peek_child_is_null(0) {
            return false;
        }
        self.down(0);
        true
    }

    /// Moves to the next sibling *element* of the current element. Returns
    /// `false` and stays put if there is none.
    pub fn doc_next_sibling(&mut self) -> bool {
        if self.rank() < 2 || self.peek_child_is_null(1) {
            return false;
        }
        self.down(1);
        true
    }

    /// Moves to the parent *element* of the current element. Returns `false`
    /// and stays put at the document root.
    pub fn doc_parent(&mut self) -> bool {
        // Only the failure path (already at the document root) needs to
        // restore; reuse one scratch buffer instead of cloning per call.
        self.saved.clear();
        self.saved.extend_from_slice(&self.stack);
        loop {
            match self.up() {
                Some(0) => return true,
                Some(_) => continue,
                None => {
                    std::mem::swap(&mut self.stack, &mut self.saved);
                    return false;
                }
            }
        }
    }

    /// Moves to the previous sibling *element* of the current element.
    /// Returns `false` and stays put if the current element is its parent's
    /// first child (or the document root).
    ///
    /// In the first-child/next-sibling encoding an element's previous sibling
    /// *is* its binary parent whenever the element sits in next-sibling
    /// position (child index 1) — so this is one [`Cursor::up`] step through
    /// the parent-side tables (per-position parent and child-index arrays of
    /// [`NavTables`]), the mirror of [`Cursor::doc_next_sibling`]'s single
    /// `down(1)`.
    pub fn doc_prev_sibling(&mut self) -> bool {
        self.saved.clear();
        self.saved.extend_from_slice(&self.stack);
        match self.up() {
            Some(1) => true,
            // Child index 0 (we were a first child: `up` moved to the doc
            // parent) or the root — restore and report no previous sibling.
            _ => {
                std::mem::swap(&mut self.stack, &mut self.saved);
                false
            }
        }
    }
}

/// One frame of the [`PreorderLabels`] expansion machine: a slice
/// `[cur, end)` of one rule body to emit, plus the frame/call-site pair that
/// supplies the rule's arguments when a parameter is reached.
#[derive(Debug, Clone, Copy)]
struct PlFrame {
    nt: NtId,
    cur: u32,
    end: u32,
    /// Index (into the live stack) of the frame whose rule contains this
    /// rule's call site; parameters continue in that frame's argument
    /// subtrees. Unused for the start frame.
    ctx_frame: u32,
    /// Preorder position of the call site inside `ctx_frame`'s rule.
    call_pos: u32,
}

/// Streaming preorder iterator over the terminal labels of `val(G)`.
///
/// The iterator visits every node of the derived tree exactly once without
/// materializing it. It runs directly on the flattened preorder arrays of
/// [`NavTables`]: consecutive terminals of a rule body are emitted as plain
/// array reads (whole terminal runs cost one bounds check per node), a
/// nonterminal reference pushes the callee body and skips the call subtree
/// via the precomputed sizes, and a parameter continues in the caller's
/// argument slice. One frame buffer is reused across all `next()` calls —
/// no per-node re-resolution and no per-node allocation. Memory use is
/// bounded by the derivation depth.
pub struct PreorderLabels<'g> {
    grammar: &'g Grammar,
    tables: Arc<NavTables>,
    stack: Vec<PlFrame>,
}

impl<'g> PreorderLabels<'g> {
    /// Creates the iterator positioned before the root, building private
    /// tables. Prefer [`PreorderLabels::with_tables`] for repeated
    /// traversals of one snapshot.
    pub fn new(grammar: &'g Grammar) -> Self {
        PreorderLabels::with_tables(grammar, Arc::new(NavTables::build(grammar)))
    }

    /// Creates the iterator sharing prebuilt tables (must be current for
    /// `grammar`, debug-asserted).
    pub fn with_tables(grammar: &'g Grammar, tables: Arc<NavTables>) -> Self {
        debug_assert!(
            tables.is_current(grammar),
            "NavTables are stale for this grammar snapshot"
        );
        let start = tables.start();
        let end = tables.rule(start).len();
        PreorderLabels {
            grammar,
            stack: vec![PlFrame {
                nt: start,
                cur: 0,
                end,
                ctx_frame: 0,
                call_pos: 0,
            }],
            tables,
        }
    }

    /// The grammar this iterator reads.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }
}

impl<'g> Iterator for PreorderLabels<'g> {
    type Item = TermId;

    fn next(&mut self) -> Option<TermId> {
        loop {
            let top_idx = self.stack.len().checked_sub(1)?;
            let frame = self.stack[top_idx];
            if frame.cur == frame.end {
                self.stack.pop();
                if self.stack.is_empty() {
                    return None;
                }
                continue;
            }
            let nav = self.tables.rule(frame.nt);
            match nav.kinds[frame.cur as usize] {
                NavKind::Term { term, .. } => {
                    self.stack[top_idx].cur += 1;
                    return Some(term);
                }
                NavKind::Nt(callee) => {
                    // Resume after the whole call subtree, then expand the callee.
                    self.stack[top_idx].cur += nav.size[frame.cur as usize];
                    let end = self.tables.rule(callee).len();
                    self.stack.push(PlFrame {
                        nt: callee,
                        cur: 0,
                        end,
                        ctx_frame: top_idx as u32,
                        call_pos: frame.cur,
                    });
                }
                NavKind::Param(j) => {
                    // Resume after the parameter leaf, then emit the caller's
                    // argument slice under the caller's own parameter context.
                    self.stack[top_idx].cur += 1;
                    let ctx = self.stack[frame.ctx_frame as usize];
                    let caller_nav = self.tables.rule(ctx.nt);
                    let arg = caller_nav.child_pos(frame.call_pos, j);
                    self.stack.push(PlFrame {
                        nt: ctx.nt,
                        cur: arg,
                        end: arg + caller_nav.size[arg as usize],
                        ctx_frame: ctx.ctx_frame,
                        call_pos: ctx.call_pos,
                    });
                }
            }
        }
    }
}

/// Usage-weighted number of occurrences of every terminal in `val(G)`,
/// keyed by [`TermId`], computed in one pass over the grammar (no traversal
/// of the derived tree, no string allocation).
pub fn term_counts(g: &Grammar) -> FxHashMap<TermId, u128> {
    let usage = g.usage();
    let mut counts: FxHashMap<TermId, u128> = FxHashMap::default();
    for nt in g.nonterminals() {
        let weight = usage.get(&nt).copied().unwrap_or(0) as u128;
        if weight == 0 {
            continue;
        }
        let rhs = &g.rule(nt).rhs;
        for node in rhs.preorder() {
            if let NodeKind::Term(t) = rhs.kind(node) {
                *counts.entry(t).or_insert(0) += weight;
            }
        }
    }
    counts
}

/// Usage-weighted number of occurrences of every terminal label in `val(G)`.
/// String-keyed convenience wrapper around [`term_counts`].
pub fn label_counts(g: &Grammar) -> HashMap<String, u128> {
    term_counts(g)
        .into_iter()
        .map(|(t, c)| (g.symbols.name(t).to_string(), c))
        .collect()
}

/// Number of *element* nodes (non-null terminals) of the derived tree,
/// computed without decompression.
pub fn element_count(g: &Grammar) -> u128 {
    term_counts(g)
        .into_iter()
        .filter(|&(t, _)| !g.symbols.is_null(t))
        .map(|(_, c)| c)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::derive::val;
    use sltgrammar::fingerprint::derived_size;
    use sltgrammar::text::parse_grammar;
    use treerepair::TreeRePair;
    use xmltree::parse::parse_xml;

    fn paper_grammar() -> Grammar {
        parse_grammar("S -> f(A(B,B),#)\nB -> A(#,#)\nA -> a(#, a(y1, y2))").unwrap()
    }

    fn compressed(doc: &str) -> (Grammar, xmltree::XmlTree) {
        let xml = parse_xml(doc).unwrap();
        let (g, _) = TreeRePair::default().compress_xml(&xml);
        (g, xml)
    }

    #[test]
    fn preorder_labels_match_the_materialized_tree() {
        let g = paper_grammar();
        let tree = val(&g).unwrap();
        let expected: Vec<String> = tree
            .preorder()
            .iter()
            .map(|&n| match tree.kind(n) {
                NodeKind::Term(t) => g.symbols.name(t).to_string(),
                _ => unreachable!(),
            })
            .collect();
        let got: Vec<String> = PreorderLabels::new(&g)
            .map(|t| g.symbols.name(t).to_string())
            .collect();
        assert_eq!(got, expected);
        assert_eq!(got.len() as u128, derived_size(&g));
    }

    #[test]
    fn cursor_down_up_are_inverse_everywhere() {
        let (g, _) = compressed(
            "<lib><book><ch><p/><p/></ch><ch/></book><book><ch><p/><p/></ch><ch/></book></lib>",
        );
        // Walk the whole derived tree; at every node check that down(i) then up()
        // returns to the same label and child index.
        let mut cursor = Cursor::new(&g);
        let mut visited = 0u128;
        let mut done = false;
        while !done {
            visited += 1;
            let label_before = cursor.label().to_string();
            for i in 0..cursor.rank() {
                assert!(cursor.down(i));
                let idx = cursor.up().expect("child has a parent");
                assert_eq!(idx, i);
                assert_eq!(cursor.label(), label_before);
            }
            // Advance in preorder.
            if cursor.rank() > 0 {
                cursor.down(0);
            } else {
                loop {
                    match cursor.up() {
                        None => {
                            done = true;
                            break;
                        }
                        Some(idx) => {
                            if idx + 1 < cursor.rank() {
                                cursor.down(idx + 1);
                                break;
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(visited, derived_size(&g));
    }

    #[test]
    fn document_navigation_matches_the_original_document() {
        let doc = "<lib><book><title/><ch/><ch/></book><mag><title/></mag><book/></lib>";
        let (g, xml) = compressed(doc);
        let mut cursor = Cursor::new(&g);
        assert_eq!(cursor.label(), "lib");
        assert!(!cursor.doc_parent(), "document root has no parent");

        // First child chain: lib -> book -> title.
        assert!(cursor.doc_first_child());
        assert_eq!(cursor.label(), "book");
        assert!(cursor.doc_first_child());
        assert_eq!(cursor.label(), "title");
        assert!(!cursor.doc_first_child(), "title is a leaf");

        // Sibling chain of title: ch, ch.
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "ch");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "ch");
        assert!(!cursor.doc_next_sibling());

        // Parent of the last ch is book; its siblings are mag and book.
        assert!(cursor.doc_parent());
        assert_eq!(cursor.label(), "book");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "mag");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "book");
        assert!(!cursor.doc_next_sibling());
        assert!(cursor.doc_parent());
        assert_eq!(cursor.label(), "lib");

        let _ = xml;
    }

    #[test]
    fn doc_prev_sibling_mirrors_doc_next_sibling() {
        let doc = "<lib><book><title/><ch/><ch/></book><mag><title/></mag><book/></lib>";
        let (g, _) = compressed(doc);
        let mut cursor = Cursor::new(&g);
        assert!(!cursor.doc_prev_sibling(), "the document root has no siblings");
        assert_eq!(cursor.label(), "lib");

        // Walk to the last sibling of the lib children, then walk back.
        assert!(cursor.doc_first_child());
        assert!(cursor.doc_next_sibling());
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "book");
        assert!(cursor.doc_prev_sibling());
        assert_eq!(cursor.label(), "mag");
        assert!(cursor.doc_prev_sibling());
        assert_eq!(cursor.label(), "book");
        assert!(
            !cursor.doc_prev_sibling(),
            "a first child has no previous sibling"
        );
        assert_eq!(cursor.label(), "book", "failed moves stay put");

        // prev/next are inverses at every inner sibling position.
        assert!(cursor.doc_first_child());
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "ch");
        let before = cursor.subtree_size();
        assert!(cursor.doc_prev_sibling());
        assert_eq!(cursor.label(), "title");
        assert!(cursor.doc_next_sibling());
        assert_eq!(cursor.label(), "ch");
        assert_eq!(cursor.subtree_size(), before, "round trip lands on the same node");
    }

    #[test]
    fn document_navigation_covers_every_element() {
        // DFS over the document view must visit exactly the elements of the XML.
        let doc = "<a><b><c/><d><e/></d></b><f/><g><h/><i/><j/></g></a>";
        let (g, xml) = compressed(doc);
        let mut cursor = Cursor::new(&g);
        let mut labels = Vec::new();
        // Iterative DFS using doc_first_child / doc_next_sibling / doc_parent.
        'outer: loop {
            labels.push(cursor.label().to_string());
            if cursor.doc_first_child() {
                continue;
            }
            loop {
                if cursor.doc_next_sibling() {
                    break;
                }
                if !cursor.doc_parent() {
                    break 'outer;
                }
            }
        }
        let expected: Vec<String> = xml
            .preorder()
            .iter()
            .map(|&n| xml.label(n).to_string())
            .collect();
        assert_eq!(labels, expected);
    }

    #[test]
    fn navigation_works_on_exponentially_compressed_grammars() {
        // A chain of doubling rules deriving a monadic tree of 2^20 a-nodes plus
        // a null leaf: far too large to materialize, trivial to navigate.
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=19 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A20 -> a(y1)");
        let g = parse_grammar(&text).unwrap();
        assert_eq!(derived_size(&g), (1u128 << 20) + 1);

        let mut cursor = Cursor::new(&g);
        assert_eq!(cursor.label(), "a");
        // Descend 1000 levels and come back.
        for _ in 0..1000 {
            assert!(cursor.down(0));
            assert_eq!(cursor.label(), "a");
        }
        for _ in 0..1000 {
            assert_eq!(cursor.up(), Some(0));
        }
        assert!(cursor.up().is_none());
        // The frame stack stays logarithmic in the derived size.
        assert!(cursor.frame_depth() <= 25);

        // Label statistics without traversal.
        let counts = label_counts(&g);
        assert_eq!(counts["a"], 1u128 << 20);
        assert_eq!(counts["#"], 1);
        assert_eq!(element_count(&g), 1u128 << 20);
    }

    #[test]
    fn label_counts_match_traversal_on_small_documents() {
        let (g, xml) = compressed(
            "<db><r><k/><v/></r><r><k/><v/></r><r><k/><v/></r><r><k/><v/></r><x/></db>",
        );
        let counts = label_counts(&g);
        let mut expected: HashMap<String, u128> = HashMap::new();
        for n in xml.preorder() {
            *expected.entry(xml.label(n).to_string()).or_insert(0) += 1;
        }
        // Null leaves: one per element (missing first child or sibling) + 1.
        let nulls = counts.get("#").copied().unwrap_or(0);
        assert_eq!(nulls, xml.node_count() as u128 + 1);
        for (label, count) in expected {
            assert_eq!(counts.get(&label).copied().unwrap_or(0), count, "label {label}");
        }
        assert_eq!(element_count(&g), xml.node_count() as u128);
    }

    #[test]
    fn at_root_and_frame_depth_basics() {
        let g = paper_grammar();
        let mut cursor = Cursor::new(&g);
        assert!(cursor.at_root());
        assert!(cursor.down(0));
        assert!(!cursor.at_root());
        assert!(cursor.frame_depth() >= 1);
        cursor.up();
        assert!(cursor.at_root());
    }

    #[test]
    fn shared_tables_revalidate_across_mutations() {
        let (mut g, _) = compressed("<a><b/><b/><b/><b/></a>");
        let tables = Arc::new(NavTables::build(&g));
        assert!(tables.is_current(&g));
        {
            let c1 = Cursor::with_tables(&g, tables.clone());
            let c2 = Cursor::with_tables(&g, tables.clone());
            assert_eq!(c1.label(), c2.label());
        }
        // Any body mutation flips is_current through the version counters.
        crate::update::rename(&mut g, 1, "c").unwrap();
        assert!(!tables.is_current(&g));
        let fresh = NavTables::build(&g);
        assert!(fresh.is_current(&g));
        let mut cursor = Cursor::with_tables(&g, Arc::new(fresh));
        assert!(cursor.doc_first_child());
        assert_eq!(cursor.label(), "c");
    }

    #[test]
    fn positional_jumps_agree_with_stepping_everywhere() {
        let (g, _) = compressed(
            "<lib><book><ch><p/><p/></ch><ch/></book><book><ch><p/><p/></ch><ch/></book><x/></lib>",
        );
        let tables = Arc::new(NavTables::build(&g));
        let total = derived_size(&g);
        // Walk the whole derived tree in preorder by stepping; at every index
        // the jump must land on the same label with the same frame stack
        // semantics (verified via label + subtree_size + parent label).
        let mut stepper = Cursor::with_tables(&g, tables.clone());
        let mut element_index: u128 = 0;
        for idx in 0..total {
            let mut jumper = Cursor::with_tables(&g, tables.clone());
            assert!(jumper.node_at_preorder(idx), "index {idx} in range");
            assert_eq!(jumper.label(), stepper.label(), "label at {idx}");
            assert_eq!(jumper.rank(), stepper.rank());
            if !stepper.is_null() {
                let mut by_element = Cursor::with_tables(&g, tables.clone());
                assert!(by_element.nth_element(element_index));
                assert_eq!(by_element.label(), stepper.label(), "element {element_index}");
                element_index += 1;
            }
            // Advance the stepper in preorder.
            if stepper.rank() > 0 {
                stepper.down(0);
            } else {
                loop {
                    match stepper.up() {
                        None => break,
                        Some(i) if i + 1 < stepper.rank() => {
                            stepper.down(i + 1);
                            break;
                        }
                        Some(_) => continue,
                    }
                }
            }
        }
        // Out-of-range jumps refuse and stay put.
        let mut c = Cursor::with_tables(&g, tables.clone());
        c.down(0);
        let label = c.label().to_string();
        assert!(!c.node_at_preorder(total));
        assert!(!c.nth_element(element_index));
        assert_eq!(c.label(), label);
    }

    #[test]
    fn subtree_size_matches_materialized_subtrees() {
        let (g, _) = compressed(
            "<db><r><k/><v><a/><b/></v></r><r><k/><v><a/><b/></v></r><r><k/><v/></r></db>",
        );
        let val = sltgrammar::derive::val(&g).unwrap();
        let pre = val.preorder();
        let tables = Arc::new(NavTables::build(&g));
        for (idx, &node) in pre.iter().enumerate() {
            let mut c = Cursor::with_tables(&g, tables.clone());
            assert!(c.node_at_preorder(idx as u128));
            assert_eq!(
                c.subtree_size(),
                val.subtree_size(node) as u128,
                "subtree size at preorder {idx}"
            );
        }
        // The root's subtree is the whole derived tree.
        let mut c = Cursor::with_tables(&g, tables);
        assert_eq!(c.subtree_size(), derived_size(&g));
        // Constant across down/up round trips.
        c.down(0);
        c.up();
        assert_eq!(c.subtree_size(), derived_size(&g));
    }

    #[test]
    fn positional_jump_works_on_exponentially_compressed_grammars() {
        // 2^20 a-nodes in a monadic chain: jumps must not expand anything.
        let mut text = String::from("S -> A1(A1(#))\n");
        for i in 1..=19 {
            text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
        }
        text.push_str("A20 -> a(y1)");
        let g = parse_grammar(&text).unwrap();
        let total = derived_size(&g);
        assert_eq!(total, (1u128 << 20) + 1);
        let tables = Arc::new(NavTables::build(&g));
        let mut c = Cursor::with_tables(&g, tables);
        for idx in [0u128, 1, 12345, total - 2] {
            assert!(c.node_at_preorder(idx));
            assert_eq!(c.label(), "a");
            assert_eq!(c.subtree_size(), total - idx);
        }
        assert!(c.node_at_preorder(total - 1));
        assert!(c.is_null());
        assert!(!c.node_at_preorder(total));
    }

    #[test]
    fn hole_layout_counts_elements_in_document_order() {
        // B -> b(y2, y1): holes must come back in document order (y2 first)
        // with correct element offsets.
        let g = parse_grammar("S -> f(B(a(#,#), c(#,#)), #)\nB -> b(y2, y1)").unwrap();
        let tables = NavTables::build(&g);
        let b = g.nt_by_name("B").unwrap();
        let nav = tables.rule(b);
        assert_eq!(nav.own_elems, 1);
        assert_eq!(nav.holes.len(), 2);
        assert_eq!(nav.holes[0].param, 1, "y2 precedes y1 in document order");
        assert_eq!(nav.holes[0].elems_before, 1);
        assert_eq!(nav.holes[1].param, 0);
        assert_eq!(nav.holes[1].elems_before, 1);
        // The whole document: f, b, c, a = 4 elements.
        assert_eq!(element_count(&g), 4);
    }
}
