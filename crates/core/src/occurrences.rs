//! Digram occurrence generators on SLCF grammars (paper Section IV-A).
//!
//! On a grammar, a digram occurrence of `(a, i, b)` in the derived tree need not
//! be visible inside a single rule: the `a`-node and the `b`-node can live in
//! different rules, connected through nonterminal references and parameters.
//! Every occurrence has a unique *generator*: the (non-root, non-parameter) node
//! whose parent edge realizes it. `TREEPARENT` and `TREECHILD` walk from a
//! generator through transparent nonterminals to the terminal (or frozen
//! pattern) nodes forming the digram, and `RETRIEVEOCCS` collects, per digram,
//! all generators together with their usage-weighted occurrence count.
//!
//! # Delta propagation across recompression rounds
//!
//! [`retrieve_occs`] is a full-grammar walk. Rebuilding it per replacement
//! round made `GrammarRePair::recompress` pay O(grammar) per round — the cost
//! the paper's update model forbids. [`crate::occ_index::OccIndex`] therefore
//! maintains the same table incrementally; the invariants any mutation must
//! respect are:
//!
//! * **A splice reports itself by bumping its rule's
//!   [`sltgrammar::RhsTree::version`].** Every structural or label change to a
//!   right-hand side (inlining, digram replacement, fragment export, rename)
//!   goes through `RhsTree` mutators, which bump the counter. The index treats
//!   a version mismatch as "all candidates whose generator lives in this rule
//!   are stale".
//! * **Chain walks are downward-only.** `TREEPARENT`/`TREECHILD` from a node of
//!   rule `R` enter only (transitive) callees of `R` — never callers. The index
//!   records, per rule, the exact set of rules its walks entered (`deps`), and
//!   inverts it (`dependents`): when rule `C` changes structurally, precisely
//!   the cached rules whose walks entered `C` must be rescanned, nothing else.
//! * **Freezing is monotone and confined to fresh rules.** The frozen set only
//!   ever gains rules created *after* every existing rule was last scanned, and
//!   no pre-existing body references a fresh rule; a cached chain can therefore
//!   never cross a rule that later becomes frozen, so cached resolutions stay
//!   valid under freezing.
//! * **Weights factor through usage.** A generator in rule `R` contributes
//!   `usage(R)` to its digram's weight. Usage changes (inlining shifts
//!   reference counts) are propagated as `count × (usage_new − usage_old)`
//!   deltas per (rule, digram) pair without touching candidate sets.
//! * **Equal-label digrams are order-sensitive.** Their greedy overlap
//!   resolution depends on the global anti-straight-line scan order, so the
//!   index replays exactly that order per equal-label digram from the cached
//!   per-rule candidate lists instead of maintaining them by deltas.

use sltgrammar::{FxHashMap, FxHashSet, Grammar, NodeId, NodeKind, NtId};
use treerepair::Digram;

/// Set of rules introduced by the *current* GrammarRePair run. They represent
/// already-replaced digrams and behave like terminals: chain walks stop at them
/// and they are never inlined or rescanned.
pub type FrozenSet = FxHashSet<NtId>;

/// Whether `kind` is a reference to a rule the current run may still look into
/// (i.e. a nonterminal that is not frozen).
pub fn is_transparent_nt(kind: NodeKind, frozen: &FrozenSet) -> bool {
    match kind {
        NodeKind::Nt(nt) => !frozen.contains(&nt),
        _ => false,
    }
}

/// A grammar-level address: a node within the right-hand side of a rule — the
/// paper's `(R, n)` pairs.
pub type GrammarNode = (NtId, NodeId);

/// One digram occurrence generator together with the resolved digram ends.
#[derive(Debug, Clone, Copy)]
pub struct Generator {
    /// Rule containing the generator node.
    pub rule: NtId,
    /// The generator node itself.
    pub node: NodeId,
    /// The resolved tree parent (rule, node) — labelled `a`.
    pub tree_parent: GrammarNode,
    /// The resolved tree child (rule, node) — labelled `b`.
    pub tree_child: GrammarNode,
}

/// Occurrence information for one digram.
#[derive(Debug, Clone, Default)]
pub struct DigramOccs {
    /// All recorded (non-overlapping) generators.
    pub generators: Vec<Generator>,
    /// Usage-weighted number of occurrences in the derived tree (saturating).
    pub weight: u64,
    /// Tree-parent and tree-child nodes already used, for overlap checks of
    /// equal-label digrams.
    used_parents: FxHashSet<GrammarNode>,
    used_children: FxHashSet<GrammarNode>,
}

impl DigramOccs {
    fn would_overlap(&self, parent: GrammarNode, child: GrammarNode) -> bool {
        overlaps(&self.used_parents, &self.used_children, parent, child)
    }
}

/// The equal-label overlap predicate shared by [`retrieve_occs`] and the
/// incremental index's replay: an occurrence `(parent, child)` overlaps the
/// already recorded ones if either endpoint was already used as an endpoint.
pub fn overlaps(
    used_parents: &FxHashSet<GrammarNode>,
    used_children: &FxHashSet<GrammarNode>,
    parent: GrammarNode,
    child: GrammarNode,
) -> bool {
    used_children.contains(&parent)
        || used_parents.contains(&child)
        || used_children.contains(&child)
        || used_parents.contains(&parent)
}

/// `TREECHILD` (paper Algorithm 2): follow transparent nonterminal references
/// downwards (to the referenced rule's root) until a terminal or frozen node is
/// reached.
pub fn tree_child(g: &Grammar, rule: NtId, node: NodeId, frozen: &FrozenSet) -> GrammarNode {
    tree_child_traced(g, rule, node, frozen, &mut |_| {})
}

/// [`tree_child`] that additionally reports every rule the walk enters to
/// `entered` (the incremental index's chain-dependency hook).
pub fn tree_child_traced(
    g: &Grammar,
    rule: NtId,
    node: NodeId,
    frozen: &FrozenSet,
    entered: &mut impl FnMut(NtId),
) -> GrammarNode {
    let mut rule = rule;
    let mut node = node;
    loop {
        let kind = g.rule(rule).rhs.kind(node);
        match kind {
            NodeKind::Nt(callee) if !frozen.contains(&callee) => {
                entered(callee);
                rule = callee;
                node = g.rule(callee).rhs.root();
            }
            _ => return (rule, node),
        }
    }
}

/// `TREEPARENT` (paper Algorithm 3): follow the parent upwards; whenever the
/// parent is a transparent nonterminal reference, continue at the corresponding
/// parameter's parent inside the referenced rule. Returns the tree parent node
/// and the child index of the edge.
///
/// The node must not be the root of its rule.
pub fn tree_parent(
    g: &Grammar,
    rule: NtId,
    node: NodeId,
    frozen: &FrozenSet,
) -> Option<(GrammarNode, usize)> {
    tree_parent_traced(g, rule, node, frozen, &mut |_| {})
}

/// [`tree_parent`] that additionally reports every rule the walk enters to
/// `entered` (the incremental index's chain-dependency hook).
pub fn tree_parent_traced(
    g: &Grammar,
    rule: NtId,
    node: NodeId,
    frozen: &FrozenSet,
    entered: &mut impl FnMut(NtId),
) -> Option<(GrammarNode, usize)> {
    let mut rule = rule;
    let mut node = node;
    loop {
        let rhs = &g.rule(rule).rhs;
        let parent = rhs.parent(node)?;
        let index = rhs.child_index(node)?;
        match rhs.kind(parent) {
            NodeKind::Nt(callee) if !frozen.contains(&callee) => {
                // The node is the `index`-th argument of the reference: continue
                // at the parameter node y_{index+1} inside the callee.
                entered(callee);
                let callee_rhs = &g.rule(callee).rhs;
                let param = callee_rhs.find_param(index as u32)?;
                rule = callee;
                node = param;
            }
            _ => return Some(((rule, parent), index)),
        }
    }
}

/// The digram label of a grammar node once chains have been resolved: terminals
/// and frozen references stand for themselves.
pub fn resolved_kind(g: &Grammar, (rule, node): GrammarNode) -> NodeKind {
    g.rule(rule).rhs.kind(node)
}

/// `RETRIEVEOCCS` (paper Algorithm 4): collects, per digram, the non-overlapping
/// occurrence generators over the whole grammar together with usage-weighted
/// occurrence counts. Frozen rules are not scanned.
///
/// This full walk is the *rebuild oracle*: `GrammarRePair` with the
/// [`treerepair::DigramSelector::NaiveScan`] selector calls it per round, and
/// the incremental [`crate::occ_index::OccIndex`] must agree with it exactly.
pub fn retrieve_occs(g: &Grammar, frozen: &FrozenSet) -> FxHashMap<Digram, DigramOccs> {
    let order = g
        .anti_sl_order()
        .expect("occurrence retrieval requires a straight-line grammar");
    let usage = g.usage();
    let mut table: FxHashMap<Digram, DigramOccs> = FxHashMap::default();

    for &rule in &order {
        if frozen.contains(&rule) {
            continue;
        }
        let rhs = &g.rule(rule).rhs;
        let root = rhs.root();
        for node in rhs.preorder() {
            if node == root || rhs.kind(node).is_param() {
                continue;
            }
            let Some((tp, index)) = tree_parent(g, rule, node, frozen) else {
                continue;
            };
            let tc = tree_child(g, rule, node, frozen);
            let digram = Digram {
                parent: resolved_kind(g, tp),
                child_index: index,
                child: resolved_kind(g, tc),
            };
            let entry = table.entry(digram).or_default();
            if digram.equal_labels() {
                // Never record equal-label occurrences whose tree child is the
                // root of another rule (the generator node is a nonterminal).
                if is_transparent_nt(rhs.kind(node), frozen) {
                    continue;
                }
                if entry.would_overlap(tp, tc) {
                    continue;
                }
            }
            entry.used_parents.insert(tp);
            entry.used_children.insert(tc);
            entry.generators.push(Generator {
                rule,
                node,
                tree_parent: tp,
                tree_child: tc,
            });
            entry.weight = entry
                .weight
                .saturating_add(usage.get(&rule).copied().unwrap_or(0));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::text::parse_grammar;

    /// The paper's "Grammar 1" fragment, embedded under a start rule that calls
    /// C three times and A twice (so usage(C)=3, usage(A)=2·1+3=5).
    fn grammar1() -> Grammar {
        parse_grammar(
            "S -> r(C, r(C, r(C, r(A(#,#), A(#,#)))))\n\
             C -> A(B(#),#)\n\
             A -> a(y1, a(B(#), a(#, y2)))\n\
             B -> b(y1,#)",
        )
        .unwrap()
    }

    fn term(g: &Grammar, name: &str) -> NodeKind {
        NodeKind::Term(g.symbols.get(name).unwrap())
    }

    #[test]
    fn tree_child_follows_rule_roots() {
        let g = grammar1();
        let frozen = FrozenSet::default();
        let c = g.nt_by_name("C").unwrap();
        let b = g.nt_by_name("B").unwrap();
        // Node (C,2) in paper addressing: the B-labelled argument of the A
        // reference in rule C. Its tree child is the b-labelled root of rule B.
        let rhs = &g.rule(c).rhs;
        let node = rhs.nth_preorder(2).unwrap();
        assert!(rhs.kind(node).is_nt());
        let (child_rule, child_node) = tree_child(&g, c, node, &frozen);
        assert_eq!(child_rule, b);
        assert_eq!(child_node, g.rule(child_rule).rhs.root());
        assert_eq!(resolved_kind(&g, (child_rule, child_node)), term(&g, "b"));
    }

    #[test]
    fn tree_parent_follows_parameters_into_callers() {
        let g = grammar1();
        let frozen = FrozenSet::default();
        let c = g.nt_by_name("C").unwrap();
        let a = g.nt_by_name("A").unwrap();
        // Node (C,2) is the first argument of the A reference; its tree parent
        // is the a-labelled root of rule A (the parent of y1), child index 0 —
        // the paper's TREEPARENT(C,2) = ((A,1), 1).
        let rhs = &g.rule(c).rhs;
        let node = rhs.nth_preorder(2).unwrap();
        let ((prule, pnode), idx) = tree_parent(&g, c, node, &frozen).unwrap();
        assert_eq!(prule, a);
        assert_eq!(idx, 0);
        assert_eq!(resolved_kind(&g, (prule, pnode)), term(&g, "a"));
        assert_eq!(pnode, g.rule(a).rhs.root());
    }

    #[test]
    fn retrieve_occs_weights_by_usage() {
        let g = grammar1();
        let frozen = FrozenSet::default();
        let table = retrieve_occs(&g, &frozen);
        // The digram (a,1,b) (paper notation) is generated by (A,4) [the B(#)
        // inside rule A, weight usage(A)=5] and by (C,3) [the B(#) argument
        // inside rule C, weight usage(C)=3]: total weight 8.
        let a = term(&g, "a");
        let b = term(&g, "b");
        let d = Digram {
            parent: a,
            child_index: 0,
            child: b,
        };
        let occs = table.get(&d).expect("digram (a,1,b) present");
        assert_eq!(occs.generators.len(), 2);
        assert_eq!(occs.weight, 8);
    }

    #[test]
    fn equal_label_digrams_do_not_cross_rule_roots() {
        // S calls A twice; within A there is an (a,2,a) chain; the A-references
        // themselves would form crossing occurrences which must not be counted.
        let g = parse_grammar(
            "S -> a(#, a(#, A))\n\
             A -> a(#, a(#, #))",
        )
        .unwrap();
        let frozen = FrozenSet::default();
        let table = retrieve_occs(&g, &frozen);
        let a = term(&g, "a");
        let d = Digram {
            parent: a,
            child_index: 1,
            child: a,
        };
        let occs = table.get(&d).expect("digram (a,2,a) present");
        // One occurrence inside S (its two a's) and one inside A; the crossing
        // occurrence S→A is not recorded because its tree child is A's root.
        assert_eq!(occs.generators.len(), 2);
        for gen in &occs.generators {
            assert!(!g.rule(gen.rule).rhs.kind(gen.node).is_nt());
        }
    }

    #[test]
    fn frozen_rules_behave_like_terminals() {
        let g = parse_grammar(
            "S -> f(X(#), X(#))\n\
             X -> a(b(y1,#),#)",
        )
        .unwrap();
        let x = g.nt_by_name("X").unwrap();
        let mut frozen = FrozenSet::default();
        frozen.insert(x);
        let table = retrieve_occs(&g, &frozen);
        // With X frozen, the only digrams seen from S are (f,i,X) and the ones
        // inside S; nothing inside X is scanned and no chain enters X.
        let fx0 = Digram {
            parent: term(&g, "f"),
            child_index: 0,
            child: NodeKind::Nt(x),
        };
        assert!(table.contains_key(&fx0));
        for d in table.keys() {
            assert_ne!(d.parent, term(&g, "b"));
            assert_ne!(d.child, term(&g, "b"));
        }
    }
}
