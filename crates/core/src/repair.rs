//! The GrammarRePair compression loop (paper Algorithm 1).
//!
//! GrammarRePair takes an arbitrary SLCF tree grammar `G` and produces a
//! (smaller) grammar `G'` with `val(G') = val(G)` by running RePair digram
//! replacement *directly on the grammar*: occurrences are counted over the
//! derived tree via usage-weighted occurrence generators, replacements
//! partially decompress the grammar only where needed, and a final pruning
//! phase removes unproductive rules.

use sltgrammar::pruning::{prune, PruneStats};
use sltgrammar::{FxHashSet, Grammar, NtId, SymbolTable};
use treerepair::digram::pattern_rhs;
use treerepair::{Digram, DigramSelector};
use xmltree::binary::to_binary;
use xmltree::XmlTree;

use crate::occ_index::OccIndex;
use crate::occurrences::{retrieve_occs, FrozenSet};
use crate::replace::{replace_all_occurrences, RefCounts};

/// Configuration of the GrammarRePair loop.
#[derive(Debug, Clone, Copy)]
pub struct GrammarRePairConfig {
    /// The paper's `k_in`: maximal rank of a digram pattern rule.
    pub max_rank: usize,
    /// Minimal usage-weighted occurrence count for a digram to be replaced.
    pub min_occurrences: u64,
    /// Enable the fragment-export optimization of Section IV-E ("lemma
    /// generation"). Disabling it reproduces the non-optimized curve of Fig. 3.
    pub optimize: bool,
    /// Run the final pruning phase.
    pub prune: bool,
    /// Digram selection strategy, shared with the tree compressor: the
    /// frequency-bucket queue by default, a full table scan as the testable
    /// fallback. Both produce identical selections.
    pub selector: DigramSelector,
}

impl Default for GrammarRePairConfig {
    fn default() -> Self {
        GrammarRePairConfig {
            max_rank: 4,
            min_occurrences: 2,
            optimize: true,
            prune: true,
            selector: DigramSelector::FrequencyQueue,
        }
    }
}

/// Statistics of one GrammarRePair run.
#[derive(Debug, Clone, Default)]
pub struct RepairStats {
    /// Number of digram replacement rounds.
    pub rounds: usize,
    /// Grammar edge count before recompression.
    pub input_edges: usize,
    /// Grammar edge count after recompression.
    pub output_edges: usize,
    /// Largest intermediate grammar edge count observed after any round — the
    /// numerator of the paper's blow-up measure (Figure 2).
    pub max_intermediate_edges: usize,
    /// Total number of inlining steps performed during partial decompression.
    pub inlinings: usize,
    /// Total number of digram occurrences replaced.
    pub replacements: usize,
    /// Number of fragment rules exported by the optimization.
    pub exported_rules: usize,
    /// Result of the pruning phase.
    pub pruned: PruneStats,
}

impl RepairStats {
    /// Compression ratio relative to the input grammar.
    pub fn ratio(&self) -> f64 {
        if self.input_edges == 0 {
            return 1.0;
        }
        self.output_edges as f64 / self.input_edges as f64
    }

    /// Blow-up: max intermediate grammar size / final grammar size.
    pub fn blowup(&self) -> f64 {
        if self.output_edges == 0 {
            return 1.0;
        }
        self.max_intermediate_edges as f64 / self.output_edges as f64
    }
}

/// The GrammarRePair recompressor.
#[derive(Debug, Clone, Default)]
pub struct GrammarRePair {
    /// Loop configuration.
    pub config: GrammarRePairConfig,
}

impl GrammarRePair {
    /// Creates a recompressor with the given configuration.
    pub fn new(config: GrammarRePairConfig) -> Self {
        GrammarRePair { config }
    }

    /// Recompresses `g` in place. The derived tree `val(G)` is unchanged.
    pub fn recompress(&self, g: &mut Grammar) -> RepairStats {
        let input_edges = g.edge_count();
        let mut stats = RepairStats {
            input_edges,
            max_intermediate_edges: input_edges,
            ..RepairStats::default()
        };

        match self.config.selector {
            DigramSelector::FrequencyQueue => self.run_incremental(g, &mut stats),
            DigramSelector::NaiveScan => self.run_rebuild(g, &mut stats),
        }

        g.gc();
        if self.config.prune {
            stats.pruned = prune(g);
        }
        g.compact();
        stats.output_edges = g.edge_count();
        stats.max_intermediate_edges = stats.max_intermediate_edges.max(stats.output_edges);
        stats
    }

    /// The default replacement loop: the occurrence table and the shared
    /// frequency-bucket queue are built **once** and refreshed with deltas
    /// after each round — [`retrieve_occs`] is never called here, so a round
    /// costs time proportional to what it changes, not to the grammar.
    fn run_incremental(&self, g: &mut Grammar, stats: &mut RepairStats) {
        let mut frozen: FrozenSet = FrozenSet::default();
        let mut index = OccIndex::build(g, &frozen);
        while let Some(digram) =
            index.select_best(g, self.config.min_occurrences, self.config.max_rank)
        {
            let rules = index.generator_rules(&digram);
            let rank = digram.pattern_rank(g);
            let pattern = pattern_rhs(g, &digram);
            let x = g.add_rule_fresh("X", rank, pattern);
            frozen.insert(x);
            // Reference counts for fragment export come from the index's
            // maintained call graph (no body walk); only the fresh pattern
            // rule's tiny body must be folded in.
            let mut refs = RefCounts::from_counts(index.ref_counts());
            refs.add_rule_body(g, x);
            // The pattern rule is not in the cached order, but the replacement
            // loop only visits generator rules, which all predate it.
            let round = replace_all_occurrences(
                g,
                &digram,
                x,
                &rules,
                index.order(),
                &frozen,
                self.config.optimize,
                &mut refs,
            );
            stats.inlinings += round.inlinings;
            stats.replacements += round.replacements;
            stats.exported_rules += round.exported_rules;
            let success = round.replacements > 0;
            if !success {
                // Nothing was replaced (every counted occurrence overlapped a
                // previously replaced one): drop the useless pattern rule and
                // ban the digram to guarantee termination. Localization may
                // still have inlined rules, so the refresh below is not
                // skippable.
                g.remove_rule(x);
                frozen.remove(&x);
                index.exclude(&digram);
            }
            index.refresh(g, &frozen);
            if success {
                stats.rounds += 1;
                stats.max_intermediate_edges =
                    stats.max_intermediate_edges.max(index.edge_count());
            }
        }
    }

    /// The rebuild oracle: re-retrieves all occurrence generators per round by
    /// a full grammar walk and selects by a linear table scan. Kept as the
    /// testable reference — byte-identical outputs to the incremental path are
    /// asserted by the selector-equivalence suites.
    fn run_rebuild(&self, g: &mut Grammar, stats: &mut RepairStats) {
        let mut frozen: FrozenSet = FrozenSet::default();
        // Digrams that were selected but produced no replacement; they are
        // banned to guarantee termination.
        let mut banned: FxHashSet<Digram> = FxHashSet::default();

        loop {
            let table = retrieve_occs(g, &frozen);
            let mut best: Option<(u64, Digram)> = None;
            for (digram, occs) in &table {
                if banned.contains(digram) {
                    continue;
                }
                if occs.weight < self.config.min_occurrences {
                    continue;
                }
                if digram.pattern_rank(g) > self.config.max_rank {
                    continue;
                }
                match &best {
                    None => best = Some((occs.weight, *digram)),
                    Some((w, d)) => {
                        if occs.weight > *w
                            || (occs.weight == *w && digram.sort_key() < d.sort_key())
                        {
                            best = Some((occs.weight, *digram));
                        }
                    }
                }
            }
            let Some(digram) = best.map(|(_, d)| d) else { break };

            let rank = digram.pattern_rank(g);
            let pattern = pattern_rhs(g, &digram);
            let x = g.add_rule_fresh("X", rank, pattern);
            frozen.insert(x);
            let rules: FxHashSet<NtId> = table
                .get(&digram)
                .map(|o| o.generators.iter().map(|gen| gen.rule).collect())
                .unwrap_or_default();
            let order = g
                .anti_sl_order()
                .expect("replacement requires a straight-line grammar");
            let mut refs = RefCounts::from_grammar(g);
            let round = replace_all_occurrences(
                g,
                &digram,
                x,
                &rules,
                &order,
                &frozen,
                self.config.optimize,
                &mut refs,
            );
            stats.inlinings += round.inlinings;
            stats.replacements += round.replacements;
            stats.exported_rules += round.exported_rules;
            if round.replacements == 0 {
                g.remove_rule(x);
                frozen.remove(&x);
                banned.insert(digram);
                continue;
            }
            stats.rounds += 1;
            stats.max_intermediate_edges = stats.max_intermediate_edges.max(g.edge_count());
        }
    }

    /// Compresses an XML document from scratch by running GrammarRePair on the
    /// trivial grammar whose start rule is the document's binary tree — this is
    /// "GrammarRePair applied to a tree" in the paper's experiments.
    pub fn compress_xml(&self, xml: &XmlTree) -> (Grammar, RepairStats) {
        let mut symbols = SymbolTable::new();
        let bin = to_binary(xml, &mut symbols).expect("document labels are valid symbols");
        let mut g = Grammar::new(symbols, bin);
        let stats = self.recompress(&mut g);
        (g, stats)
    }

    /// Like [`GrammarRePair::compress_xml`], but interns the document's labels
    /// into `shared` and hands the grammar a *clone* of it: the caller's table
    /// is sealed ([`SymbolTable::seal`]) after interning, so the grammar's
    /// whole load-time alphabet references the caller's resident strings
    /// instead of copying them. This is the multi-document seam
    /// [`crate::store::DomStore`] loads through.
    ///
    /// Fails if a document label was already interned with a different rank.
    /// On failure `shared` keeps the labels interned before the conflict
    /// (unsealed, in its local tail) — callers that need all-or-nothing
    /// semantics should intern into a scratch clone and commit on success,
    /// as [`crate::store::DomStore::load_xml`] does.
    pub fn compress_xml_shared(
        &self,
        xml: &XmlTree,
        shared: &mut SymbolTable,
    ) -> crate::error::Result<(Grammar, RepairStats)> {
        let bin = to_binary(xml, shared)?;
        shared.seal();
        let mut g = Grammar::new(shared.clone(), bin);
        let stats = self.recompress(&mut g);
        Ok((g, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::fingerprint;
    use sltgrammar::text::parse_grammar;
    use treerepair::TreeRePair;
    use xmltree::parse::parse_xml;

    #[test]
    fn recompression_preserves_the_derived_tree() {
        let mut g = parse_grammar(
            "S -> f(A(B,B),#)\n\
             B -> A(#,#)\n\
             A -> a(#, a(y1, y2))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let stats = GrammarRePair::default().recompress(&mut g);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), before);
        assert!(stats.output_edges <= stats.input_edges + 2);
    }

    #[test]
    fn section_iii_example_b_ab8_a() {
        // The updated grammar of Section III-B: {A -> bBBa, B -> CC, C -> DD, D -> ab}
        // represented as a monadic tree grammar. GrammarRePair should recompress
        // it without losing the represented string b(ab)^8a.
        let mut g = parse_grammar(
            "S -> b(B(B(a(#))))\n\
             B -> C(C(y1))\n\
             C -> D(D(y1))\n\
             D -> a(b(y1))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let input_edges = g.edge_count();
        let stats = GrammarRePair::default().recompress(&mut g);
        g.validate().unwrap();
        assert_eq!(fingerprint(&g), before);
        // The grammar must stay compressed (the represented string has 18 letters
        // plus the null leaf; the recompressed grammar must be smaller than that).
        assert!(stats.output_edges <= input_edges + 2);
        assert!((stats.output_edges as u128) < fingerprint(&g).size);
    }

    #[test]
    fn compressing_a_tree_matches_treerepair_quality() {
        let mut doc = String::from("<log>");
        for i in 0..32 {
            doc.push_str(&format!(
                "<entry><ts/><host/><msg><code{}/></msg></entry>",
                i % 2
            ));
        }
        doc.push_str("</log>");
        let xml = parse_xml(&doc).unwrap();
        let (g_tree, tr_stats) = TreeRePair::default().compress_xml(&xml);
        let (g_gram, gr_stats) = GrammarRePair::default().compress_xml(&xml);
        g_gram.validate().unwrap();
        // Both compress the same document to a similar size (within 25%).
        assert_eq!(
            fingerprint(&g_tree),
            fingerprint(&g_gram),
            "both grammars must derive the same tree"
        );
        let a = tr_stats.output_edges as f64;
        let b = gr_stats.output_edges as f64;
        assert!(
            (a - b).abs() <= 0.25 * a.max(b) + 4.0,
            "sizes too different: TreeRePair {a}, GrammarRePair {b}"
        );
        // Strong compression on this repetitive document.
        assert!(gr_stats.output_edges * 3 < gr_stats.input_edges);
    }

    #[test]
    fn optimization_can_be_disabled() {
        let mut g = parse_grammar(
            "S -> f(A(b(#,#)), A(b(#,#)))\n\
             A -> a(y1, c(d(#,#), c(d(#,#), e(#,#))))",
        )
        .unwrap();
        let before = fingerprint(&g);
        let config = GrammarRePairConfig {
            optimize: false,
            ..GrammarRePairConfig::default()
        };
        let stats = GrammarRePair::new(config).recompress(&mut g);
        assert_eq!(fingerprint(&g), before);
        assert_eq!(stats.exported_rules, 0);
    }

    #[test]
    fn idempotent_on_already_compressed_grammars() {
        // Compress a document, then recompress the result: the size must not grow.
        let mut doc = String::from("<r>");
        for _ in 0..20 {
            doc.push_str("<item><k/><v/></item>");
        }
        doc.push_str("</r>");
        let xml = parse_xml(&doc).unwrap();
        let (mut g, first) = GrammarRePair::default().compress_xml(&xml);
        let fp = fingerprint(&g);
        let second = GrammarRePair::default().recompress(&mut g);
        assert_eq!(fingerprint(&g), fp);
        assert!(second.output_edges <= first.output_edges);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let xml = parse_xml("<r><a><b/></a><a><b/></a><a><b/></a></r>").unwrap();
        let (g, stats) = GrammarRePair::default().compress_xml(&xml);
        assert_eq!(stats.output_edges, g.edge_count());
        assert!(stats.max_intermediate_edges >= stats.output_edges);
        assert!(stats.blowup() >= 1.0);
        assert!(stats.ratio() <= 1.0 + f64::EPSILON);
        assert!(stats.rounds > 0);
        assert!(stats.replacements >= stats.rounds);
    }
}
