//! Store-level ingestion queue: batch coalescing in front of a
//! [`DurableStore`].
//!
//! High-throughput ingestion workloads submit many small per-document
//! batches. Pushing each one through [`DurableStore::apply_batch`] pays one
//! WAL record — and, under light concurrency, close to one fsync — per
//! batch. The [`IngestQueue`] decouples *submission* from *durability*:
//! writers enqueue batches without blocking, and a **drain** folds
//! everything pending into a single [`ApplyMany`](crate::wal::WalEntry)
//! record, so the whole drain costs one group-committed fsync and one
//! scheduler maintenance sweep no matter how many batches it absorbed.
//!
//! # Coalescing rules
//!
//! A drain takes the entire pending list and merges it into one job per
//! *distinct document*: the ops of every batch for that document are
//! concatenated in **submission order**, and jobs are emitted in
//! first-submission order. This is a superset of adjacent-batch
//! coalescing and is sound because the store gives no cross-document
//! ordering guarantees (ops on different documents commute) while
//! *per-document* order — the one that matters for replay — is exactly
//! preserved. The coalesced record replays through the same non-fatal
//! per-op semantics as the original batches, so recovery reproduces the
//! identical (possibly partial) state.
//!
//! An error applying a document's coalesced job is reported to **every**
//! ticket that contributed to that job: the submissions were logged as one
//! record, so they share one outcome, mirroring what replay reconstructs.
//!
//! # Drain ordering
//!
//! At most one drain — a [`flush`](IngestQueue::flush) or a
//! [`barrier`](IngestQueue::barrier) — runs at a time; later drains wait
//! for the running one to finish. Because every drain commits its WAL
//! record before the next drain starts, log order equals drain order, and
//! a batch submitted *during* an in-flight drain simply lands in the next
//! one; per-document submission order is never reordered across drains.
//! Submissions themselves never wait on a drain. The store's background
//! recompression scheduler runs once per drain (inside the store's apply
//! path), i.e. *between* flushes, never in the middle of one.
//!
//! # Barrier semantics
//!
//! A writer that needs its document durable **now** calls
//! [`barrier`](IngestQueue::barrier): it drains *only that document's*
//! pending batches (one `ApplyBatch` record, one group-committed fsync)
//! and leaves every other document queued. Writers therefore barrier only
//! on their own document; cross-document batches fan out through
//! [`DurableStore::apply_batch_many`] at the next flush. Mixing queued
//! submissions with *direct* [`DurableStore`] mutations of the same
//! document is the one thing the queue cannot order — barrier the
//! document first.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use xmltree::updates::UpdateOp;

use crate::durable::DurableStore;
use crate::error::{RepairError, Result};
use crate::store::DocId;
use crate::update::BatchStats;

/// Receipt for one submitted batch; redeem it with
/// [`IngestQueue::wait`]. Tickets are single-use: the result is consumed
/// by the first wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Counters the queue keeps across its lifetime (see
/// [`IngestQueue::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Batches accepted by [`IngestQueue::submit`].
    pub submitted: u64,
    /// Drains that wrote an `ApplyMany` record ([`IngestQueue::flush`]
    /// with a non-empty pending list).
    pub flushes: u64,
    /// Coalesced per-document jobs written across all flushes; the
    /// coalescing win is `submitted / coalesced_jobs`.
    pub coalesced_jobs: u64,
    /// Single-document drains ([`IngestQueue::barrier`] that found work).
    pub barriers: u64,
}

/// What one [`IngestQueue::flush`] drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Submitted batches absorbed by this drain.
    pub batches: usize,
    /// Distinct documents they coalesced into — the job count of the
    /// single `ApplyMany` record (0 means the pending list was empty and
    /// nothing was logged).
    pub jobs: usize,
}

struct PendingBatch {
    ticket: u64,
    doc: DocId,
    ops: Vec<UpdateOp>,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<PendingBatch>,
    next_ticket: u64,
    results: HashMap<u64, Result<BatchStats>>,
    /// A drain (flush or barrier) is in flight with the state lock
    /// released; later drains wait on the condvar.
    draining: bool,
    stats: QueueStats,
}

/// An ingestion queue in front of a [`DurableStore`] (see the module
/// docs for the coalescing, ordering and barrier contract).
pub struct IngestQueue {
    store: Arc<DurableStore>,
    state: Mutex<QueueState>,
    cond: Condvar,
}

impl IngestQueue {
    /// Creates an empty queue feeding `store`.
    pub fn new(store: Arc<DurableStore>) -> Self {
        IngestQueue {
            store,
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
        }
    }

    /// The store this queue drains into.
    pub fn store(&self) -> &Arc<DurableStore> {
        &self.store
    }

    /// Enqueues one batch for `doc` without blocking (drains in progress
    /// don't stall submissions). Nothing is logged or applied until the
    /// next [`flush`](IngestQueue::flush), [`barrier`](IngestQueue::barrier)
    /// for this document, or [`wait`](IngestQueue::wait) on the ticket.
    pub fn submit(&self, doc: DocId, ops: Vec<UpdateOp>) -> Ticket {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.stats.submitted += 1;
        st.pending.push(PendingBatch { ticket, doc, ops });
        Ticket(ticket)
    }

    /// Drains everything pending as **one** coalesced `ApplyMany` record —
    /// one group-committed fsync, one scheduler sweep — and posts each
    /// document's outcome to all of its tickets. Waits first if another
    /// drain is in flight.
    pub fn flush(&self) -> FlushReport {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        while st.draining {
            st = self.cond.wait(st).expect("queue lock never poisoned");
        }
        if st.pending.is_empty() {
            return FlushReport::default();
        }
        let batches = std::mem::take(&mut st.pending);
        st.draining = true;
        drop(st);

        // Coalesce: one job per document, ops concatenated in submission
        // order, documents in first-submission order.
        let drained = batches.len();
        let mut jobs: Vec<(DocId, Vec<UpdateOp>)> = Vec::new();
        let mut tickets: Vec<Vec<u64>> = Vec::new();
        let mut index: HashMap<DocId, usize> = HashMap::new();
        for batch in batches {
            let at = *index.entry(batch.doc).or_insert_with(|| {
                jobs.push((batch.doc, Vec::new()));
                tickets.push(Vec::new());
                jobs.len() - 1
            });
            jobs[at].1.extend(batch.ops);
            tickets[at].push(batch.ticket);
        }
        let (results, _maintenance) = self.store.apply_batch_many(&jobs);

        let mut st = self.state.lock().expect("queue lock never poisoned");
        st.stats.flushes += 1;
        st.stats.coalesced_jobs += jobs.len() as u64;
        for (at, result) in results.into_iter().enumerate() {
            for &ticket in &tickets[at] {
                st.results.insert(ticket, result.clone());
            }
        }
        st.draining = false;
        drop(st);
        self.cond.notify_all();
        FlushReport {
            batches: drained,
            jobs: jobs.len(),
        }
    }

    /// Drains **only `doc`'s** pending batches as one `ApplyBatch` record
    /// and returns their combined outcome (`None` when nothing was queued
    /// for `doc`). Other documents stay queued. Waits first if another
    /// drain is in flight — WAL order must match submission order for
    /// this document, and the in-flight drain may hold earlier batches.
    pub fn barrier(&self, doc: DocId) -> Option<Result<BatchStats>> {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        while st.draining {
            st = self.cond.wait(st).expect("queue lock never poisoned");
        }
        let mut ops = Vec::new();
        let mut tickets = Vec::new();
        st.pending.retain_mut(|batch| {
            if batch.doc == doc {
                ops.append(&mut batch.ops);
                tickets.push(batch.ticket);
                false
            } else {
                true
            }
        });
        if tickets.is_empty() {
            return None;
        }
        st.draining = true;
        drop(st);

        let result = self
            .store
            .apply_batch(doc, &ops)
            .map(|(stats, _maintenance)| stats);

        let mut st = self.state.lock().expect("queue lock never poisoned");
        st.stats.barriers += 1;
        for &ticket in &tickets {
            st.results.insert(ticket, result.clone());
        }
        st.draining = false;
        drop(st);
        self.cond.notify_all();
        Some(result)
    }

    /// Blocks until `ticket`'s batch is durable and applied, then returns
    /// its outcome. If the batch is still queued and no drain is running,
    /// the caller becomes the flush leader itself (a lone writer never
    /// deadlocks waiting for someone else to flush). Waiting on a ticket
    /// whose result was already consumed is an error.
    pub fn wait(&self, ticket: Ticket) -> Result<BatchStats> {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        loop {
            if let Some(result) = st.results.remove(&ticket.0) {
                return result;
            }
            let queued = st.pending.iter().any(|b| b.ticket == ticket.0);
            if queued && !st.draining {
                drop(st);
                self.flush();
                st = self.state.lock().expect("queue lock never poisoned");
                continue;
            }
            if !queued && !st.draining {
                return Err(RepairError::Storage {
                    detail: format!(
                        "ingest queue: unknown ticket {} (results are consumed once)",
                        ticket.0
                    ),
                });
            }
            st = self.cond.wait(st).expect("queue lock never poisoned");
        }
    }

    /// Batches currently queued (submitted but not yet drained).
    pub fn pending_batches(&self) -> usize {
        self.state
            .lock()
            .expect("queue lock never poisoned")
            .pending
            .len()
    }

    /// Lifetime counters: submissions, flushes, coalesced jobs, barriers.
    pub fn stats(&self) -> QueueStats {
        self.state.lock().expect("queue lock never poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::testing::FailpointFs;
    use xmltree::parse::parse_xml;
    use xmltree::XmlTree;

    fn doc(tag: &str, n: usize) -> XmlTree {
        let mut s = format!("<{tag}>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str(&format!("</{tag}>"));
        parse_xml(&s).unwrap()
    }

    fn queue() -> (Arc<FailpointFs>, Arc<DurableStore>, IngestQueue) {
        let fs = Arc::new(FailpointFs::new());
        let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
        let store = Arc::new(store);
        (fs, store.clone(), IngestQueue::new(store))
    }

    fn rename(target: u32, label: &str) -> UpdateOp {
        UpdateOp::Rename {
            target: target as usize,
            label: label.into(),
        }
    }

    #[test]
    fn a_flush_coalesces_per_document_and_logs_one_record() {
        let (fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        let syncs_before = fs.sync_count();

        let t1 = queue.submit(a, vec![rename(1, "entry")]);
        let t2 = queue.submit(b, vec![rename(1, "post")]);
        let t3 = queue.submit(a, vec![rename(5, "note")]);
        assert_eq!(queue.pending_batches(), 3);

        let report = queue.flush();
        assert_eq!(report.batches, 3);
        assert_eq!(report.jobs, 2, "two distinct documents");
        assert_eq!(
            fs.sync_count() - syncs_before,
            1,
            "one coalesced record, one fsync"
        );

        // Doc a's two batches share one coalesced outcome (2 ops); doc b's
        // lone batch sees its own.
        for (t, ops) in [(t1, 2), (t2, 1), (t3, 2)] {
            assert_eq!(queue.wait(t).unwrap().ops, ops);
        }
        let a_xml = store.to_xml(a).unwrap().to_xml();
        assert!(a_xml.contains("<entry") && a_xml.contains("<note"));
        assert!(store.to_xml(b).unwrap().to_xml().contains("<post"));
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.flushes, stats.coalesced_jobs), (3, 1, 2));
    }

    #[test]
    fn a_barrier_drains_only_its_own_document() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();

        let ta = queue.submit(a, vec![rename(1, "entry")]);
        let tb = queue.submit(b, vec![rename(1, "post")]);

        let stats = queue.barrier(a).expect("doc a had pending ops").unwrap();
        assert_eq!(stats.ops, 1);
        assert_eq!(queue.pending_batches(), 1, "doc b stays queued");
        assert!(store.to_xml(a).unwrap().to_xml().contains("<entry>"));
        assert!(!store.to_xml(b).unwrap().to_xml().contains("<post>"));
        assert!(queue.barrier(a).is_none(), "nothing left for doc a");
        assert_eq!(queue.wait(ta).unwrap().ops, 1);

        queue.flush();
        assert_eq!(queue.wait(tb).unwrap().ops, 1);
        assert!(store.to_xml(b).unwrap().to_xml().contains("<post>"));
    }

    #[test]
    fn wait_becomes_the_flush_leader_when_nobody_drains() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let t = queue.submit(a, vec![rename(1, "entry")]);
        assert_eq!(queue.wait(t).unwrap().ops, 1, "wait flushed inline");
        assert_eq!(queue.pending_batches(), 0);
        // A ticket's result is consumed exactly once.
        assert!(queue.wait(t).is_err());
    }

    #[test]
    fn a_coalesced_failure_reaches_every_contributing_ticket() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let good = queue.submit(a, vec![rename(1, "entry")]);
        // The reserved "#" label is rejected mid-batch.
        let bad = queue.submit(a, vec![rename(5, "#")]);
        let report = queue.flush();
        assert_eq!((report.batches, report.jobs), (2, 1));
        // One coalesced job, one outcome: both tickets see the error, just
        // as replaying the single logged record would.
        assert!(queue.wait(good).is_err());
        assert!(queue.wait(bad).is_err());
        assert!(
            store.to_xml(a).unwrap().to_xml().contains("<entry>"),
            "the batch prefix before the failing op stays applied"
        );
    }

    #[test]
    fn concurrent_submitters_share_group_commits() {
        let (fs, store, queue) = queue();
        let queue = Arc::new(queue);
        let mut ids = Vec::new();
        for d in 0..4 {
            ids.push(store.load_xml(&doc(&format!("doc{d}"), 3)).unwrap());
        }
        let syncs_before = fs.sync_count();
        let threads: Vec<_> = ids
            .iter()
            .map(|&id| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut tickets = Vec::new();
                    for i in 0..8 {
                        tickets.push(queue.submit(id, vec![rename(1, &format!("r{i}"))]));
                    }
                    for t in tickets {
                        queue.wait(t).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let flushed_syncs = fs.sync_count() - syncs_before;
        let stats = queue.stats();
        assert_eq!(stats.submitted, 32);
        assert!(
            flushed_syncs <= stats.flushes + stats.barriers,
            "one fsync per drain at most (group commit may merge even those): \
             {flushed_syncs} syncs for {} drains",
            stats.flushes + stats.barriers
        );
        assert!(
            flushed_syncs < 32,
            "coalescing must beat one fsync per submitted batch"
        );
    }
}
