//! Store-level ingestion queue: batch coalescing in front of a
//! [`DurableStore`].
//!
//! High-throughput ingestion workloads submit many small per-document
//! batches. Pushing each one through [`DurableStore::apply_batch`] pays one
//! WAL record — and, under light concurrency, close to one fsync — per
//! batch. The [`IngestQueue`] decouples *submission* from *durability*:
//! writers enqueue batches without blocking, and a **drain** folds
//! everything pending into a single [`ApplyMany`](crate::wal::WalEntry)
//! record, so the whole drain costs one group-committed fsync and one
//! scheduler maintenance sweep no matter how many batches it absorbed.
//!
//! # Coalescing rules
//!
//! A drain takes the entire pending list and merges it into one job per
//! *distinct document*: the ops of every batch for that document are
//! concatenated in **submission order**, and jobs are emitted in
//! first-submission order. This is a superset of adjacent-batch
//! coalescing and is sound because the store gives no cross-document
//! ordering guarantees (ops on different documents commute) while
//! *per-document* order — the one that matters for replay — is exactly
//! preserved. The coalesced record replays through the same non-fatal
//! per-op semantics as the original batches, so recovery reproduces the
//! identical (possibly partial) state.
//!
//! An error applying a document's coalesced job is reported to **every**
//! ticket that contributed to that job: the submissions were logged as one
//! record, so they share one outcome, mirroring what replay reconstructs.
//!
//! # Drain ordering
//!
//! At most one drain — a [`flush`](IngestQueue::flush) or a
//! [`barrier`](IngestQueue::barrier) — runs at a time; later drains wait
//! for the running one to finish. Because every drain commits its WAL
//! record before the next drain starts, log order equals drain order, and
//! a batch submitted *during* an in-flight drain simply lands in the next
//! one; per-document submission order is never reordered across drains.
//! Submissions themselves never wait on a drain. The store's background
//! recompression scheduler runs once per drain (inside the store's apply
//! path), i.e. *between* flushes, never in the middle of one.
//!
//! # Barrier semantics
//!
//! A writer that needs its document durable **now** calls
//! [`barrier`](IngestQueue::barrier): it drains *only that document's*
//! pending batches (one `ApplyBatch` record, one group-committed fsync)
//! and leaves every other document queued. Writers therefore barrier only
//! on their own document; cross-document batches fan out through
//! [`DurableStore::apply_batch_many`] at the next flush. Mixing queued
//! submissions with *direct* [`DurableStore`] mutations of the same
//! document is the one thing the queue cannot order — barrier the
//! document first.
//!
//! # Drain-policy state machine
//!
//! [`start_drainer`](IngestQueue::start_drainer) installs a background
//! thread that makes queued work durable without anyone calling
//! [`flush`](IngestQueue::flush). The drainer is a three-state loop over
//! the queue lock:
//!
//! ```text
//!            submit / stop            watermark or deadline hit
//!   IDLE ---------------------> ARMED ---------------------> DRAINING
//!    ^   (queue empty: park on    |  (queue non-empty: park     |
//!    |    the drain condvar)      |   until the earliest        |
//!    |                            |   deadline)                 |
//!    +----------------------------+------- flush done ---------+
//! ```
//!
//! In ARMED the drainer computes three triggers from [`DrainPolicy`] and
//! fires a [`flush`](IngestQueue::flush) when any holds:
//!
//! * **size** — queued op count reached `max_pending_ops` (submissions
//!   signal the drain condvar, so this fires immediately, not at the next
//!   timer tick);
//! * **age** — the oldest queued batch has waited `max_batch_age`, which
//!   bounds the durability latency of every acknowledged-after-drain
//!   write;
//! * **idle** — no submission arrived for `idle_flush`, so the queue
//!   stops waiting for more coalescing that is not coming.
//!
//! Otherwise it parks until the earliest of the age/idle deadlines.
//! [`stop_drainer`](IngestQueue::stop_drainer) runs one final flush after
//! the loop exits, so stopping never strands queued work. While a drainer
//! is installed, [`wait`](IngestQueue::wait) and
//! [`wait_timeout`](IngestQueue::wait_timeout) park instead of
//! self-flushing — an inline flush would commit a half-gathered batch and
//! defeat the policy's coalescing window; without a drainer, `wait` keeps
//! its lone-writer guarantee and flushes inline.
//!
//! # Backpressure
//!
//! A queue built with [`IngestQueue::with_config`] and a
//! `high_watermark_ops` bound refuses to let submissions outrun the disk:
//! once the queued op count would exceed the watermark,
//! [`submit`](IngestQueue::submit) either parks until a drain makes room
//! ([`BackpressurePolicy::Block`]) or returns
//! [`QueueError::WouldBlock`] ([`BackpressurePolicy::Fail`]) so a server
//! edge can push the retry to its client. Two escape valves keep the
//! bound deadlock-free: a submission to an **empty** queue is always
//! accepted (a single oversized batch must not wedge), and blocked
//! submitters are woken by every drain completion.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xmltree::updates::UpdateOp;

use crate::durable::DurableStore;
use crate::error::{RepairError, Result};
use crate::store::DocId;
use crate::update::BatchStats;

/// Receipt for one submitted batch; redeem it with
/// [`IngestQueue::wait`]. Tickets are single-use: the result is consumed
/// by the first wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Typed failures of the queue edge, distinct from store errors so a
/// caller (the network server above all) can map each to a different
/// reply without string-matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// The queue is at its high-watermark and the backpressure policy is
    /// [`BackpressurePolicy::Fail`]; retry after a drain.
    WouldBlock {
        /// Ops queued when the submission was refused.
        pending_ops: usize,
        /// The configured bound it would have exceeded.
        high_watermark: usize,
    },
    /// [`IngestQueue::wait_timeout`] gave up before the ticket's drain
    /// completed; the batch is still queued (or still draining) and the
    /// ticket stays redeemable.
    Timeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// The drain ran and the store failed the batch (or the ticket was
    /// unknown); this is the queue-edge wrapper of the store outcome.
    Store(RepairError),
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::WouldBlock {
                pending_ops,
                high_watermark,
            } => write!(
                f,
                "ingest queue backpressure: {pending_ops} ops pending \
                 (high watermark {high_watermark})"
            ),
            QueueError::Timeout { waited } => {
                write!(f, "ingest queue: no drain within {waited:?}")
            }
            QueueError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueueError {}

impl From<RepairError> for QueueError {
    fn from(e: RepairError) -> Self {
        QueueError::Store(e)
    }
}

/// What [`IngestQueue::submit`] does when the queue is at its
/// high-watermark (see [`QueueConfig`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Park the submitter until a drain makes room (default).
    #[default]
    Block,
    /// Return [`QueueError::WouldBlock`] immediately.
    Fail,
}

/// Bounds on the queue (see the module docs' *Backpressure* section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueConfig {
    /// Refuse/park submissions that would push the queued op count above
    /// this bound (`None` = unbounded, the [`IngestQueue::new`] default).
    pub high_watermark_ops: Option<usize>,
    /// What `submit` does at the watermark.
    pub backpressure: BackpressurePolicy,
}

/// Watermarks of the background drainer (see the module docs'
/// *Drain-policy state machine* section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPolicy {
    /// Flush as soon as this many ops are queued.
    pub max_pending_ops: usize,
    /// Flush once the oldest queued batch has waited this long — the
    /// durability-latency bound of the policy.
    pub max_batch_age: Duration,
    /// Flush when no new submission arrived for this long.
    pub idle_flush: Duration,
}

impl Default for DrainPolicy {
    fn default() -> Self {
        DrainPolicy {
            max_pending_ops: 256,
            max_batch_age: Duration::from_millis(5),
            idle_flush: Duration::from_millis(1),
        }
    }
}

/// Counters the queue keeps across its lifetime (see
/// [`IngestQueue::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Batches accepted by [`IngestQueue::submit`].
    pub submitted: u64,
    /// Drains that wrote an `ApplyMany` record ([`IngestQueue::flush`]
    /// with a non-empty pending list).
    pub flushes: u64,
    /// Coalesced per-document jobs written across all flushes; the
    /// coalescing win is `submitted / coalesced_jobs`.
    pub coalesced_jobs: u64,
    /// Single-document drains ([`IngestQueue::barrier`] that found work).
    pub barriers: u64,
    /// Ops currently queued (submitted but not yet drained) — a snapshot,
    /// not a lifetime counter; the drain policy's size trigger watches it.
    pub pending_ops: u64,
    /// Age of the oldest queued batch at the moment [`IngestQueue::stats`]
    /// was called (`None` when the queue is empty); the drain policy's age
    /// trigger watches it.
    pub oldest_pending_age: Option<Duration>,
}

/// What one [`IngestQueue::flush`] drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Submitted batches absorbed by this drain.
    pub batches: usize,
    /// Distinct documents they coalesced into — the job count of the
    /// single `ApplyMany` record (0 means the pending list was empty and
    /// nothing was logged).
    pub jobs: usize,
}

struct PendingBatch {
    ticket: u64,
    doc: DocId,
    ops: Vec<UpdateOp>,
    /// When the batch was submitted — feeds `oldest_pending_age` and the
    /// drain policy's age trigger.
    at: Instant,
}

#[derive(Default)]
struct QueueState {
    pending: Vec<PendingBatch>,
    /// Ops across `pending` (maintained, not recomputed — the watermark
    /// checks run on every submit).
    pending_ops: usize,
    next_ticket: u64,
    results: HashMap<u64, Result<BatchStats>>,
    /// A drain (flush or barrier) is in flight with the state lock
    /// released; later drains wait on the condvar.
    draining: bool,
    /// A background drainer is installed: `wait` parks instead of
    /// self-flushing (see the module docs' drain-policy section).
    drainer_active: bool,
    /// Tells the drainer thread to exit at its next wakeup.
    drainer_stop: bool,
    /// Last submission time — feeds the drain policy's idle trigger.
    last_submit: Option<Instant>,
    stats: QueueStats,
}

/// An ingestion queue in front of a [`DurableStore`] (see the module
/// docs for the coalescing, ordering, barrier, drain-policy and
/// backpressure contracts).
pub struct IngestQueue {
    store: Arc<DurableStore>,
    config: QueueConfig,
    state: Mutex<QueueState>,
    /// Waiters on results and blocked submitters park here; every drain
    /// completion broadcasts.
    cond: Condvar,
    /// The background drainer parks here; submissions and stop requests
    /// signal it.
    drain_cond: Condvar,
    drainer: Mutex<Option<JoinHandle<()>>>,
}

impl IngestQueue {
    /// Creates an empty, unbounded queue feeding `store`.
    pub fn new(store: Arc<DurableStore>) -> Self {
        Self::with_config(store, QueueConfig::default())
    }

    /// Creates an empty queue with explicit backpressure bounds.
    pub fn with_config(store: Arc<DurableStore>, config: QueueConfig) -> Self {
        IngestQueue {
            store,
            config,
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            drain_cond: Condvar::new(),
            drainer: Mutex::new(None),
        }
    }

    /// The store this queue drains into.
    pub fn store(&self) -> &Arc<DurableStore> {
        &self.store
    }

    /// Enqueues one batch for `doc`. Nothing is logged or applied until
    /// the next [`flush`](IngestQueue::flush),
    /// [`barrier`](IngestQueue::barrier) for this document, a policy
    /// drain, or [`wait`](IngestQueue::wait) on the ticket.
    ///
    /// On an unbounded queue (the [`new`](IngestQueue::new) default) this
    /// never blocks and never fails — drains in progress don't stall
    /// submissions. With a [`QueueConfig`] high-watermark it applies the
    /// configured backpressure: park until a drain makes room
    /// ([`BackpressurePolicy::Block`] — something must be draining, a
    /// background drainer or another thread, or the park never ends) or
    /// fail fast with [`QueueError::WouldBlock`]
    /// ([`BackpressurePolicy::Fail`]).
    pub fn submit(
        &self,
        doc: DocId,
        ops: Vec<UpdateOp>,
    ) -> std::result::Result<Ticket, QueueError> {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        if let Some(watermark) = self.config.high_watermark_ops {
            // An oversized batch on an empty queue is always accepted:
            // refusing it could never succeed, and parking it would wedge.
            while !st.pending.is_empty() && st.pending_ops + ops.len() > watermark {
                match self.config.backpressure {
                    BackpressurePolicy::Fail => {
                        return Err(QueueError::WouldBlock {
                            pending_ops: st.pending_ops,
                            high_watermark: watermark,
                        })
                    }
                    BackpressurePolicy::Block => {
                        st = self.cond.wait(st).expect("queue lock never poisoned");
                    }
                }
            }
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.stats.submitted += 1;
        st.pending_ops += ops.len();
        st.last_submit = Some(Instant::now());
        st.pending.push(PendingBatch {
            ticket,
            doc,
            ops,
            at: Instant::now(),
        });
        drop(st);
        // Wake the drainer so the size watermark fires now, not at the
        // next timer tick.
        self.drain_cond.notify_all();
        Ok(Ticket(ticket))
    }

    /// Drains everything pending as **one** coalesced `ApplyMany` record —
    /// one group-committed fsync, one scheduler sweep — and posts each
    /// document's outcome to all of its tickets. Waits first if another
    /// drain is in flight.
    pub fn flush(&self) -> FlushReport {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        while st.draining {
            st = self.cond.wait(st).expect("queue lock never poisoned");
        }
        if st.pending.is_empty() {
            return FlushReport::default();
        }
        let batches = std::mem::take(&mut st.pending);
        st.pending_ops = 0;
        st.draining = true;
        drop(st);

        // Coalesce: one job per document, ops concatenated in submission
        // order, documents in first-submission order.
        let drained = batches.len();
        let mut jobs: Vec<(DocId, Vec<UpdateOp>)> = Vec::new();
        let mut tickets: Vec<Vec<u64>> = Vec::new();
        let mut index: HashMap<DocId, usize> = HashMap::new();
        for batch in batches {
            let at = *index.entry(batch.doc).or_insert_with(|| {
                jobs.push((batch.doc, Vec::new()));
                tickets.push(Vec::new());
                jobs.len() - 1
            });
            jobs[at].1.extend(batch.ops);
            tickets[at].push(batch.ticket);
        }
        let (results, _maintenance) = self.store.apply_batch_many(&jobs);

        let mut st = self.state.lock().expect("queue lock never poisoned");
        st.stats.flushes += 1;
        st.stats.coalesced_jobs += jobs.len() as u64;
        for (at, result) in results.into_iter().enumerate() {
            for &ticket in &tickets[at] {
                st.results.insert(ticket, result.clone());
            }
        }
        st.draining = false;
        drop(st);
        self.cond.notify_all();
        FlushReport {
            batches: drained,
            jobs: jobs.len(),
        }
    }

    /// Drains **only `doc`'s** pending batches as one `ApplyBatch` record
    /// and returns their combined outcome (`None` when nothing was queued
    /// for `doc`). Other documents stay queued. Waits first if another
    /// drain is in flight — WAL order must match submission order for
    /// this document, and the in-flight drain may hold earlier batches.
    pub fn barrier(&self, doc: DocId) -> Option<Result<BatchStats>> {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        while st.draining {
            st = self.cond.wait(st).expect("queue lock never poisoned");
        }
        let mut ops = Vec::new();
        let mut tickets = Vec::new();
        st.pending.retain_mut(|batch| {
            if batch.doc == doc {
                ops.append(&mut batch.ops);
                tickets.push(batch.ticket);
                false
            } else {
                true
            }
        });
        if tickets.is_empty() {
            return None;
        }
        st.pending_ops -= ops.len();
        st.draining = true;
        drop(st);

        let result = self
            .store
            .apply_batch(doc, &ops)
            .map(|(stats, _maintenance)| stats);

        let mut st = self.state.lock().expect("queue lock never poisoned");
        st.stats.barriers += 1;
        for &ticket in &tickets {
            st.results.insert(ticket, result.clone());
        }
        st.draining = false;
        drop(st);
        self.cond.notify_all();
        Some(result)
    }

    /// Blocks until `ticket`'s batch is durable and applied, then returns
    /// its outcome. If the batch is still queued, no drain is running and
    /// no background drainer is installed, the caller becomes the flush
    /// leader itself (a lone writer never deadlocks waiting for someone
    /// else to flush); with a drainer installed it parks until the policy
    /// drain lands. Waiting on a ticket whose result was already consumed
    /// is an error.
    pub fn wait(&self, ticket: Ticket) -> Result<BatchStats> {
        match self.wait_deadline(ticket, None) {
            Ok(stats) => Ok(stats),
            Err(QueueError::Store(e)) => Err(e),
            Err(e @ QueueError::WouldBlock { .. }) | Err(e @ QueueError::Timeout { .. }) => {
                unreachable!("deadline-less wait cannot report {e}")
            }
        }
    }

    /// [`wait`](IngestQueue::wait) with a bound: gives up with
    /// [`QueueError::Timeout`] if the ticket's drain has not completed
    /// within `timeout`, so a server worker never parks forever on a
    /// ticket whose drain leader died. The ticket stays redeemable — a
    /// later wait (or the next drain) can still consume its result.
    pub fn wait_timeout(
        &self,
        ticket: Ticket,
        timeout: Duration,
    ) -> std::result::Result<BatchStats, QueueError> {
        self.wait_deadline(ticket, Some(timeout))
    }

    fn wait_deadline(
        &self,
        ticket: Ticket,
        timeout: Option<Duration>,
    ) -> std::result::Result<BatchStats, QueueError> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.state.lock().expect("queue lock never poisoned");
        loop {
            if let Some(result) = st.results.remove(&ticket.0) {
                return result.map_err(QueueError::Store);
            }
            let queued = st.pending.iter().any(|b| b.ticket == ticket.0);
            if queued && !st.draining && !st.drainer_active {
                drop(st);
                self.flush();
                st = self.state.lock().expect("queue lock never poisoned");
                continue;
            }
            if !queued && !st.draining {
                return Err(QueueError::Store(RepairError::Storage {
                    detail: format!(
                        "ingest queue: unknown ticket {} (results are consumed once)",
                        ticket.0
                    ),
                }));
            }
            st = match deadline {
                None => self.cond.wait(st).expect("queue lock never poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(QueueError::Timeout {
                            waited: timeout.expect("deadline implies timeout"),
                        });
                    }
                    self.cond
                        .wait_timeout(st, deadline - now)
                        .expect("queue lock never poisoned")
                        .0
                }
            };
        }
    }

    /// Installs the background drainer (see the module docs' drain-policy
    /// state machine). Returns `false` — and changes nothing — if one is
    /// already running. While installed, queued work becomes durable on
    /// the policy's size/age/idle triggers and [`wait`](IngestQueue::wait)
    /// parks instead of self-flushing.
    pub fn start_drainer(self: &Arc<Self>, policy: DrainPolicy) -> bool {
        let mut slot = self.drainer.lock().expect("drainer lock never poisoned");
        if slot.is_some() {
            return false;
        }
        {
            let mut st = self.state.lock().expect("queue lock never poisoned");
            st.drainer_active = true;
            st.drainer_stop = false;
        }
        let queue = Arc::clone(self);
        *slot = Some(
            std::thread::Builder::new()
                .name("ingest-drainer".into())
                .spawn(move || queue.drain_loop(policy))
                .expect("spawning the drainer thread"),
        );
        true
    }

    /// Stops the background drainer after one final flush (queued work is
    /// never stranded). No-op when none is running.
    pub fn stop_drainer(&self) {
        let handle = {
            let mut slot = self.drainer.lock().expect("drainer lock never poisoned");
            let handle = slot.take();
            if handle.is_some() {
                let mut st = self.state.lock().expect("queue lock never poisoned");
                st.drainer_stop = true;
            }
            handle
        };
        let Some(handle) = handle else { return };
        self.drain_cond.notify_all();
        handle.join().expect("drainer never panics");
        let mut st = self.state.lock().expect("queue lock never poisoned");
        st.drainer_active = false;
        st.drainer_stop = false;
        drop(st);
        // Waiters may now become flush leaders themselves again.
        self.cond.notify_all();
    }

    fn drain_loop(&self, policy: DrainPolicy) {
        let mut st = self.state.lock().expect("queue lock never poisoned");
        loop {
            if st.drainer_stop {
                break;
            }
            if st.pending.is_empty() {
                // IDLE: nothing to age out; park until a submission or a
                // stop request signals.
                st = self.drain_cond.wait(st).expect("queue lock never poisoned");
                continue;
            }
            // ARMED: fire on any trigger, else park until the earliest
            // deadline.
            let now = Instant::now();
            let oldest = st
                .pending
                .first()
                .map(|b| now.saturating_duration_since(b.at))
                .unwrap_or_default();
            let idle = st
                .last_submit
                .map(|t| now.saturating_duration_since(t))
                .unwrap_or_default();
            if st.pending_ops >= policy.max_pending_ops
                || oldest >= policy.max_batch_age
                || idle >= policy.idle_flush
            {
                drop(st);
                self.flush();
                st = self.state.lock().expect("queue lock never poisoned");
                continue;
            }
            let until = (policy.max_batch_age - oldest).min(policy.idle_flush - idle);
            st = self
                .drain_cond
                .wait_timeout(st, until)
                .expect("queue lock never poisoned")
                .0;
        }
        drop(st);
        self.flush();
    }

    /// Batches currently queued (submitted but not yet drained).
    pub fn pending_batches(&self) -> usize {
        self.state
            .lock()
            .expect("queue lock never poisoned")
            .pending
            .len()
    }

    /// Lifetime counters (submissions, flushes, coalesced jobs, barriers)
    /// plus the point-in-time queue depth (`pending_ops`,
    /// `oldest_pending_age`) the drain policy watches.
    pub fn stats(&self) -> QueueStats {
        let st = self.state.lock().expect("queue lock never poisoned");
        let mut stats = st.stats;
        stats.pending_ops = st.pending_ops as u64;
        stats.oldest_pending_age = st.pending.first().map(|b| b.at.elapsed());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::testing::FailpointFs;
    use xmltree::parse::parse_xml;
    use xmltree::XmlTree;

    fn doc(tag: &str, n: usize) -> XmlTree {
        let mut s = format!("<{tag}>");
        for _ in 0..n {
            s.push_str("<item><title/><body><p/><p/></body></item>");
        }
        s.push_str(&format!("</{tag}>"));
        parse_xml(&s).unwrap()
    }

    fn queue() -> (Arc<FailpointFs>, Arc<DurableStore>, IngestQueue) {
        let fs = Arc::new(FailpointFs::new());
        let (store, _) = DurableStore::open_with(fs.clone(), "db").unwrap();
        let store = Arc::new(store);
        (fs, store.clone(), IngestQueue::new(store))
    }

    fn rename(target: u32, label: &str) -> UpdateOp {
        UpdateOp::Rename {
            target: target as usize,
            label: label.into(),
        }
    }

    #[test]
    fn a_flush_coalesces_per_document_and_logs_one_record() {
        let (fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();
        let syncs_before = fs.sync_count();

        let t1 = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        let t2 = queue.submit(b, vec![rename(1, "post")]).unwrap();
        let t3 = queue.submit(a, vec![rename(5, "note")]).unwrap();
        assert_eq!(queue.pending_batches(), 3);

        let report = queue.flush();
        assert_eq!(report.batches, 3);
        assert_eq!(report.jobs, 2, "two distinct documents");
        assert_eq!(
            fs.sync_count() - syncs_before,
            1,
            "one coalesced record, one fsync"
        );

        // Doc a's two batches share one coalesced outcome (2 ops); doc b's
        // lone batch sees its own.
        for (t, ops) in [(t1, 2), (t2, 1), (t3, 2)] {
            assert_eq!(queue.wait(t).unwrap().ops, ops);
        }
        let a_xml = store.to_xml(a).unwrap().to_xml();
        assert!(a_xml.contains("<entry") && a_xml.contains("<note"));
        assert!(store.to_xml(b).unwrap().to_xml().contains("<post"));
        let stats = queue.stats();
        assert_eq!((stats.submitted, stats.flushes, stats.coalesced_jobs), (3, 1, 2));
    }

    #[test]
    fn a_barrier_drains_only_its_own_document() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let b = store.load_xml(&doc("blog", 3)).unwrap();

        let ta = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        let tb = queue.submit(b, vec![rename(1, "post")]).unwrap();

        let stats = queue.barrier(a).expect("doc a had pending ops").unwrap();
        assert_eq!(stats.ops, 1);
        assert_eq!(queue.pending_batches(), 1, "doc b stays queued");
        assert!(store.to_xml(a).unwrap().to_xml().contains("<entry>"));
        assert!(!store.to_xml(b).unwrap().to_xml().contains("<post>"));
        assert!(queue.barrier(a).is_none(), "nothing left for doc a");
        assert_eq!(queue.wait(ta).unwrap().ops, 1);

        queue.flush();
        assert_eq!(queue.wait(tb).unwrap().ops, 1);
        assert!(store.to_xml(b).unwrap().to_xml().contains("<post>"));
    }

    #[test]
    fn wait_becomes_the_flush_leader_when_nobody_drains() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let t = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        assert_eq!(queue.wait(t).unwrap().ops, 1, "wait flushed inline");
        assert_eq!(queue.pending_batches(), 0);
        // A ticket's result is consumed exactly once.
        assert!(queue.wait(t).is_err());
    }

    #[test]
    fn a_coalesced_failure_reaches_every_contributing_ticket() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 2)).unwrap();
        let good = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        // The reserved "#" label is rejected mid-batch.
        let bad = queue.submit(a, vec![rename(5, "#")]).unwrap();
        let report = queue.flush();
        assert_eq!((report.batches, report.jobs), (2, 1));
        // One coalesced job, one outcome: both tickets see the error, just
        // as replaying the single logged record would.
        assert!(queue.wait(good).is_err());
        assert!(queue.wait(bad).is_err());
        assert!(
            store.to_xml(a).unwrap().to_xml().contains("<entry>"),
            "the batch prefix before the failing op stays applied"
        );
    }

    #[test]
    fn concurrent_submitters_share_group_commits() {
        let (fs, store, queue) = queue();
        let queue = Arc::new(queue);
        let mut ids = Vec::new();
        for d in 0..4 {
            ids.push(store.load_xml(&doc(&format!("doc{d}"), 3)).unwrap());
        }
        let syncs_before = fs.sync_count();
        let threads: Vec<_> = ids
            .iter()
            .map(|&id| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut tickets = Vec::new();
                    for i in 0..8 {
                        tickets.push(queue.submit(id, vec![rename(1, &format!("r{i}"))]).unwrap());
                    }
                    for t in tickets {
                        queue.wait(t).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let flushed_syncs = fs.sync_count() - syncs_before;
        let stats = queue.stats();
        assert_eq!(stats.submitted, 32);
        assert!(
            flushed_syncs <= stats.flushes + stats.barriers,
            "one fsync per drain at most (group commit may merge even those): \
             {flushed_syncs} syncs for {} drains",
            stats.flushes + stats.barriers
        );
        assert!(
            flushed_syncs < 32,
            "coalescing must beat one fsync per submitted batch"
        );
    }

    #[test]
    fn stats_report_queue_depth_and_age() {
        let (_fs, store, queue) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        assert_eq!(queue.stats().pending_ops, 0);
        assert_eq!(queue.stats().oldest_pending_age, None);
        queue.submit(a, vec![rename(1, "x"), rename(5, "y")]).unwrap();
        queue.submit(a, vec![rename(2, "z")]).unwrap();
        let stats = queue.stats();
        assert_eq!(stats.pending_ops, 3, "op count, not batch count");
        assert!(stats.oldest_pending_age.is_some());
        queue.flush();
        let stats = queue.stats();
        assert_eq!(stats.pending_ops, 0);
        assert_eq!(stats.oldest_pending_age, None);
    }

    #[test]
    fn drainer_flushes_without_explicit_flush() {
        let (fs, store, queue) = queue();
        let queue = Arc::new(queue);
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        assert!(queue.start_drainer(DrainPolicy {
            max_pending_ops: 1_000_000,
            max_batch_age: Duration::from_millis(2),
            idle_flush: Duration::from_millis(1),
        }));
        assert!(!queue.start_drainer(DrainPolicy::default()), "one drainer at a time");
        let syncs_before = fs.sync_count();
        let t1 = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        let t2 = queue.submit(a, vec![rename(5, "note")]).unwrap();
        // No flush() anywhere: the age/idle trigger must land the drain.
        assert_eq!(queue.wait(t1).unwrap().ops, 2);
        assert_eq!(queue.wait(t2).unwrap().ops, 2);
        assert!(fs.sync_count() > syncs_before);
        queue.stop_drainer();
        let xml = store.to_xml(a).unwrap().to_xml();
        assert!(xml.contains("<entry") && xml.contains("<note"));
    }

    #[test]
    fn drainer_size_trigger_fires_before_any_deadline() {
        let (_fs, store, queue) = queue();
        let queue = Arc::new(queue);
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        assert!(queue.start_drainer(DrainPolicy {
            max_pending_ops: 2,
            max_batch_age: Duration::from_secs(3600),
            idle_flush: Duration::from_secs(3600),
        }));
        let t = queue.submit(a, vec![rename(1, "a1"), rename(5, "a2")]).unwrap();
        // Timers are an hour out; only the size watermark can drain this.
        assert_eq!(
            queue.wait_timeout(t, Duration::from_secs(20)).unwrap().ops,
            2
        );
        queue.stop_drainer();
    }

    #[test]
    fn stop_drainer_flushes_the_tail() {
        let (_fs, store, queue) = queue();
        let queue = Arc::new(queue);
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        assert!(queue.start_drainer(DrainPolicy {
            max_pending_ops: 1_000_000,
            max_batch_age: Duration::from_secs(3600),
            idle_flush: Duration::from_secs(3600),
        }));
        let t = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        queue.stop_drainer();
        assert_eq!(queue.wait(t).unwrap().ops, 1, "final flush drained it");
    }

    #[test]
    fn wait_timeout_reports_a_stalled_drain_leader() {
        let (_fs, store, queue) = queue();
        let queue = Arc::new(queue);
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        // A drainer whose every trigger is an hour away models a stalled
        // drain leader: wait_timeout must give up instead of parking
        // forever or self-flushing (which would defeat the policy).
        assert!(queue.start_drainer(DrainPolicy {
            max_pending_ops: 1_000_000,
            max_batch_age: Duration::from_secs(3600),
            idle_flush: Duration::from_secs(3600),
        }));
        let t = queue.submit(a, vec![rename(1, "entry")]).unwrap();
        let err = queue.wait_timeout(t, Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, QueueError::Timeout { .. }), "got {err}");
        // The ticket stays redeemable: stopping the drainer flushes the
        // tail and the same ticket then resolves.
        queue.stop_drainer();
        assert_eq!(queue.wait_timeout(t, Duration::from_secs(20)).unwrap().ops, 1);
    }

    #[test]
    fn backpressure_fail_returns_would_block() {
        let (_fs, store, _) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let queue = IngestQueue::with_config(
            Arc::clone(&store),
            QueueConfig {
                high_watermark_ops: Some(3),
                backpressure: BackpressurePolicy::Fail,
            },
        );
        // An oversized first batch is accepted: the queue was empty.
        let t0 = queue.submit(a, vec![rename(1, "a"), rename(5, "b"), rename(2, "c"), rename(4, "d")]).unwrap();
        let err = queue.submit(a, vec![rename(7, "e")]).unwrap_err();
        assert!(
            matches!(
                err,
                QueueError::WouldBlock {
                    pending_ops: 4,
                    high_watermark: 3
                }
            ),
            "got {err}"
        );
        // A drain makes room again.
        queue.flush();
        assert_eq!(queue.wait(t0).unwrap().ops, 4);
        let t1 = queue.submit(a, vec![rename(7, "e")]).unwrap();
        assert_eq!(queue.wait(t1).unwrap().ops, 1);
    }

    #[test]
    fn backpressure_block_parks_until_a_drain_makes_room() {
        let (_fs, store, _) = queue();
        let a = store.load_xml(&doc("feed", 3)).unwrap();
        let queue = Arc::new(IngestQueue::with_config(
            Arc::clone(&store),
            QueueConfig {
                high_watermark_ops: Some(2),
                backpressure: BackpressurePolicy::Block,
            },
        ));
        queue.submit(a, vec![rename(1, "a"), rename(5, "b")]).unwrap();
        let submitter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                // Parks at the watermark until the main thread drains.
                let t = queue.submit(a, vec![rename(2, "c")]).unwrap();
                queue.wait(t).unwrap().ops
            })
        };
        // Give the submitter a moment to reach the watermark park, then
        // drain to release it.
        std::thread::sleep(Duration::from_millis(20));
        queue.flush();
        // The released submission may need one more drain.
        loop {
            if submitter.is_finished() {
                break;
            }
            queue.flush();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(submitter.join().unwrap(), 1);
        assert!(store.to_xml(a).unwrap().to_xml().contains("<c"));
    }
}
