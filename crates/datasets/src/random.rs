//! Semi-regular and irregular datasets: synthetic stand-ins for XMark,
//! Medline and Treebank.
//!
//! * **XMark** — auction-site data: template-driven records with randomized
//!   fan-outs and optional elements; moderate compressibility (Table III: 13 %).
//! * **Medline** — bibliographic citations: mostly fixed field structure with
//!   variable-length author lists and a few optional fields (4 %).
//! * **Treebank** — deep, high-entropy parse trees; the least compressible
//!   file of the corpus (21 %) and the deepest (depth 35).
//!
//! All generators are deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmltree::{XmlNodeId, XmlTree};

/// Synthetic XMark: an auction site with regions, open auctions, bidders and
/// people. `items` is the number of items per region.
pub fn xmark_like(items: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = XmlTree::new("site");
    let root = t.root();

    let regions = t.add_child(root, "regions");
    for region in ["africa", "asia", "europe", "namerica", "samerica"] {
        let r = t.add_child(regions, region);
        for _ in 0..items {
            let item = t.add_child(r, "item");
            t.add_child(item, "location");
            t.add_child(item, "quantity");
            t.add_child(item, "name");
            let payment = t.add_child(item, "payment");
            for _ in 0..rng.gen_range(0..3usize) {
                t.add_child(payment, "option");
            }
            let desc = t.add_child(item, "description");
            random_text_structure(&mut t, desc, &mut rng, 2);
            if rng.gen_bool(0.6) {
                t.add_child(item, "shipping");
            }
            let incat = rng.gen_range(1..4usize);
            for _ in 0..incat {
                t.add_child(item, "incategory");
            }
            if rng.gen_bool(0.3) {
                let mail = t.add_child(item, "mailbox");
                for _ in 0..rng.gen_range(1..3usize) {
                    let m = t.add_child(mail, "mail");
                    t.add_child(m, "from");
                    t.add_child(m, "to");
                    t.add_child(m, "date");
                    let text = t.add_child(m, "text");
                    random_text_structure(&mut t, text, &mut rng, 1);
                }
            }
        }
    }

    let auctions = t.add_child(root, "open_auctions");
    for _ in 0..items * 2 {
        let a = t.add_child(auctions, "open_auction");
        t.add_child(a, "initial");
        t.add_child(a, "current");
        if rng.gen_bool(0.5) {
            t.add_child(a, "reserve");
        }
        for _ in 0..rng.gen_range(0..5usize) {
            let b = t.add_child(a, "bidder");
            t.add_child(b, "date");
            t.add_child(b, "time");
            t.add_child(b, "increase");
        }
        t.add_child(a, "itemref");
        t.add_child(a, "seller");
        t.add_child(a, "quantity");
        t.add_child(a, "type");
        let interval = t.add_child(a, "interval");
        t.add_child(interval, "start");
        t.add_child(interval, "end");
    }

    let people = t.add_child(root, "people");
    for _ in 0..items * 3 {
        let p = t.add_child(people, "person");
        t.add_child(p, "name");
        t.add_child(p, "emailaddress");
        if rng.gen_bool(0.4) {
            t.add_child(p, "phone");
        }
        if rng.gen_bool(0.5) {
            let addr = t.add_child(p, "address");
            for f in ["street", "city", "country", "zipcode"] {
                t.add_child(addr, f);
            }
        }
        if rng.gen_bool(0.3) {
            t.add_child(p, "homepage");
        }
        if rng.gen_bool(0.7) {
            let w = t.add_child(p, "watches");
            for _ in 0..rng.gen_range(1..4usize) {
                t.add_child(w, "watch");
            }
        }
    }
    t
}

/// Small randomized "rich text" structure used by XMark descriptions.
fn random_text_structure(t: &mut XmlTree, parent: XmlNodeId, rng: &mut StdRng, depth: usize) {
    let n = rng.gen_range(1..4usize);
    for _ in 0..n {
        match rng.gen_range(0..3u8) {
            0 => {
                t.add_child(parent, "text");
            }
            1 => {
                let k = t.add_child(parent, "keyword");
                if depth > 0 && rng.gen_bool(0.3) {
                    random_text_structure(t, k, rng, depth - 1);
                }
            }
            _ => {
                let p = t.add_child(parent, "parlist");
                if depth > 0 {
                    let items = rng.gen_range(1..3usize);
                    for _ in 0..items {
                        let li = t.add_child(p, "listitem");
                        if rng.gen_bool(0.4) && depth > 1 {
                            random_text_structure(t, li, rng, depth - 1);
                        } else {
                            t.add_child(li, "text");
                        }
                    }
                }
            }
        }
    }
}

/// Synthetic Medline: bibliographic citation records with a fixed core,
/// variable-length author lists and optional fields.
pub fn medline_like(citations: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = XmlTree::new("medline_citation_set");
    let root = t.root();
    for _ in 0..citations {
        let c = t.add_child(root, "citation");
        t.add_child(c, "pmid");
        let created = t.add_child(c, "date_created");
        for f in ["year", "month", "day"] {
            t.add_child(created, f);
        }
        let article = t.add_child(c, "article");
        let journal = t.add_child(article, "journal");
        t.add_child(journal, "issn");
        let issue = t.add_child(journal, "journal_issue");
        t.add_child(issue, "volume");
        if rng.gen_bool(0.8) {
            t.add_child(issue, "issue");
        }
        let pubdate = t.add_child(issue, "pub_date");
        t.add_child(pubdate, "year");
        if rng.gen_bool(0.7) {
            t.add_child(pubdate, "month");
        }
        t.add_child(article, "article_title");
        if rng.gen_bool(0.75) {
            let pagination = t.add_child(article, "pagination");
            t.add_child(pagination, "medline_pgn");
        }
        if rng.gen_bool(0.65) {
            t.add_child(article, "abstract");
        }
        let authors = t.add_child(article, "author_list");
        for _ in 0..rng.gen_range(1..8usize) {
            let a = t.add_child(authors, "author");
            t.add_child(a, "last_name");
            t.add_child(a, "fore_name");
            if rng.gen_bool(0.9) {
                t.add_child(a, "initials");
            }
        }
        let mesh = t.add_child(c, "mesh_heading_list");
        for _ in 0..rng.gen_range(2..10usize) {
            let h = t.add_child(mesh, "mesh_heading");
            t.add_child(h, "descriptor_name");
            if rng.gen_bool(0.3) {
                t.add_child(h, "qualifier_name");
            }
        }
    }
    t
}

/// Grammatical categories used by the synthetic Treebank generator.
const TREEBANK_LABELS: &[&str] = &[
    "S", "NP", "VP", "PP", "SBAR", "ADJP", "ADVP", "QP", "WHNP", "PRN", "NX", "NAC", "FRAG",
    "UCP", "SINV", "SQ", "X", "INTJ", "LST", "CONJP", "RRC", "WHADVP", "WHPP",
];

/// Part-of-speech leaves used by the synthetic Treebank generator.
const TREEBANK_POS: &[&str] = &[
    "NN", "NNS", "NNP", "DT", "JJ", "VB", "VBD", "VBZ", "VBN", "IN", "RB", "PRP", "CC", "CD",
    "TO", "MD", "POS", "WDT", "EX",
];

/// Synthetic Treebank: deep, high-entropy parse trees. `sentences` is the
/// number of top-level sentence trees.
pub fn treebank_like(sentences: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = XmlTree::new("corpus");
    let root = t.root();
    for _ in 0..sentences {
        let s = t.add_child(root, "S");
        grow_parse_tree(&mut t, s, &mut rng, 0, 12);
    }
    t
}

fn grow_parse_tree(t: &mut XmlTree, node: XmlNodeId, rng: &mut StdRng, depth: usize, max_depth: usize) {
    let fanout = match depth {
        0 => rng.gen_range(2..5usize),
        _ => rng.gen_range(1..4usize),
    };
    for _ in 0..fanout {
        // Deeper levels become leaves (part-of-speech tags) with rising probability.
        let leaf_probability = 0.15 + 0.07 * depth as f64;
        if depth >= max_depth || rng.gen_bool(leaf_probability.min(0.95)) {
            let pos = TREEBANK_POS[rng.gen_range(0..TREEBANK_POS.len())];
            t.add_child(node, pos);
        } else {
            let label = TREEBANK_LABELS[rng.gen_range(0..TREEBANK_LABELS.len())];
            let child = t.add_child(node, label);
            grow_parse_tree(t, child, rng, depth + 1, max_depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treerepair::TreeRePair;

    #[test]
    fn generators_are_deterministic() {
        let a = xmark_like(5, 7).to_xml();
        let b = xmark_like(5, 7).to_xml();
        assert_eq!(a, b);
        assert_ne!(a, xmark_like(5, 8).to_xml());
        assert_eq!(medline_like(5, 1).to_xml(), medline_like(5, 1).to_xml());
        assert_eq!(treebank_like(5, 1).to_xml(), treebank_like(5, 1).to_xml());
    }

    #[test]
    fn xmark_compresses_moderately() {
        let t = xmark_like(40, 42);
        assert!(t.edge_count() > 3_000);
        let (_, stats) = TreeRePair::default().compress_xml(&t);
        let ratio = stats.ratio();
        assert!(
            (0.02..0.45).contains(&ratio),
            "XMark-like ratio out of the moderate range: {ratio}"
        );
    }

    #[test]
    fn medline_compresses_well_but_not_extremely() {
        let t = medline_like(150, 42);
        let (_, stats) = TreeRePair::default().compress_xml(&t);
        let ratio = stats.ratio();
        assert!(
            (0.01..0.35).contains(&ratio),
            "Medline-like ratio out of range: {ratio}"
        );
    }

    #[test]
    fn treebank_is_deep_and_hard_to_compress() {
        let t = treebank_like(60, 42);
        assert!(t.depth() >= 8, "depth {}", t.depth());
        let (_, stats) = TreeRePair::default().compress_xml(&t);
        let ratio = stats.ratio();
        assert!(
            ratio > 0.10,
            "Treebank-like data should resist compression, got {ratio}"
        );
    }

    #[test]
    fn compression_ordering_matches_table_iii() {
        // Weblog-style regular data compresses better than Medline-style data,
        // which compresses better than Treebank-style data.
        let weblog = crate::regular::exi_weblog_like(300);
        let medline = medline_like(120, 3);
        let treebank = treebank_like(50, 3);
        let ratio = |t: &XmlTree| TreeRePair::default().compress_xml(t).1.ratio();
        let (rw, rm, rt) = (ratio(&weblog), ratio(&medline), ratio(&treebank));
        assert!(rw < rm, "weblog {rw} should compress better than medline {rm}");
        assert!(rm < rt, "medline {rm} should compress better than treebank {rt}");
    }
}
