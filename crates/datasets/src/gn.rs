//! The grammar families used in the paper's worked examples and in the
//! optimization experiment of Figure 3.
//!
//! * `G_8` (Section III-A): `{A → BB, B → CC, C → DD, D → ab}` — the string
//!   `(ab)^8`, here encoded as a monadic tree grammar.
//! * `G_exp` (Section III-A): a chain of ten doubling rules deriving `a^1024`.
//! * `G_n` (Section V-B): `{S → a A_n A_n b, A_i → A_{i−1} A_{i−1}, A_0 → ba}`
//!   — a list of `2^(n+1)+1` alternating `a`/`b` siblings that compresses
//!   exponentially; recompressing it exercises the fragment-export
//!   optimization ("lemma generation").
//!
//! Strings `w = w_1 … w_k` are encoded as monadic trees
//! `w_1(w_2(…w_k(#)…))`, which is the one-additional-root-symbol encoding the
//! paper suggests for reading its string examples as tree grammars.

use sltgrammar::text::parse_grammar;
use sltgrammar::Grammar;

/// The grammar `G_8` of Section III-A, deriving the string `(ab)^8`.
pub fn g8() -> Grammar {
    parse_grammar(
        "S -> A(#)\n\
         A -> B(B(y1))\n\
         B -> C(C(y1))\n\
         C -> D(D(y1))\n\
         D -> a(b(y1))",
    )
    .expect("static grammar text is valid")
}

/// The updated grammar of Section III-B, `{A → bBBa, …}`, deriving `b(ab)^8a`.
pub fn g8_updated() -> Grammar {
    parse_grammar(
        "S -> b(B(B(a(#))))\n\
         B -> C(C(y1))\n\
         C -> D(D(y1))\n\
         D -> a(b(y1))",
    )
    .expect("static grammar text is valid")
}

/// The exponential grammar `G_exp` of Section III-A, deriving `a^1024`.
pub fn g_exp() -> Grammar {
    let mut text = String::from("S -> A1(A1(#))\n");
    for i in 1..=9 {
        text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i + 1, i + 1));
    }
    text.push_str("A10 -> a(y1)");
    parse_grammar(&text).expect("generated grammar text is valid")
}

/// The family `G_n` of Section V-B: `S → a A_n A_n b`, `A_i → A_{i−1} A_{i−1}`,
/// `A_0 → ba`, deriving a list of `2^(n+1)` sibling pairs `b a` wrapped in `a…b`.
///
/// `n` is the chain length; the paper uses n = 6 … 12 (lists of 64 … 4096 pairs).
pub fn g_n(n: usize) -> Grammar {
    let mut text = String::from(&format!("S -> a(A{n}(A{n}(b(#))))\n"));
    for i in (1..=n).rev() {
        text.push_str(&format!("A{i} -> A{}(A{}(y1))\n", i - 1, i - 1));
    }
    text.push_str("A0 -> b(a(y1))");
    parse_grammar(&text).expect("generated grammar text is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sltgrammar::fingerprint::derived_size;

    #[test]
    fn g8_derives_the_sixteen_letter_string() {
        // (ab)^8 has 16 letters plus the null leaf.
        assert_eq!(derived_size(&g8()), 17);
        g8().validate().unwrap();
    }

    #[test]
    fn g8_updated_has_two_more_letters() {
        // b(ab)^8a has 18 letters plus the null leaf.
        assert_eq!(derived_size(&g8_updated()), 19);
    }

    #[test]
    fn g_exp_derives_a_power_of_two() {
        assert_eq!(derived_size(&g_exp()), 1025);
    }

    #[test]
    fn g_n_size_is_linear_while_its_derivation_is_exponential() {
        for n in [3usize, 6, 8] {
            let g = g_n(n);
            g.validate().unwrap();
            // String length: 2 (outer a, b) + 2 * 2^n letters per A_n, + null.
            let expected = 2u128 + 2 * (1u128 << (n + 1)) / 2 * 2 + 1;
            assert_eq!(derived_size(&g), expected, "n = {n}");
            // The grammar itself stays linear in n.
            assert!(g.edge_count() <= 6 * (n + 2));
        }
    }
}
