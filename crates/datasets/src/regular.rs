//! Highly regular datasets: synthetic stand-ins for EXI-Weblog, EXI-Telecomp
//! and NCBI.
//!
//! These three corpus files share one structural regime: a huge, almost
//! perfectly regular list of records with little or no per-record variation.
//! TreeRePair/GrammarRePair compress such lists *exponentially* (the grammar
//! ends up with only a few dozen edges — compare the `< 0.1 %` ratios of
//! Table III), which is exactly the regime where naive updates are most
//! destructive (Figure 5).

use xmltree::XmlTree;

/// Synthetic EXI-Weblog: a flat list of identical access-log entries
/// (depth 2, like the original file). `records` entries × 7 fields.
pub fn exi_weblog_like(records: usize) -> XmlTree {
    let mut t = XmlTree::new("log");
    let root = t.root();
    for _ in 0..records {
        let e = t.add_child(root, "entry");
        for field in [
            "host", "ident", "authuser", "date", "request", "status", "bytes",
        ] {
            t.add_child(e, field);
        }
    }
    t
}

/// Synthetic EXI-Telecomp: regular measurement records with a deeper (depth 6)
/// but still completely repetitive structure.
pub fn exi_telecomp_like(records: usize) -> XmlTree {
    let mut t = XmlTree::new("telecomp");
    let root = t.root();
    for _ in 0..records {
        let rec = t.add_child(root, "record");
        let hdr = t.add_child(rec, "header");
        t.add_child(hdr, "timestamp");
        t.add_child(hdr, "station");
        let body = t.add_child(rec, "measurements");
        for _ in 0..3 {
            let m = t.add_child(body, "measurement");
            let v = t.add_child(m, "value");
            t.add_child(v, "unit");
            t.add_child(v, "scale");
            t.add_child(m, "quality");
        }
    }
    t
}

/// Synthetic NCBI: a shallow (depth 3) but extremely long list of identical
/// SNP-like records — the most compressible file of the evaluation.
pub fn ncbi_like(records: usize) -> XmlTree {
    let mut t = XmlTree::new("snp_db");
    let root = t.root();
    for _ in 0..records {
        let rec = t.add_child(root, "snp");
        t.add_child(rec, "rsid");
        let pos = t.add_child(rec, "position");
        t.add_child(pos, "chromosome");
        t.add_child(pos, "offset");
        t.add_child(rec, "alleles");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use treerepair::TreeRePair;

    #[test]
    fn weblog_has_the_expected_shape() {
        let t = exi_weblog_like(100);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.edge_count(), 100 * 8);
    }

    #[test]
    fn telecomp_is_deeper_but_regular() {
        let t = exi_telecomp_like(50);
        assert_eq!(t.depth(), 5);
        assert_eq!(t.edge_count(), 50 * 20);
    }

    #[test]
    fn ncbi_is_shallow() {
        let t = ncbi_like(100);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.edge_count(), 100 * 6);
    }

    #[test]
    fn regular_datasets_compress_extremely_well() {
        for t in [exi_weblog_like(512), exi_telecomp_like(256), ncbi_like(512)] {
            let (_, stats) = TreeRePair::default().compress_xml(&t);
            let ratio = stats.ratio();
            assert!(
                ratio < 0.05,
                "expected an extreme compression ratio, got {ratio} for {} edges",
                stats.input_edges
            );
        }
    }
}
