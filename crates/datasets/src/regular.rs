//! Highly regular datasets: synthetic stand-ins for EXI-Weblog, EXI-Telecomp
//! and NCBI.
//!
//! These three corpus files share one structural regime: a huge, almost
//! perfectly regular list of records with little or no per-record variation.
//! TreeRePair/GrammarRePair compress such lists *exponentially* (the grammar
//! ends up with only a few dozen edges — compare the `< 0.1 %` ratios of
//! Table III), which is exactly the regime where naive updates are most
//! destructive (Figure 5).

use xmltree::XmlTree;

/// Synthetic EXI-Weblog: a flat list of identical access-log entries
/// (depth 2, like the original file). `records` entries × 7 fields.
pub fn exi_weblog_like(records: usize) -> XmlTree {
    let mut t = XmlTree::new("log");
    let root = t.root();
    for _ in 0..records {
        let e = t.add_child(root, "entry");
        for field in [
            "host", "ident", "authuser", "date", "request", "status", "bytes",
        ] {
            t.add_child(e, field);
        }
    }
    t
}

/// Synthetic EXI-Telecomp: regular measurement records with a deeper (depth 6)
/// but still completely repetitive structure.
pub fn exi_telecomp_like(records: usize) -> XmlTree {
    let mut t = XmlTree::new("telecomp");
    let root = t.root();
    for _ in 0..records {
        let rec = t.add_child(root, "record");
        let hdr = t.add_child(rec, "header");
        t.add_child(hdr, "timestamp");
        t.add_child(hdr, "station");
        let body = t.add_child(rec, "measurements");
        for _ in 0..3 {
            let m = t.add_child(body, "measurement");
            let v = t.add_child(m, "value");
            t.add_child(v, "unit");
            t.add_child(v, "scale");
            t.add_child(m, "quality");
        }
    }
    t
}

/// Synthetic NCBI: a shallow (depth 3) but extremely long list of identical
/// SNP-like records — the most compressible file of the evaluation.
pub fn ncbi_like(records: usize) -> XmlTree {
    let mut t = XmlTree::new("snp_db");
    let root = t.root();
    for _ in 0..records {
        let rec = t.add_child(root, "snp");
        t.add_child(rec, "rsid");
        let pos = t.add_child(rec, "position");
        t.add_child(pos, "chromosome");
        t.add_child(pos, "offset");
        t.add_child(rec, "alleles");
    }
    t
}


/// Synthetic heterogeneous event stream: `schemas` distinct record templates
/// (each with its own element vocabulary and field count), repeated round-robin
/// for `records` total records. Models a multi-tenant event log: highly
/// repetitive — every template occurs `records / schemas` times, so the
/// grammar collapses each to a few rules — while remaining *label-diverse*,
/// which keeps the digram universe large. This is the selection-bound regime:
/// compressors whose digram selection rescans the occurrence table per round
/// slow down quadratically here, the frequency-bucket queue does not.
pub fn heterogeneous_records_like(schemas: usize, records: usize) -> XmlTree {
    let schemas = schemas.max(1);
    let mut t = XmlTree::new("events");
    let root = t.root();
    for r in 0..records {
        let s = r % schemas;
        let e = t.add_child(root, &format!("event_{s}"));
        // Field count varies by schema (4..=9), field names are per-schema.
        let fields = 4 + (s % 6);
        for f in 0..fields {
            let field = t.add_child(e, &format!("f{s}_{f}"));
            // Every third field carries a nested per-schema detail element.
            if f % 3 == 0 {
                t.add_child(field, &format!("detail_{s}"));
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use treerepair::TreeRePair;

    #[test]
    fn weblog_has_the_expected_shape() {
        let t = exi_weblog_like(100);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.edge_count(), 100 * 8);
    }

    #[test]
    fn telecomp_is_deeper_but_regular() {
        let t = exi_telecomp_like(50);
        assert_eq!(t.depth(), 5);
        assert_eq!(t.edge_count(), 50 * 20);
    }

    #[test]
    fn ncbi_is_shallow() {
        let t = ncbi_like(100);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.edge_count(), 100 * 6);
    }

    #[test]
    fn regular_datasets_compress_extremely_well() {
        for t in [exi_weblog_like(512), exi_telecomp_like(256), ncbi_like(512)] {
            let (_, stats) = TreeRePair::default().compress_xml(&t);
            let ratio = stats.ratio();
            assert!(
                ratio < 0.05,
                "expected an extreme compression ratio, got {ratio} for {} edges",
                stats.input_edges
            );
        }
    }

    #[test]
    fn heterogeneous_records_are_repetitive_but_label_diverse() {
        let t = heterogeneous_records_like(50, 1_000);
        // 50 distinct schemas x (event + fields + details) labels.
        assert!(t.labels().len() > 150, "labels: {}", t.labels().len());
        let (_, stats) = TreeRePair::default().compress_xml(&t);
        assert!(
            stats.ratio() < 0.2,
            "expected strong compression, got {}",
            stats.ratio()
        );
        // Deterministic: no RNG involved.
        assert_eq!(t.to_xml(), heterogeneous_records_like(50, 1_000).to_xml());
    }
}
