//! The evaluation corpus catalogue.
//!
//! One entry per document of the paper's Table III, mapping to the synthetic
//! generator that reproduces its structural regime. The `scale` knob controls
//! document size: `scale = 1.0` produces laptop-friendly defaults of roughly
//! 1/20 of the original edge counts; the experiment binaries accept a scale
//! factor to grow them towards the paper's sizes.

use xmltree::XmlTree;

use crate::random::{medline_like, treebank_like, xmark_like};
use crate::regular::{exi_telecomp_like, exi_weblog_like, ncbi_like};

/// The six documents of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// EXI-Weblog: flat, perfectly regular access log (93 434 edges, ratio 0.04 %).
    ExiWeblog,
    /// XMark: auction-site benchmark data (167 864 edges, ratio 13.17 %).
    XMark,
    /// EXI-Telecomp: regular measurement records (177 633 edges, ratio 0.06 %).
    ExiTelecomp,
    /// Treebank: parsed English sentences (2 437 665 edges, ratio 20.67 %).
    Treebank,
    /// Medline: bibliographic citations (2 866 079 edges, ratio 4.12 %).
    Medline,
    /// NCBI: SNP records (3 642 224 edges, ratio < 0.01 %).
    Ncbi,
}

impl Dataset {
    /// All datasets in the order of Table III.
    pub fn all() -> [Dataset; 6] {
        [
            Dataset::ExiWeblog,
            Dataset::XMark,
            Dataset::ExiTelecomp,
            Dataset::Treebank,
            Dataset::Medline,
            Dataset::Ncbi,
        ]
    }

    /// The three moderately compressing files of Figure 4.
    pub fn moderate() -> [Dataset; 3] {
        [Dataset::XMark, Dataset::Medline, Dataset::Treebank]
    }

    /// The three extremely compressing files of Figure 5.
    pub fn extreme() -> [Dataset; 3] {
        [Dataset::ExiWeblog, Dataset::ExiTelecomp, Dataset::Ncbi]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::ExiWeblog => "EXI-Weblog",
            Dataset::XMark => "XMark",
            Dataset::ExiTelecomp => "EXI-Telecomp",
            Dataset::Treebank => "Treebank",
            Dataset::Medline => "Medline",
            Dataset::Ncbi => "NCBI",
        }
    }

    /// Short two-letter tag used in the figures (XM, MD, TB, EW, ET, NC).
    pub fn tag(&self) -> &'static str {
        match self {
            Dataset::ExiWeblog => "EW",
            Dataset::XMark => "XM",
            Dataset::ExiTelecomp => "ET",
            Dataset::Treebank => "TB",
            Dataset::Medline => "MD",
            Dataset::Ncbi => "NC",
        }
    }

    /// Edge count of the original corpus file (Table III), for reference.
    pub fn paper_edges(&self) -> usize {
        match self {
            Dataset::ExiWeblog => 93_434,
            Dataset::XMark => 167_864,
            Dataset::ExiTelecomp => 177_633,
            Dataset::Treebank => 2_437_665,
            Dataset::Medline => 2_866_079,
            Dataset::Ncbi => 3_642_224,
        }
    }

    /// Compression ratio (c-edges / edges, in percent) reported in Table III.
    pub fn paper_ratio_percent(&self) -> f64 {
        match self {
            Dataset::ExiWeblog => 0.04,
            Dataset::XMark => 13.17,
            Dataset::ExiTelecomp => 0.06,
            Dataset::Treebank => 20.67,
            Dataset::Medline => 4.12,
            Dataset::Ncbi => 0.01,
        }
    }

    /// Generates the synthetic stand-in at the given scale (1.0 ≈ 1/20 of the
    /// original edge count; see DESIGN.md for the substitution rationale).
    pub fn generate(&self, scale: f64) -> XmlTree {
        let scaled = |base: usize| ((base as f64 * scale).round() as usize).max(4);
        match self {
            Dataset::ExiWeblog => exi_weblog_like(scaled(600)),
            Dataset::XMark => xmark_like(scaled(55), 0xA1),
            Dataset::ExiTelecomp => exi_telecomp_like(scaled(450)),
            Dataset::Treebank => treebank_like(scaled(1_400), 0xA2),
            Dataset::Medline => medline_like(scaled(3_100), 0xA3),
            Dataset::Ncbi => ncbi_like(scaled(30_000)),
        }
    }

    /// Generates the dataset at the default scale used by tests and benches.
    pub fn generate_default(&self) -> XmlTree {
        self.generate(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_consistent() {
        assert_eq!(Dataset::all().len(), 6);
        let mut names = std::collections::HashSet::new();
        for d in Dataset::all() {
            assert!(names.insert(d.name()));
            assert!(d.paper_edges() > 90_000);
            assert!(d.paper_ratio_percent() > 0.0);
            assert_eq!(d.tag().len(), 2);
        }
        assert_eq!(Dataset::moderate().len(), 3);
        assert_eq!(Dataset::extreme().len(), 3);
    }

    #[test]
    fn default_scale_produces_sizeable_documents() {
        // Keep this test quick: only the small regular generators at tiny scale.
        let t = Dataset::ExiWeblog.generate(0.1);
        assert!(t.edge_count() > 400);
        let t = Dataset::XMark.generate(0.1);
        assert!(t.edge_count() > 500);
    }

    #[test]
    fn scaling_grows_documents_roughly_linearly() {
        let small = Dataset::ExiWeblog.generate(0.05).edge_count();
        let large = Dataset::ExiWeblog.generate(0.2).edge_count();
        assert!(large > 3 * small);
    }
}
