//! Random update workloads (paper Section V-C), with a locality knob.
//!
//! The paper evaluates sequences of random insert/delete operations (90 %
//! inserts, 10 % deletes) and sequences of random renames to fresh labels. The
//! generators below produce such sequences against an evolving document: every
//! generated operation is applied to an uncompressed reference copy so that the
//! next operation's target index is valid, mirroring how the paper derives its
//! workloads from the original documents.
//!
//! [`random_update_sequence`] additionally supports a **rename mix** and a
//! **locality knob**: with probability [`WorkloadMix::locality`] an
//! operation's target is drawn from the subtree of a periodically re-anchored
//! *cluster* element instead of the whole document. High-locality sequences
//! share long root-to-target path prefixes — the workload shape FLUX-style
//! functional update programs produce and the one batched path isolation
//! (`grammar_repair::update::apply_batch`) is built for. The legacy
//! generators ([`random_insert_delete_sequence`],
//! [`random_rename_sequence`]) keep their historical RNG streams so committed
//! bench baselines stay comparable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sltgrammar::{NodeId, NodeKind, RhsTree, SymbolTable};
use xmltree::binary::to_binary;
use xmltree::updates::{apply_update, UpdateOp};
use xmltree::{XmlNodeId, XmlTree};

/// Mix of operations in a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Probability of an insert among the non-rename operations (the
    /// remainder are deletes).
    pub insert_probability: f64,
    /// Maximum number of elements in an inserted fragment.
    pub max_fragment_size: usize,
    /// Probability that an operation is a rename to a fresh label (honored by
    /// [`random_update_sequence`]; the paper's Figure-6 workload is 1.0).
    pub rename_probability: f64,
    /// Probability that an operation's target is drawn from the current
    /// locality cluster — the subtree of a periodically re-anchored element —
    /// instead of the whole document (honored by [`random_update_sequence`]).
    /// 0.0 yields uniform targets, values near 1.0 yield long shared
    /// root-to-target path prefixes.
    pub locality: f64,
    /// Re-anchor the locality cluster after this many operations.
    pub cluster_every: usize,
}

impl WorkloadMix {
    /// A high-locality mix dominated by renames and inserts. Historically the
    /// batching sweet spot (deletes used to flush isolation chunks; since the
    /// delete-tolerant planner they batch at full length too).
    pub fn clustered(locality: f64) -> Self {
        WorkloadMix {
            insert_probability: 0.95,
            rename_probability: 0.6,
            locality,
            cluster_every: 25,
            ..WorkloadMix::default()
        }
    }

    /// The paper's Section V-C mix — 90 % inserts / 10 % deletes, no renames —
    /// with a locality knob. `paper_mix(0.0)` equals [`WorkloadMix::default`];
    /// higher locality clusters the mixed stream the way a real write-heavy
    /// session does.
    pub fn paper_mix(locality: f64) -> Self {
        WorkloadMix {
            locality,
            ..WorkloadMix::default()
        }
    }
}

impl Default for WorkloadMix {
    fn default() -> Self {
        // The paper's mix: 90 % inserts, 10 % deletes, uniform targets.
        WorkloadMix {
            insert_probability: 0.9,
            max_fragment_size: 6,
            rename_probability: 0.0,
            locality: 0.0,
            cluster_every: 16,
        }
    }
}

/// Generates a sequence of `count` random insert/delete operations against
/// `xml`, 90 % inserts / 10 % deletes by default. Operations are valid when
/// applied in order starting from `xml`.
pub fn random_insert_delete_sequence(
    xml: &XmlTree,
    count: usize,
    seed: u64,
    mix: WorkloadMix,
) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = xml.labels();
    let mut symbols = SymbolTable::new();
    let mut reference = to_binary(xml, &mut symbols).expect("valid document");
    let mut ops = Vec::with_capacity(count);

    for _ in 0..count {
        let op = if rng.gen_bool(mix.insert_probability) {
            let target = random_node(&reference, &mut rng, |_, _| true);
            let fragment = random_fragment(&labels, &mut rng, mix.max_fragment_size);
            UpdateOp::InsertBefore { target, fragment }
        } else {
            // Delete a random non-root element; if none exists fall back to insert.
            match try_random_node(&reference, &mut rng, |bin, n| {
                n != bin.root()
                    && matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
            }) {
                Some(target) => UpdateOp::Delete { target },
                None => {
                    let target = random_node(&reference, &mut rng, |_, _| true);
                    let fragment = random_fragment(&labels, &mut rng, mix.max_fragment_size);
                    UpdateOp::InsertBefore { target, fragment }
                }
            }
        };
        apply_update(&mut reference, &mut symbols, &op)
            .expect("generated operations are valid by construction");
        ops.push(op);
    }
    ops
}

/// Generates `count` random rename operations to fresh labels (the Figure 6
/// workload), valid when applied in order starting from `xml`.
pub fn random_rename_sequence(xml: &XmlTree, count: usize, seed: u64) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut symbols = SymbolTable::new();
    let mut reference = to_binary(xml, &mut symbols).expect("valid document");
    let mut ops = Vec::with_capacity(count);
    for k in 0..count {
        let target = random_node(&reference, &mut rng, |bin, n| {
            matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
        });
        let op = UpdateOp::Rename {
            target,
            label: format!("fresh_label_{k}"),
        };
        apply_update(&mut reference, &mut symbols, &op)
            .expect("generated operations are valid by construction");
        ops.push(op);
    }
    ops
}

/// Generates `count` random operations honoring the full [`WorkloadMix`]:
/// rename probability, insert/delete split, and target locality. Operations
/// are valid when applied in order starting from `xml`.
///
/// With `locality > 0.0` the generator keeps a *cluster anchor* — a random
/// element of the evolving document, re-drawn every
/// [`WorkloadMix::cluster_every`] operations or when an update removes it —
/// and draws clustered targets from the anchor's subtree only.
pub fn random_update_sequence(
    xml: &XmlTree,
    count: usize,
    seed: u64,
    mix: WorkloadMix,
) -> Vec<UpdateOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = xml.labels();
    let mut symbols = SymbolTable::new();
    let mut reference = to_binary(xml, &mut symbols).expect("valid document");
    let mut ops = Vec::with_capacity(count);
    let mut anchor: Option<NodeId> = None;

    for k in 0..count {
        if mix.locality > 0.0 {
            let stale = k % mix.cluster_every.max(1) == 0
                || !anchor.map(|a| is_attached(&reference, a)).unwrap_or(false);
            if stale {
                anchor = try_random_node(&reference, &mut rng, |bin, n| {
                    matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
                })
                .map(|idx| reference.preorder()[idx]);
            }
        }
        let scope = if mix.locality > 0.0 && rng.gen_bool(mix.locality) {
            anchor.filter(|&a| is_attached(&reference, a))
        } else {
            None
        };

        let op = if mix.rename_probability > 0.0 && rng.gen_bool(mix.rename_probability) {
            let target = scoped_random_node(&reference, scope, &mut rng, |bin, n| {
                matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
            })
            .expect("documents always contain at least one element");
            UpdateOp::Rename {
                target,
                label: format!("fresh_label_{k}"),
            }
        } else if rng.gen_bool(mix.insert_probability) {
            let target = scoped_random_node(&reference, scope, &mut rng, |_, _| true)
                .expect("documents always contain at least one node");
            let fragment = random_fragment(&labels, &mut rng, mix.max_fragment_size);
            UpdateOp::InsertBefore { target, fragment }
        } else {
            // Delete a random non-root element; fall back to an insert when
            // the scope holds none (e.g. the anchor is a leaf).
            match scoped_random_node(&reference, scope, &mut rng, |bin, n| {
                n != bin.root()
                    && n != scope.unwrap_or_else(|| bin.root())
                    && matches!(bin.kind(n), NodeKind::Term(t) if !symbols.is_null(t))
            }) {
                Some(target) => UpdateOp::Delete { target },
                None => {
                    let target = scoped_random_node(&reference, scope, &mut rng, |_, _| true)
                        .expect("documents always contain at least one node");
                    let fragment = random_fragment(&labels, &mut rng, mix.max_fragment_size);
                    UpdateOp::InsertBefore { target, fragment }
                }
            }
        };
        apply_update(&mut reference, &mut symbols, &op)
            .expect("generated operations are valid by construction");
        ops.push(op);
    }
    ops
}

/// Whether `node` is still part of the tree (updates detach removed subtrees,
/// clearing the parent link at the cut).
fn is_attached(bin: &RhsTree, node: NodeId) -> bool {
    let mut cur = node;
    loop {
        if cur == bin.root() {
            return true;
        }
        match bin.parent(cur) {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// Random accepted preorder index, restricted to the subtree of `scope` when
/// given. Returns `None` if no node in scope is accepted.
fn scoped_random_node(
    bin: &RhsTree,
    scope: Option<NodeId>,
    rng: &mut StdRng,
    accept: impl Fn(&RhsTree, sltgrammar::NodeId) -> bool,
) -> Option<usize> {
    match scope {
        None => try_random_node(bin, rng, accept),
        Some(root) => {
            let in_scope: std::collections::HashSet<sltgrammar::NodeId> =
                bin.preorder_from(root).into_iter().collect();
            try_random_node(bin, rng, |bin, n| in_scope.contains(&n) && accept(bin, n))
        }
    }
}

fn try_random_node(
    bin: &RhsTree,
    rng: &mut StdRng,
    accept: impl Fn(&RhsTree, sltgrammar::NodeId) -> bool,
) -> Option<usize> {
    let pre = bin.preorder();
    let candidates: Vec<usize> = pre
        .iter()
        .enumerate()
        .filter(|(_, &n)| accept(bin, n))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    Some(candidates[rng.gen_range(0..candidates.len())])
}

fn random_node(
    bin: &RhsTree,
    rng: &mut StdRng,
    accept: impl Fn(&RhsTree, sltgrammar::NodeId) -> bool,
) -> usize {
    try_random_node(bin, rng, accept).expect("document always has at least one node")
}

/// Builds a small random element fragment using the document's own labels.
fn random_fragment(labels: &[String], rng: &mut StdRng, max_size: usize) -> XmlTree {
    let pick = |rng: &mut StdRng| labels[rng.gen_range(0..labels.len())].clone();
    let mut t = XmlTree::new(&pick(rng));
    let mut nodes: Vec<XmlNodeId> = vec![t.root()];
    let extra = rng.gen_range(0..max_size.max(1));
    for _ in 0..extra {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let child = t.add_child(parent, &pick(rng));
        nodes.push(child);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmltree::binary::from_binary;

    fn doc() -> XmlTree {
        crate::regular::exi_weblog_like(30)
    }

    #[test]
    fn sequences_are_deterministic_and_have_the_right_mix() {
        let xml = doc();
        let a = random_insert_delete_sequence(&xml, 200, 11, WorkloadMix::default());
        let b = random_insert_delete_sequence(&xml, 200, 11, WorkloadMix::default());
        assert_eq!(a.len(), 200);
        let signature = |ops: &[UpdateOp]| {
            ops.iter()
                .map(|op| match op {
                    UpdateOp::InsertBefore { target, .. } => format!("i{target}"),
                    UpdateOp::Delete { target } => format!("d{target}"),
                    UpdateOp::Rename { target, .. } => format!("r{target}"),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(signature(&a), signature(&b));
        let inserts = a
            .iter()
            .filter(|op| matches!(op, UpdateOp::InsertBefore { .. }))
            .count();
        assert!(
            (150..=200).contains(&inserts),
            "expected roughly 90% inserts, got {inserts}/200"
        );
    }

    #[test]
    fn generated_sequences_apply_cleanly_to_the_reference_tree() {
        let xml = doc();
        let ops = random_insert_delete_sequence(&xml, 150, 3, WorkloadMix::default());
        let mut symbols = SymbolTable::new();
        let mut bin = to_binary(&xml, &mut symbols).unwrap();
        for op in &ops {
            apply_update(&mut bin, &mut symbols, op).unwrap();
        }
        // Still a well-formed document. (No assertion on net growth: deletes
        // remove whole subtrees, so the size balance of a particular sequence
        // is RNG-stream luck, not a property of the generator.)
        let back = from_binary(&bin, &symbols).unwrap();
        assert!(back.node_count() >= 1);
        let inserts = ops
            .iter()
            .filter(|op| matches!(op, UpdateOp::InsertBefore { .. }))
            .count();
        assert!(
            inserts > ops.len() / 2,
            "inserts must dominate the default 90% mix, got {inserts}/{}",
            ops.len()
        );
    }

    #[test]
    fn mixed_sequences_are_deterministic_and_honor_the_rename_mix() {
        let xml = doc();
        let mix = WorkloadMix {
            rename_probability: 0.5,
            locality: 0.8,
            ..WorkloadMix::default()
        };
        let a = random_update_sequence(&xml, 200, 9, mix);
        let b = random_update_sequence(&xml, 200, 9, mix);
        let signature = |ops: &[UpdateOp]| {
            ops.iter()
                .map(|op| format!("{:?}:{}", std::mem::discriminant(op), op.target()))
                .collect::<Vec<_>>()
        };
        assert_eq!(signature(&a), signature(&b));
        let renames = a
            .iter()
            .filter(|op| matches!(op, UpdateOp::Rename { .. }))
            .count();
        assert!(
            (60..=140).contains(&renames),
            "expected roughly half renames, got {renames}/200"
        );
        // The sequence applies cleanly to a fresh reference copy.
        let mut symbols = SymbolTable::new();
        let mut bin = to_binary(&xml, &mut symbols).unwrap();
        for op in &a {
            apply_update(&mut bin, &mut symbols, op).unwrap();
        }
    }

    #[test]
    fn high_locality_sequences_cluster_their_targets() {
        // With a sticky cluster, consecutive targets inside one anchor period
        // must be much closer to each other than uniform targets are.
        let xml = crate::regular::exi_weblog_like(120);
        let spread = |ops: &[UpdateOp]| {
            let gaps: Vec<i64> = ops
                .windows(2)
                .map(|w| (w[1].target() as i64 - w[0].target() as i64).abs())
                .collect();
            let mut sorted = gaps.clone();
            sorted.sort_unstable();
            sorted[sorted.len() / 2]
        };
        let local = random_update_sequence(
            &xml,
            150,
            3,
            WorkloadMix {
                rename_probability: 1.0,
                locality: 0.95,
                cluster_every: 30,
                ..WorkloadMix::default()
            },
        );
        let uniform = random_update_sequence(
            &xml,
            150,
            3,
            WorkloadMix {
                rename_probability: 1.0,
                locality: 0.0,
                ..WorkloadMix::default()
            },
        );
        assert!(
            spread(&local) * 4 < spread(&uniform),
            "local median gap {} should be far below uniform {}",
            spread(&local),
            spread(&uniform)
        );
    }

    #[test]
    fn zero_locality_update_sequences_match_the_paper_mix() {
        let xml = doc();
        let ops = random_update_sequence(&xml, 200, 17, WorkloadMix::default());
        let inserts = ops
            .iter()
            .filter(|op| matches!(op, UpdateOp::InsertBefore { .. }))
            .count();
        assert!(
            (150..=200).contains(&inserts),
            "expected roughly 90% inserts, got {inserts}/200"
        );
        assert!(ops.iter().all(|op| !matches!(op, UpdateOp::Rename { .. })));
    }

    #[test]
    fn rename_sequences_only_touch_elements() {
        let xml = doc();
        let ops = random_rename_sequence(&xml, 50, 5);
        assert_eq!(ops.len(), 50);
        let mut symbols = SymbolTable::new();
        let mut bin = to_binary(&xml, &mut symbols).unwrap();
        for op in &ops {
            assert!(matches!(op, UpdateOp::Rename { .. }));
            apply_update(&mut bin, &mut symbols, op).unwrap();
        }
        // Renames to fresh labels never change the node count.
        assert_eq!(bin.node_count(), 2 * xml.node_count() + 1);
    }
}
